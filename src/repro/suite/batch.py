"""Batch (vectorized) evaluation of benchmark curves.

``repro.sim.batch`` provides the array-based cost engine; this module
provides the *builders* that produce :class:`~repro.sim.batch.ArrayProfile`
objects for the headline benchmark cases without materialising any
``Chunk``/``ChunkWork`` Python objects -- the per-object allocation that
dominates scalar sweep time. Each builder replicates, operation for
operation, what the corresponding scalar algorithm
(``repro.algorithms.*``) would emit in model mode, so the resulting
``SimReport`` is bit-identical to the scalar path's (enforced by
``tools/diffcheck.py`` and ``tests/sim/test_batch_differential.py``).

The vectorized path applies when **all** of the following hold (see
:func:`batch_supported`):

* the case is one of :data:`BATCH_CASES`;
* the context is a CPU context in ``model`` mode (run mode must execute
  real kernels, and the GPU engine has its own cost path).

Curve helpers (:func:`batch_problem_scaling`,
:func:`batch_strong_scaling`) evaluate a whole size or thread sweep and
emit a single ``sim.batch`` trace span per curve (category ``"batch"``,
track ``"batch"``) instead of the scalar path's per-phase spans.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import PerElem, blend_placement, require_support
from repro.algorithms._ops import PLUS
from repro.algorithms.find import COMPARE_INSTR, FIND_SPREAD_PENALTY
from repro.algorithms.foreach import FOR_EACH_LOOP_INSTR
from repro.algorithms.reduce import COMBINE_INSTR_PER_PARTIAL
from repro.algorithms.scan import SCAN_SPREAD_PENALTY, _SCAN_LOOP_INSTR
from repro.algorithms.sort import (
    MERGE_INSTR_PER_LEVEL,
    SERIAL_PARTITION_FACTOR,
    SORT_INSTR_PER_LEVEL,
    _log2,
)
from repro.backends.base import SortStrategy
from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.memory.layout import PagePlacement
from repro.sim.batch import (
    ArrayPhase,
    ArrayProfile,
    ChunkArrays,
    partition_arrays,
    simulate_cpu_arrays,
)
from repro.sim.batch import _thread_layout
from repro.sim.report import SimReport
from repro.sim.work import PhaseKind
from repro.suite.generators import generate_increment, shuffled_permutation
from repro.suite.kernels import listing1_kernel
from repro.trace import get_tracer
from repro.types import ElemType, FLOAT64

__all__ = [
    "BATCH_CASES",
    "BATCH_TRACK",
    "batch_supported",
    "use_batch_path",
    "build_array_profile",
    "simulate_case_batch",
    "measure_case_batch",
    "batch_problem_scaling",
    "batch_strong_scaling",
]

#: Cases with a vectorized profile builder (the paper's headline set).
BATCH_CASES = (
    "find",
    "for_each_k1",
    "for_each_k1000",
    "inclusive_scan",
    "reduce",
    "sort",
    "stable_sort",
)

#: Trace track that ``sim.batch`` curve spans are recorded on.
BATCH_TRACK = "batch"

_Partition = tuple[np.ndarray, np.ndarray, np.ndarray, int]


def batch_supported(case_name: str, ctx: ExecutionContext) -> bool:
    """Whether the vectorized path can evaluate ``case_name`` under ``ctx``."""
    return (
        case_name in _BUILDERS
        and not ctx.is_gpu
        and ctx.mode == "model"
    )


def use_batch_path(
    batch: bool | None, case_name: str, ctx: ExecutionContext
) -> bool:
    """Resolve a sweep's ``batch`` tri-state into a concrete decision.

    ``False`` always forces the scalar path (the ``--no-batch`` debugging
    escape hatch). ``True`` requests the batch path wherever it is
    supported. ``None`` (auto) uses the batch path when supported *and*
    tracing is disabled -- the scalar engine is the one that knows how to
    narrate per-phase spans, so traced runs keep their familiar timeline
    unless batch is requested explicitly.
    """
    if batch is False:
        return False
    if batch is True:
        return batch_supported(case_name, ctx)
    return batch_supported(case_name, ctx) and not get_tracer().enabled


# ---------------------------------------------------------------------------
# Phase construction (array twins of _build.parallel_phase/sequential_phase)
# ---------------------------------------------------------------------------

def _parallel_phase_arrays(
    name: str,
    part: _Partition,
    per_elem: PerElem,
    placement: PagePlacement | None,
    working_set: float,
    scan_fractions: np.ndarray | None = None,
    sync_points: int = 0,
    spread_penalty: float = 1.0,
    vectorizable: bool = True,
) -> ArrayPhase:
    """Array twin of ``_build.parallel_phase`` (same drop/pad semantics)."""
    _starts, sizes, tids, parts = part
    elems = sizes.astype(np.float64)
    if scan_fractions is not None:
        elems = elems * scan_fractions
    if parts > 1:
        keep = elems > 0.0
        if not keep.all():
            elems = elems[keep]
            tids = tids[keep]
    if len(elems) == 0:
        chunks = ChunkArrays(
            thread=np.zeros(1, dtype=np.int64),
            elems=np.zeros(1),
            instr=np.zeros(1),
            fp_ops=np.zeros(1),
            bytes_read=np.zeros(1),
            bytes_written=np.zeros(1),
        )
    else:
        chunks = ChunkArrays.from_per_elem(
            tids, elems, per_elem.instr, per_elem.fp, per_elem.read, per_elem.write
        )
    return ArrayPhase(
        name=name,
        kind=PhaseKind.PARALLEL,
        chunks=chunks,
        placement=placement,
        working_set=working_set,
        sched_chunks=parts,
        sync_points=sync_points,
        spread_penalty=spread_penalty,
        apply_instr_overhead=True,
        vectorizable=vectorizable,
    )


def _sequential_phase_arrays(
    name: str,
    elems: float,
    per_elem: PerElem,
    placement: PagePlacement | None,
    working_set: float,
    vectorizable: bool = True,
) -> ArrayPhase:
    """Array twin of ``_build.sequential_phase`` (single thread-0 chunk)."""
    e = np.array([elems])
    chunks = ChunkArrays.from_per_elem(
        np.zeros(1, dtype=np.int64),
        e,
        per_elem.instr,
        per_elem.fp,
        per_elem.read,
        per_elem.write,
    )
    return ArrayPhase(
        name=name,
        kind=PhaseKind.SEQUENTIAL,
        chunks=chunks,
        placement=placement,
        working_set=working_set,
        apply_instr_overhead=False,
        vectorizable=vectorizable,
    )


def _profile(
    ctx: ExecutionContext,
    alg: str,
    n: int,
    elem: ElemType,
    phases: list[ArrayPhase],
    parallel: bool,
    regions: int = 1,
) -> ArrayProfile:
    """Array twin of ``_build.make_profile``."""
    return ArrayProfile(
        alg=alg,
        n=n,
        elem=elem,
        threads=ctx.threads if parallel else 1,
        policy=ctx.policy,
        phases=tuple(phases),
        regions=regions if parallel else 0,
    )


def _scan_fractions_arrays(part: _Partition, hit: int | None, n: int) -> np.ndarray:
    """Vectorized model-mode ``find._scan_fractions``.

    Reproduces the scalar loop's floats exactly: the expectation budget is
    a rounded sum of exact half-integer products folded in chunk order,
    and the per-thread clamped-subtraction chain collapses to
    ``min(len, max(0, budget - prefix))`` because every intermediate
    ``remaining`` value is an exact float (budget and the integer chunk
    lengths share a quantum, so the subtractions never round).
    """
    starts, sizes, _tids, parts = part
    if hit is None:
        return np.ones(parts)

    _order, tidx, slot = _thread_layout(part[2])
    depth = int(slot.max()) + 1 if parts else 1
    incl = np.zeros((depth, len(_order)), dtype=np.int64)
    incl[slot, tidx] = sizes
    incl = np.cumsum(incl, axis=0)
    prefix = (incl[slot, tidx] - sizes).astype(np.float64)

    lens = sizes.astype(np.float64)
    nonzero = sizes > 0
    limit = min(n, 2 * hit + 1)
    contrib = nonzero & (starts < limit)
    covered = np.where(
        contrib, np.minimum(starts + sizes, limit) - starts, 0
    ).astype(np.float64)
    weighted_terms = np.where(contrib, covered * (prefix + covered / 2.0), 0.0)
    weighted = float(np.cumsum(weighted_terms)[-1]) if parts else 0.0
    total_weight = float(np.cumsum(covered)[-1]) if parts else 0.0
    budget = (weighted / total_weight + 1.0) if total_weight else float(n)

    take = np.minimum(lens, np.maximum(0.0, budget - prefix))
    return np.where(nonzero, take / np.where(nonzero, lens, 1.0), 0.0)


# ---------------------------------------------------------------------------
# Case builders (array twins of the scalar algorithms, model mode)
# ---------------------------------------------------------------------------

def _build_for_each(k_it: int):
    """Builder factory for the ``for_each_k{k}`` cases (Listing 1 kernel)."""

    def build(ctx: ExecutionContext, n: int, elem: ElemType) -> ArrayProfile:
        arr = generate_increment(ctx, n, elem)
        kernel = listing1_kernel(k_it, arr.elem, target="cpu")
        es = arr.elem.size
        per_elem = PerElem(
            instr=kernel.instr_per_elem + FOR_EACH_LOOP_INSTR,
            fp=kernel.fp_per_elem,
            read=es,
            write=es,
        )
        working_set = float(n * es)
        placement = blend_placement([(arr, 1.0)])
        parallel = ctx.runs_parallel("for_each", n)
        if parallel:
            part = partition_arrays(ctx.backend, n, ctx.threads)
            phases = [
                _parallel_phase_arrays("map", part, per_elem, placement, working_set)
            ]
        else:
            phases = [
                _sequential_phase_arrays(
                    "map", float(n), per_elem, placement, working_set
                )
            ]
        return _profile(ctx, "for_each", n, arr.elem, phases, parallel)

    return build


def _build_find(ctx: ExecutionContext, n: int, elem: ElemType) -> ArrayProfile:
    """Array twin of the ``find`` case (expected hit at ``n // 2``)."""
    arr = generate_increment(ctx, n, elem)
    es = arr.elem.size
    per_elem = PerElem(instr=COMPARE_INSTR, read=es)
    hit = arr.n // 2
    if not 0 <= hit < arr.n:
        raise ConfigurationError("expected_position out of range")
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel("find", n)
    if parallel:
        part = partition_arrays(ctx.backend, n, ctx.threads)
        fractions = _scan_fractions_arrays(part, hit, n)
        phases = [
            _parallel_phase_arrays(
                "scan",
                part,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=part[3],
                spread_penalty=FIND_SPREAD_PENALTY,
            )
        ]
    else:
        scanned = float(hit + 1)
        phases = [
            _sequential_phase_arrays(
                "scan", scanned, per_elem, placement, working_set
            )
        ]
    return _profile(ctx, "find", n, arr.elem, phases, parallel)


def _build_reduce(ctx: ExecutionContext, n: int, elem: ElemType) -> ArrayProfile:
    """Array twin of the ``reduce`` case (PLUS reduction)."""
    arr = generate_increment(ctx, n, elem)
    es = arr.elem.size
    per_elem = PerElem(
        instr=PLUS.instr_per_elem, fp=PLUS.fp_per_elem, read=es
    )
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel("reduce", n)
    if parallel:
        part = partition_arrays(ctx.backend, n, ctx.threads)
        phases = [
            _parallel_phase_arrays(
                "chunk-reduce", part, per_elem, placement, working_set
            ),
            _sequential_phase_arrays(
                "combine",
                float(part[3]),
                PerElem(instr=COMBINE_INSTR_PER_PARTIAL, fp=PLUS.fp_per_elem),
                None,
                0.0,
                vectorizable=False,
            ),
        ]
    else:
        phases = [
            _sequential_phase_arrays(
                "reduce", float(n), per_elem, placement, working_set
            )
        ]
    return _profile(ctx, "reduce", n, arr.elem, phases, parallel)


def _build_inclusive_scan(
    ctx: ExecutionContext, n: int, elem: ElemType
) -> ArrayProfile:
    """Array twin of the ``inclusive_scan`` case (separate output array)."""
    arr = generate_increment(ctx, n, elem)
    dest = ctx.allocate(n, elem)
    require_support(ctx, "inclusive_scan")
    es = arr.elem.size
    working_set = float(n * es) * 2.0
    parallel = ctx.runs_parallel("inclusive_scan", n)
    if parallel:
        part = partition_arrays(ctx.backend, n, ctx.threads)
        in_placement = blend_placement([(arr, 1.0)])
        rw_placement = blend_placement([(arr, 1.0), (dest, 1.0)])
        phases = [
            _parallel_phase_arrays(
                "chunk-reduce",
                part,
                PerElem(instr=PLUS.instr_per_elem, fp=PLUS.fp_per_elem, read=es),
                in_placement,
                working_set,
                spread_penalty=SCAN_SPREAD_PENALTY,
            ),
            _sequential_phase_arrays(
                "carry-scan",
                float(part[3]),
                PerElem(instr=3.0, fp=PLUS.fp_per_elem),
                None,
                0.0,
                vectorizable=False,
            ),
            _parallel_phase_arrays(
                "rescan",
                part,
                PerElem(
                    instr=PLUS.instr_per_elem + _SCAN_LOOP_INSTR,
                    fp=PLUS.fp_per_elem,
                    read=es,
                    write=es,
                ),
                rw_placement,
                working_set,
                spread_penalty=SCAN_SPREAD_PENALTY,
            ),
        ]
        regions = 2
    else:
        phases = [
            _sequential_phase_arrays(
                "scan",
                float(n),
                PerElem(
                    instr=PLUS.instr_per_elem + _SCAN_LOOP_INSTR,
                    fp=PLUS.fp_per_elem,
                    read=es,
                    write=es,
                ),
                blend_placement([(arr, 1.0), (dest, 1.0)]),
                working_set,
            )
        ]
        regions = 1
    return _profile(
        ctx, "inclusive_scan", n, arr.elem, phases, parallel, regions=regions
    )


def _sort_phases_arrays(ctx: ExecutionContext, n: int, elem: ElemType, stable: bool):
    """Array twin of ``sort._sort_phases`` for one invocation."""
    arr = shuffled_permutation(ctx, n, elem)
    es = arr.elem.size
    p = ctx.threads
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    strategy = ctx.backend.sort_strategy
    instr_scale = 1.1 if stable else 1.0
    c = SORT_INSTR_PER_LEVEL * instr_scale

    seq = [
        _sequential_phase_arrays(
            "introsort",
            float(n),
            PerElem(instr=c * _log2(n), read=2 * es, write=2 * es),
            placement,
            working_set,
            vectorizable=False,
        )
    ]
    if strategy is SortStrategy.SEQUENTIAL or p <= 1:
        return seq, False

    part = partition_arrays(ctx.backend, n, p)
    local_levels = _log2(n / p)

    if strategy is SortStrategy.MULTIWAY_MERGESORT:
        phases = [
            _parallel_phase_arrays(
                "local-sort",
                part,
                PerElem(instr=c * local_levels, read=2 * es, write=2 * es),
                placement,
                working_set,
                vectorizable=False,
            ),
            _parallel_phase_arrays(
                "multiway-merge",
                part,
                PerElem(
                    instr=MERGE_INSTR_PER_LEVEL * instr_scale * _log2(p),
                    read=es,
                    write=es,
                ),
                placement,
                working_set,
                sync_points=p,
                vectorizable=False,
            ),
        ]
        return phases, True

    if strategy is SortStrategy.SERIAL_PARTITION_QUICKSORT:
        tree_span = SERIAL_PARTITION_FACTOR
    else:
        tree_span = 2.0 * (1.0 - 1.0 / p)
    phases = [
        _parallel_phase_arrays(
            "partition-tree",
            part,
            PerElem(instr=c * tree_span * p, read=es, write=es),
            placement,
            working_set,
            sync_points=2 * p,
            vectorizable=False,
        ),
        _parallel_phase_arrays(
            "local-sort",
            part,
            PerElem(instr=c * local_levels, read=2 * es, write=2 * es),
            placement,
            working_set,
            vectorizable=False,
        ),
    ]
    return phases, True


def _build_sort(stable: bool):
    """Builder factory for ``sort`` / ``stable_sort``."""

    def build(ctx: ExecutionContext, n: int, elem: ElemType) -> ArrayProfile:
        parallel = ctx.runs_parallel("sort", n)
        if parallel:
            phases, parallel = _sort_phases_arrays(ctx, n, elem, stable)
        else:
            phases, _ = _sort_phases_arrays(
                ctx.with_(threads=1), n, elem, stable
            )
        return _profile(ctx, "sort", n, elem, phases, parallel, regions=2)

    return build


_BUILDERS = {
    "for_each_k1": _build_for_each(1),
    "for_each_k1000": _build_for_each(1000),
    "find": _build_find,
    "reduce": _build_reduce,
    "inclusive_scan": _build_inclusive_scan,
    "sort": _build_sort(stable=False),
    "stable_sort": _build_sort(stable=True),
}


# ---------------------------------------------------------------------------
# Point + curve evaluation
# ---------------------------------------------------------------------------

def build_array_profile(
    case_name: str, ctx: ExecutionContext, n: int, elem: ElemType = FLOAT64
) -> ArrayProfile:
    """The :class:`ArrayProfile` the batch path costs for one point.

    Raises :class:`~repro.errors.ConfigurationError` for cases outside
    :data:`BATCH_CASES` or contexts the batch path cannot serve, and
    :class:`~repro.errors.UnsupportedOperationError` exactly where the
    scalar algorithm would (e.g. GNU ``inclusive_scan``).
    """
    if not batch_supported(case_name, ctx):
        raise ConfigurationError(
            f"case {case_name!r} has no batch path under this context"
        )
    return _BUILDERS[case_name](ctx, n, elem)


def simulate_case_batch(
    case_name: str, ctx: ExecutionContext, n: int, elem: ElemType = FLOAT64
) -> SimReport:
    """Full :class:`SimReport` for one point via the vectorized path."""
    profile = build_array_profile(case_name, ctx, n, elem)
    return simulate_cpu_arrays(ctx.machine, ctx.backend, profile)


def measure_case_batch(
    case_name: str, ctx: ExecutionContext, n: int, elem: ElemType = FLOAT64
) -> float:
    """Seconds for one point; bit-identical to ``measure_case``."""
    return simulate_case_batch(case_name, ctx, n, elem).seconds


def _record_curve_span(
    case_name: str, ctx: ExecutionContext, variable: str, total: float, points: int
) -> None:
    """Emit the per-curve ``sim.batch`` span and advance the clock."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    tracer.record(
        "sim.batch",
        total,
        category="batch",
        track=BATCH_TRACK,
        case=case_name,
        backend=ctx.backend.name,
        machine=ctx.machine.name,
        variable=variable,
        points=points,
    )
    tracer.advance(total)


def batch_problem_scaling(
    case_name: str,
    ctx: ExecutionContext,
    sizes: list[int],
    elem: ElemType = FLOAT64,
) -> list[tuple[int, float, bool]]:
    """Evaluate a whole size sweep vectorized: (n, seconds, supported) rows."""
    points: list[tuple[int, float, bool]] = []
    total = 0.0
    for n in sizes:
        try:
            seconds = measure_case_batch(case_name, ctx, n, elem)
            points.append((n, seconds, True))
            total += seconds
        except UnsupportedOperationError:
            points.append((n, float("nan"), False))
    _record_curve_span(case_name, ctx, "size", total, len(points))
    return points


def batch_strong_scaling(
    case_name: str,
    ctx: ExecutionContext,
    n: int,
    threads: list[int],
    elem: ElemType = FLOAT64,
) -> list[tuple[int, float, bool]]:
    """Evaluate a whole thread sweep vectorized: (t, seconds, supported) rows."""
    points: list[tuple[int, float, bool]] = []
    total = 0.0
    for t in threads:
        sub = ctx.with_(threads=t)
        try:
            seconds = measure_case_batch(case_name, sub, n, elem)
            points.append((t, seconds, True))
            total += seconds
        except UnsupportedOperationError:
            points.append((t, float("nan"), False))
    _record_curve_span(case_name, ctx, "threads", total, len(points))
    return points
