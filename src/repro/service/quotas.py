"""Per-client quotas and admission control for the campaign service.

The daemon multiplexes many clients' sweeps over one shared store; a
single greedy (or buggy) client must not be able to starve everyone
else. Admission control therefore runs *before* any planning work is
scheduled, against a declarative :class:`QuotaPolicy`:

* **per-key in-flight cap** -- each API key may have at most
  ``max_inflight_per_key`` campaigns queued or running;
* **per-campaign size cap** -- a spec that plans more than
  ``max_points_per_campaign`` tasks is rejected outright (413-shaped,
  not retryable);
* **bounded queue** -- at most ``max_queue`` campaigns may be admitted
  but not yet finished across all keys; overflow is rejected with
  HTTP 429 and a ``Retry-After`` hint, never buffered unboundedly.

The controller is deliberately loop-confined: every call happens on the
daemon's single asyncio event loop, so it needs no locks. Rejections
are values (:class:`Rejection`), not exceptions -- the daemon maps them
onto HTTP responses, the scheduler counts them, and tests can assert on
them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceError

__all__ = ["QuotaPolicy", "Rejection", "AdmissionController"]


@dataclass(frozen=True)
class QuotaPolicy:
    """Declarative admission limits one daemon enforces.

    ``retry_after`` is the backoff hint (seconds) sent with every
    retryable rejection; clients honouring it smooth thundering herds
    into a steady trickle the bounded queue can absorb.
    """

    max_inflight_per_key: int = 8
    max_points_per_campaign: int = 100_000
    max_queue: int = 256
    retry_after: float = 0.25

    def __post_init__(self) -> None:
        """Validate that every limit is positive."""
        if self.max_inflight_per_key < 1:
            raise ServiceError("max_inflight_per_key must be >= 1")
        if self.max_points_per_campaign < 1:
            raise ServiceError("max_points_per_campaign must be >= 1")
        if self.max_queue < 1:
            raise ServiceError("max_queue must be >= 1")
        if self.retry_after < 0:
            raise ServiceError("retry_after must be non-negative")


@dataclass(frozen=True)
class Rejection:
    """One admission refusal: HTTP status, reason, and retry hint.

    ``retry_after`` is ``None`` for permanent refusals (an oversized
    campaign does not become admissible by waiting).
    """

    status: int
    reason: str
    retry_after: float | None = None

    @property
    def retryable(self) -> bool:
        """Whether waiting ``retry_after`` seconds and retrying can help."""
        return self.retry_after is not None


class AdmissionController:
    """Stateful gate applying one :class:`QuotaPolicy`.

    Loop-confined (no locks): the daemon calls :meth:`admit` on submit
    and :meth:`release` when a campaign reaches a terminal state, both
    from the event loop. Counters are exposed for ``/metrics``.
    """

    def __init__(self, policy: QuotaPolicy) -> None:
        """Bind to ``policy``; all gauges and counters start at zero."""
        self.policy = policy
        self.inflight_by_key: dict[str, int] = {}
        self.inflight_total = 0
        self.admitted = 0
        self.rejected_queue = 0
        self.rejected_key = 0
        self.rejected_points = 0

    def admit(self, api_key: str, points: int) -> Rejection | None:
        """Admit one campaign of ``points`` tasks for ``api_key``, or refuse.

        On success the key's in-flight count is charged immediately
        (balance with :meth:`release`); on refusal nothing is charged
        and the matching rejection counter increments.
        """
        policy = self.policy
        if points > policy.max_points_per_campaign:
            self.rejected_points += 1
            return Rejection(
                status=413,
                reason=f"campaign plans {points} points, over the "
                       f"{policy.max_points_per_campaign}-point cap",
            )
        if self.inflight_total >= policy.max_queue:
            self.rejected_queue += 1
            return Rejection(
                status=429,
                reason=f"service queue is full ({policy.max_queue} campaigns "
                       f"in flight)",
                retry_after=policy.retry_after,
            )
        held = self.inflight_by_key.get(api_key, 0)
        if held >= policy.max_inflight_per_key:
            self.rejected_key += 1
            return Rejection(
                status=429,
                reason=f"API key has {held} campaigns in flight "
                       f"(cap {policy.max_inflight_per_key})",
                retry_after=policy.retry_after,
            )
        self.inflight_by_key[api_key] = held + 1
        self.inflight_total += 1
        self.admitted += 1
        return None

    def release(self, api_key: str) -> None:
        """Return one in-flight slot for ``api_key`` (campaign finished)."""
        held = self.inflight_by_key.get(api_key, 0)
        if held <= 0:
            raise ServiceError(f"release without admit for key {api_key!r}")
        if held == 1:
            del self.inflight_by_key[api_key]
        else:
            self.inflight_by_key[api_key] = held - 1
        self.inflight_total -= 1

    def rejected_total(self) -> int:
        """Total refusals across all reasons (for ``/metrics``)."""
        return self.rejected_queue + self.rejected_key + self.rejected_points
