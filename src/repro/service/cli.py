"""``pstl-service``: run and talk to the campaign daemon from a shell.

Subcommands mirror the service's lifecycle::

    pstl-service serve ROOT [--port P] [--concurrent N] [--faults plan.json]
    pstl-service submit SPEC.json --url http://... [--wait]
    pstl-service submit --scenario table5 --url http://... [--override J]
    pstl-service status CAMPAIGN_ID --url http://...
    pstl-service events CAMPAIGN_ID --url http://... [--offset N]
    pstl-service results CAMPAIGN_ID --url http://...
    pstl-service store --url http://...
    pstl-service executors --url http://...
    pstl-service loadgen --url http://... [--submissions N] [--concurrency N]

``--root ROOT`` may replace ``--url`` on every client subcommand: the
daemon publishes its bound address to ``<root>/service.json`` when it
starts listening, so scripts that launched ``serve`` against a known
root never have to parse ports out of logs. All outputs are JSON on
stdout (one document per invocation); exit status is 0 on success,
1 on any service/transport error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.faults import load_fault_plan
from repro.service.client import ServiceClient
from repro.service.daemon import serve
from repro.service.loadgen import LoadgenConfig, assert_slo, run_loadgen
from repro.service.quotas import QuotaPolicy

__all__ = ["main"]


def _emit(doc: Any) -> None:
    """Print one JSON document to stdout."""
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _base_url(args: argparse.Namespace) -> str:
    """Resolve the daemon address from ``--url`` or ``<root>/service.json``."""
    if args.url:
        return args.url
    if args.root:
        meta = json.loads(
            (Path(args.root) / "service.json").read_text(encoding="utf-8"))
        return f"http://{meta['host']}:{meta['port']}"
    raise ReproError("pass --url or --root to locate the daemon")


def _add_target(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``--url`` / ``--root`` / ``--api-key`` options."""
    parser.add_argument("--url", help="daemon base URL (http://host:port)")
    parser.add_argument("--root", help="service root; reads its service.json")
    parser.add_argument("--api-key", default="cli",
                        help="identity quotas are enforced against")


def _build_parser() -> argparse.ArgumentParser:
    """The ``pstl-service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="pstl-service",
        description="campaign-as-a-service daemon and client")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the daemon in the foreground")
    p.add_argument("root", help="service root directory (store + campaigns)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port (published to service.json)")
    p.add_argument("--concurrent", type=int, default=2,
                   help="campaigns executing at once")
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool width inside each campaign")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="per-API-key in-flight campaign cap")
    p.add_argument("--max-points", type=int, default=100_000,
                   help="largest admissible campaign (planned points)")
    p.add_argument("--max-queue", type=int, default=256,
                   help="total campaigns admitted but unfinished")
    p.add_argument("--faults", help="fault plan JSON (service chaos mode)")
    p.add_argument("--fault-seed", type=int,
                   help="override the fault plan's seed")
    p.add_argument("--lease-ttl", type=float, default=5.0,
                   help="remote wave lease TTL in seconds")
    p.add_argument("--executor-ttl", type=float, default=10.0,
                   help="executor liveness window in seconds")
    p.add_argument("--wave-timeout", type=float, default=60.0,
                   help="reclaim a remote wave for local execution after this")

    p = sub.add_parser("submit", help="submit a campaign spec or scenario")
    p.add_argument("spec", nargs="?",
                   help="path to the campaign spec JSON")
    p.add_argument("--scenario", metavar="NAME",
                   help="submit a registered scenario by name instead "
                        "of a spec file")
    p.add_argument("--override", metavar="JSON", default=None,
                   help="axis overrides for --scenario, as a JSON "
                        'object (e.g. \'{"size_exps": [12]}\')')
    _add_target(p)
    p.add_argument("--wait", action="store_true",
                   help="block until the campaign reaches a terminal state")
    p.add_argument("--max-attempts", type=int, default=8,
                   help="retry budget for 429/503 + Retry-After")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait budget in seconds")

    p = sub.add_parser("status", help="one campaign's state and progress")
    p.add_argument("id")
    _add_target(p)

    p = sub.add_parser("events", help="journal rows past a byte offset")
    p.add_argument("id")
    _add_target(p)
    p.add_argument("--offset", type=int, default=0,
                   help="resume cursor from a prior call's next_offset")

    p = sub.add_parser("results", help="a finished campaign's result rows")
    p.add_argument("id")
    _add_target(p)

    p = sub.add_parser("store", help="shared-cache stats off the shard index")
    _add_target(p)

    p = sub.add_parser("executors",
                       help="the remote executor registry and its counters")
    _add_target(p)

    p = sub.add_parser("loadgen", help="drive the SLO load harness")
    _add_target(p)
    p.add_argument("--submissions", type=int, default=1000)
    p.add_argument("--concurrency", type=int, default=64)
    p.add_argument("--warm-fraction", type=float, default=0.25)
    p.add_argument("--dup-fraction", type=float, default=0.25)
    p.add_argument("--check", action="store_true",
                   help="exit non-zero when the run violates the SLOs")
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the daemon until SIGTERM/SIGINT."""
    faults = None
    if args.faults:
        faults = load_fault_plan(args.faults)
        if args.fault_seed is not None:
            faults = faults.with_seed(args.fault_seed)
    serve(
        args.root, host=args.host, port=args.port,
        policy=QuotaPolicy(max_inflight_per_key=args.max_inflight,
                           max_points_per_campaign=args.max_points,
                           max_queue=args.max_queue),
        concurrent=args.concurrent, campaign_workers=args.workers,
        faults=faults,
        lease_ttl=args.lease_ttl, executor_ttl=args.executor_ttl,
        wave_timeout=args.wave_timeout,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a spec file or a named scenario; optionally wait."""
    if (args.spec is None) == (args.scenario is None):
        raise ReproError("pass exactly one of SPEC.json or --scenario NAME")
    if args.override is not None and args.scenario is None:
        raise ReproError("--override only applies to --scenario submissions")
    if args.scenario:
        payload = {"scenario": args.scenario}
        if args.override:
            overrides = json.loads(args.override)
            if not isinstance(overrides, dict):
                raise ReproError("--override must be a JSON object")
            payload.update(overrides)
    else:
        payload = json.loads(Path(args.spec).read_text(encoding="utf-8"))
    client = ServiceClient(_base_url(args), api_key=args.api_key)
    doc = client.submit(payload, max_attempts=args.max_attempts)
    if args.wait:
        doc = client.wait(doc["id"], timeout=args.timeout)
    _emit(doc)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Run the load generator and print its report."""
    config = LoadgenConfig(
        submissions=args.submissions, concurrency=args.concurrency,
        warm_fraction=args.warm_fraction, dup_fraction=args.dup_fraction,
    )
    report = run_loadgen(_base_url(args), config)
    _emit(report.to_dict())
    if args.check:
        assert_slo(report)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            _emit(ServiceClient(_base_url(args),
                                api_key=args.api_key).status(args.id))
            return 0
        if args.command == "events":
            _emit(ServiceClient(_base_url(args), api_key=args.api_key)
                  .events(args.id, args.offset))
            return 0
        if args.command == "results":
            _emit(ServiceClient(_base_url(args),
                                api_key=args.api_key).results(args.id))
            return 0
        if args.command == "store":
            _emit(ServiceClient(_base_url(args),
                                api_key=args.api_key).store())
            return 0
        if args.command == "executors":
            _emit(ServiceClient(_base_url(args),
                                api_key=args.api_key).executors())
            return 0
        if args.command == "loadgen":
            return _cmd_loadgen(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"pstl-service: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
