"""Campaign scheduler: admitted submissions through the executor, concurrently.

The scheduler owns the service's campaign lifecycle. Every admitted
submission becomes a :class:`CampaignRecord` keyed by a *content-derived*
campaign id (the sha256 of the spec's canonical JSON), which is what
makes duplicate submissions cheap: resubmitting a spec the service has
already seen -- the load generator's ``dup`` traffic class -- returns
the existing record instead of planning anything, and a *warm* spec
(new name, previously-executed grid) runs against the shared
content-addressed cache and finishes on pure hits.

Campaigns execute through the unchanged :func:`~repro.campaign.run_campaign`
pipeline (wave-fused by default) on worker threads, at most
``concurrent`` at a time, each with its own campaign directory
(``<root>/campaigns/<id>/``) but one shared store (``<root>/cache``) --
the cross-process-safe journal append and atomic object publish in
:mod:`repro.campaign.store` are what make that sharing sound.

Graceful drain: :meth:`CampaignService.drain` stops admissions, asks
every running executor to stop *between waves* (``should_stop``), and
waits. Everything journaled stays durable; on the next start the
scheduler rescans ``campaigns/`` and resumes whatever is incomplete, so
a SIGTERM'd daemon restarted mid-campaign converges to bit-identical
results (the shutdown suite pins this).

All record mutation happens on the daemon's event loop; the only
off-loop work is the executor call itself, which touches no scheduler
state.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.campaign.executor import load_campaign, run_campaign
from repro.campaign.plan import plan_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    DONE,
    FAILED,
    NA,
    Journal,
    JournalReader,
    ResultStore,
    read_spec,
    write_spec,
)
from repro.errors import CampaignError, ReproError, ServiceError
from repro.faults import FaultInjector, FaultPlan
from repro.remote.coordinator import RemoteCoordinator
from repro.remote.registry import ExecutorRegistry
from repro.service.quotas import AdmissionController, QuotaPolicy, Rejection
from repro.trace import get_tracer

__all__ = [
    "CampaignRecord",
    "CampaignService",
    "campaign_id",
    "QUEUED",
    "RUNNING",
    "COMPLETE",
    "INTERRUPTED",
    "BROKEN",
]

#: Lifecycle states a record moves through (terminal: COMPLETE, BROKEN).
QUEUED = "queued"
RUNNING = "running"
COMPLETE = "complete"
INTERRUPTED = "interrupted"
BROKEN = "broken"


def campaign_id(spec: CampaignSpec) -> str:
    """Content-derived campaign id: sha256 of the spec's canonical JSON.

    Identical specs always collide onto the same id -- that collision
    *is* the service's duplicate-submission dedup.
    """
    return hashlib.sha256(spec.canonical().encode()).hexdigest()[:16]


@dataclass
class CampaignRecord:
    """One campaign's service-side state (never the results themselves)."""

    id: str
    spec: CampaignSpec
    api_key: str
    state: str = QUEUED
    points: int = 0
    submitted_at: float = 0.0
    finished_at: float | None = None
    error: str | None = None
    #: Terminal-entry counts folded incrementally from the journal.
    progress: dict[str, int] = field(default_factory=dict)
    #: Executor stats summary line (set when a run finishes).
    stats: str | None = None
    reader: JournalReader | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready status document (what ``GET /campaigns/{id}`` serves)."""
        return {
            "id": self.id,
            "name": self.spec.name,
            "state": self.state,
            "points": self.points,
            "progress": dict(self.progress),
            "stats": self.stats,
            "error": self.error,
        }


class CampaignService:
    """The scheduler: admission, dedup, concurrent execution, drain, resume."""

    def __init__(
        self,
        root: str | Path,
        *,
        policy: QuotaPolicy | None = None,
        concurrent: int = 2,
        campaign_workers: int = 0,
        retries: int = 1,
        faults: FaultPlan | None = None,
        lease_ttl: float = 5.0,
        executor_ttl: float = 10.0,
        wave_timeout: float = 60.0,
    ) -> None:
        """Bind to the service ``root`` directory (created on start).

        ``concurrent`` bounds how many campaigns execute at once;
        ``campaign_workers`` is the process-pool width *inside* each
        campaign (0 = inline on the runner thread, the service default:
        concurrency comes from multiplexing campaigns, not from nesting
        pools). ``faults`` activates the request-side injection sites
        (``service_reject``, ``slow_client``) plus the wire/lease sites
        the executor registry consults (``segment_lost``,
        ``lease_expire``). ``lease_ttl``/``executor_ttl``/``wave_timeout``
        parameterize remote wave dispatch (see :mod:`repro.remote`):
        campaigns are offered to registered executors first and fall
        back to local execution when none is live.
        """
        if concurrent < 1:
            raise ServiceError("concurrent must be >= 1")
        if campaign_workers < 0:
            raise ServiceError("campaign_workers must be >= 0")
        self.root = Path(root)
        self.cache_root = self.root / "cache"
        self.campaigns_root = self.root / "campaigns"
        self.policy = policy if policy is not None else QuotaPolicy()
        self.admission = AdmissionController(self.policy)
        self.concurrent = concurrent
        self.campaign_workers = campaign_workers
        self.retries = retries
        self.injector = FaultInjector(faults) if faults is not None else None
        self.registry = ExecutorRegistry(
            lease_ttl=lease_ttl, executor_ttl=executor_ttl,
            injector=self.injector)
        self.wave_timeout = float(wave_timeout)
        self._coordinators: dict[str, RemoteCoordinator] = {}
        self.records: dict[str, CampaignRecord] = {}
        self.submitted = 0
        self.deduped = 0
        self.injected_rejects = 0
        self.completed = 0
        self.interrupted = 0
        self.broken = 0
        self._semaphore = asyncio.Semaphore(concurrent)
        self._draining = asyncio.Event()
        self._runners: set[asyncio.Task] = set()
        self._store_handle: ResultStore | None = None

    def _store(self) -> ResultStore:
        """The shared cache as a (lazily bound) :class:`ResultStore`.

        One long-lived handle so metrics polls reuse the store's shard
        caches -- each poll costs O(shards touched) stat calls, not an
        object-tree walk. Campaign runners still construct their own
        handles; all handles share the same on-disk index.
        """
        if self._store_handle is None:
            self._store_handle = ResultStore(self.cache_root)
        return self._store_handle

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        """Create the root layout and re-adopt campaigns left on disk.

        Every ``campaigns/<id>/spec.json`` from a previous daemon life
        is registered again; incomplete ones (journal missing terminal
        entries) are re-queued for resume. Returns how many campaigns
        were re-queued.
        """
        self.cache_root.mkdir(parents=True, exist_ok=True)
        self.campaigns_root.mkdir(parents=True, exist_ok=True)
        resumed = 0
        for spec_path in sorted(self.campaigns_root.glob("*/spec.json")):
            try:
                spec = CampaignSpec.from_dict(read_spec(spec_path))
            except (CampaignError, ReproError):
                continue  # unreadable leftovers are not this daemon's to fix
            cid = campaign_id(spec)
            if cid != spec_path.parent.name or cid in self.records:
                continue
            record = self._register(spec, cid, api_key="recovered")
            done = Journal(self._dir(cid) / "journal.jsonl").completed_ids()
            pending = [t for t in plan_campaign(spec).runnable
                       if t.task_id not in done]
            if not pending:
                record.state = COMPLETE
                self.admission.release(record.api_key)
            else:
                resumed += 1
                self._launch(record)
        return resumed

    def _dir(self, cid: str) -> Path:
        """The campaign directory owned by record ``cid``."""
        return self.campaigns_root / cid

    def _register(self, spec: CampaignSpec, cid: str, api_key: str) -> CampaignRecord:
        """Create, admit (unconditionally) and index a record for ``spec``."""
        record = CampaignRecord(
            id=cid, spec=spec, api_key=api_key,
            points=len(plan_campaign(spec).tasks),
            submitted_at=time.time(),
            reader=JournalReader(self._dir(cid) / "journal.jsonl"),
        )
        # start() re-admits recovered campaigns outside the normal
        # admit() path; charge the key directly so release() balances.
        self.admission.inflight_by_key[api_key] = (
            self.admission.inflight_by_key.get(api_key, 0) + 1
        )
        self.admission.inflight_total += 1
        self.records[cid] = record
        return record

    # -- submission --------------------------------------------------------

    def submit(
        self, payload: Mapping[str, Any], api_key: str = "anonymous"
    ) -> tuple[CampaignRecord | None, bool, Rejection | None]:
        """Admit one submission: ``(record, deduped, rejection)``.

        Exactly one of ``record`` / ``rejection`` is set. A payload that
        does not parse as a :class:`CampaignSpec` raises
        :class:`~repro.errors.CampaignError` (the daemon maps it to 400).
        A payload carrying a ``scenario`` key is resolved through the
        scenario registry first (remaining keys are axis overrides), so
        scenario submissions dedup against equivalent inline specs via
        the shared content-derived campaign id; a bad scenario raises
        :class:`~repro.errors.ScenarioError` (also a 400 at the daemon).
        """
        self.submitted += 1
        if "scenario" in payload:
            from repro.scenarios.runner import service_payload

            payload = service_payload(payload)
        try:
            spec = CampaignSpec.from_dict(payload)
        except TypeError as exc:  # missing required fields
            raise CampaignError(f"invalid campaign spec: {exc}") from None
        cid = campaign_id(spec)
        existing = self.records.get(cid)
        if existing is not None:
            self.deduped += 1
            self._trace("service.dedup", campaign=cid)
            return existing, True, None
        if self._draining.is_set():
            return None, False, Rejection(
                status=503, reason="service is draining",
                retry_after=self.policy.retry_after,
            )
        if self.injector is not None and self.injector.claim_service_reject(cid):
            self.injected_rejects += 1
            self._trace("service.reject", campaign=cid, injected=True)
            return None, False, Rejection(
                status=503, reason="injected service_reject",
                retry_after=self.policy.retry_after,
            )
        points = len(plan_campaign(spec).tasks)
        rejection = self.admission.admit(api_key, points)
        if rejection is not None:
            self._trace("service.reject", campaign=cid, reason=rejection.reason)
            return None, False, rejection
        record = CampaignRecord(
            id=cid, spec=spec, api_key=api_key, points=points,
            submitted_at=time.time(),
            reader=JournalReader(self._dir(cid) / "journal.jsonl"),
        )
        # persist the spec at admission, not first execution: an admitted
        # campaign must survive a drain even if it never got to start
        write_spec(self._dir(cid) / "spec.json", spec.to_dict())
        self.records[cid] = record
        self._launch(record)
        self._trace("service.submit", campaign=cid, points=points)
        return record, False, None

    def _launch(self, record: CampaignRecord) -> None:
        """Schedule ``record``'s runner task on the running event loop."""
        task = asyncio.get_running_loop().create_task(self._run(record))
        self._runners.add(task)
        task.add_done_callback(self._runners.discard)

    async def _run(self, record: CampaignRecord) -> None:
        """Execute one campaign on a worker thread, bounded by ``concurrent``."""
        async with self._semaphore:
            if record.state != QUEUED:
                return
            if self._draining.is_set():
                record.state = INTERRUPTED  # drained before it ever started
                self.interrupted += 1
                self.admission.release(record.api_key)
                return
            record.state = RUNNING
            t0 = time.perf_counter()
            # One coordinator per campaign run: waves go remote-first
            # through the executor registry and degrade to local
            # execution when no executor is live (dispatch returns
            # None). The coordinator lives on the runner thread; only
            # registry state is shared with the event loop.
            coordinator = RemoteCoordinator(
                self.registry,
                store=ResultStore(self.cache_root),
                campaign=record.id,
                ledger_path=self._dir(record.id) / "ingest.jsonl",
                retries=self.retries,
                wave_timeout=self.wave_timeout,
            )
            self._coordinators[record.id] = coordinator
            try:
                outcome = await asyncio.to_thread(
                    run_campaign,
                    record.spec,
                    campaign_dir=self._dir(record.id),
                    store=ResultStore(self.cache_root),
                    workers=self.campaign_workers,
                    retries=self.retries,
                    resume=True,
                    should_stop=self._draining.is_set,
                    dispatch=coordinator.dispatch,
                )
            except Exception as exc:  # noqa: BLE001 - runner boundary
                record.state = BROKEN
                record.error = f"{type(exc).__name__}: {exc}"
                self.broken += 1
            else:
                record.stats = outcome.stats.summary()
                if outcome.stats.drained:
                    record.state = INTERRUPTED
                    self.interrupted += 1
                else:
                    record.state = COMPLETE
                    self.completed += 1
            record.finished_at = time.time()
            self.admission.release(record.api_key)
            self._trace("service.campaign", time.perf_counter() - t0,
                        campaign=record.id, state=record.state)

    # -- reads -------------------------------------------------------------

    def status(self, cid: str) -> CampaignRecord:
        """The record for ``cid``, its progress refreshed incrementally.

        Each call folds only the journal bytes appended since the last
        one (the record keeps a :class:`JournalReader`), so polling
        clients cost O(new rows) per poll, not O(journal).
        """
        record = self._get(cid)
        if record.reader is not None:
            for entry in record.reader.poll():
                status = entry.get("status")
                if status in (DONE, NA, FAILED):
                    record.progress[status] = record.progress.get(status, 0) + 1
        return record

    def events(self, cid: str, offset: int = 0) -> dict[str, Any]:
        """Journal entries of ``cid`` from byte ``offset``, plus the next one.

        Stateless per call: each client owns its offset cursor and pays
        only for what appended past it, so many streaming clients do not
        multiply journal rescans.
        """
        record = self._get(cid)
        reader = JournalReader(self._dir(cid) / "journal.jsonl", offset=offset)
        events = reader.poll()
        return {
            "id": cid,
            "state": record.state,
            "events": events,
            "next_offset": reader.offset,
        }

    def results(self, cid: str) -> dict[str, Any]:
        """Stored query rows for ``cid`` (complete campaigns only).

        Raises :class:`ServiceError` while the campaign is still in
        flight -- partial grids are served by ``/events``, results are
        the finished artifact.
        """
        record = self._get(cid)
        if record.state not in (COMPLETE, BROKEN):
            raise ServiceError(f"campaign {cid} is {record.state}; results "
                               f"are served once it completes")
        outcome = load_campaign(self._dir(cid), store=ResultStore(self.cache_root))
        rows = []
        for task in outcome.plan.tasks:
            result = outcome.results.get(task.task_id)
            if result is None:
                continue
            p = task.point
            rows.append({
                "task_id": task.task_id, "kind": task.kind,
                "machine": p.machine, "backend": p.backend, "case": p.case,
                "size_exp": p.size_exp, "threads": p.threads,
                "status": result.status, "seconds": result.seconds,
                "error": result.error,
            })
        return {"id": cid, "state": record.state, "rows": rows}

    def _get(self, cid: str) -> CampaignRecord:
        """Look up ``cid`` or raise the 404-shaped :class:`ServiceError`."""
        record = self.records.get(cid)
        if record is None:
            raise ServiceError(f"unknown campaign {cid!r}")
        return record

    # -- drain -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether a drain has been requested (new submissions get 503)."""
        return self._draining.is_set()

    async def drain(self) -> None:
        """Stop admissions, stop executors between waves, wait for them.

        Idempotent. Afterwards every record is in a terminal or
        resumable state and every journal is durable; a restarted
        daemon's :meth:`start` picks the interrupted ones back up.
        """
        self._draining.set()
        self._trace("service.drain")
        if self._runners:
            await asyncio.gather(*list(self._runners), return_exceptions=True)

    # -- metrics -----------------------------------------------------------

    def counters(self) -> dict[str, int | float]:
        """Scheduler-side counters for the ``/metrics`` endpoint.

        ``store_objects`` comes from the store's persistent shard index
        (O(result), cached between polls) -- the pre-index
        ``rglob("*.json")`` walk here was the service's last O(all
        objects) hot path.
        """
        states: dict[str, int] = {}
        for record in self.records.values():
            states[record.state] = states.get(record.state, 0) + 1
        store = self._store()
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "admitted": self.admission.admitted,
            "rejected": self.admission.rejected_total(),
            "rejected_queue": self.admission.rejected_queue,
            "rejected_key": self.admission.rejected_key,
            "rejected_points": self.admission.rejected_points,
            "injected_rejects": self.injected_rejects,
            "completed": self.completed,
            "interrupted": self.interrupted,
            "broken": self.broken,
            "inflight": self.admission.inflight_total,
            "queued": states.get(QUEUED, 0),
            "running": states.get(RUNNING, 0),
            "draining": int(self.draining),
            "store_objects": store.count_objects(),
            "store_indexed": int(store.indexed),
            **{f"remote_{name}": value
               for name, value in self.registry.counters().items()},
            **{f"remote_{name}": value
               for name, value in self._dispatch_counters().items()},
        }

    def _dispatch_counters(self) -> dict[str, int]:
        """Dispatch/ingest counters aggregated across campaign coordinators."""
        agg: dict[str, int] = {}
        for coordinator in self._coordinators.values():
            for name, value in coordinator.counters().items():
                agg[name] = agg.get(name, 0) + int(value)
        return agg

    def store_stats(self) -> dict[str, int | bool]:
        """Store-level stats for the ``/store`` endpoint (index-backed)."""
        store = self._store()
        qdir = self.cache_root / "quarantine"
        return {
            "objects": store.count_objects(),
            "indexed": store.indexed,
            "shards": len(store.index.prefixes()) if store.index else 0,
            "quarantined": (
                sum(1 for _ in qdir.glob("*.json")) if qdir.is_dir() else 0
            ),
        }

    def _trace(self, name: str, duration: float = 0.0, **attrs: Any) -> None:
        """Emit one service span (free when tracing is off)."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(name, duration, category="service", track="service",
                          **attrs)
