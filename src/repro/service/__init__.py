"""Campaign-as-a-service: a daemon front end over the campaign pipeline.

``repro.service`` turns the batch campaign runner into a long-lived
multi-tenant daemon: clients POST campaign specs over a tiny HTTP/JSON
API, the scheduler runs them concurrently through the unchanged
planner/executor (wave-fused by default) against **one shared
content-addressed store**, and duplicate or overlapping submissions
collapse onto cached work instead of recomputing it. Admission control
(per-key in-flight caps, a bounded queue, campaign size limits) keeps
one greedy client from starving the rest, and SIGTERM drains
gracefully: running campaigns stop between waves with their journals
durable, and a restarted daemon resumes them to bit-identical results.

The pieces:

* :mod:`repro.service.quotas` -- :class:`QuotaPolicy`,
  :class:`AdmissionController`: who may submit how much;
* :mod:`repro.service.scheduler` -- :class:`CampaignService`: dedup,
  concurrent execution, drain and restart-resume;
* :mod:`repro.service.daemon` -- :class:`ServiceDaemon`, stdlib-only
  asyncio HTTP front end, plus :func:`start_background` for embedding;
* :mod:`repro.service.client` -- :class:`ServiceClient`, the blocking
  stdlib client the CLI and tests use;
* :mod:`repro.service.loadgen` -- the SLO harness: thousands of
  concurrent mixed cold/warm/duplicate submissions, latency
  percentiles, and the zero-lost/zero-corrupted audit;
* :mod:`repro.service.cli` -- the ``pstl-service`` command.

See docs/SERVICE.md for the API reference and SLO table.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import BackgroundService, ServiceDaemon, serve, start_background
from repro.service.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    assert_slo,
    run_loadgen,
)
from repro.service.quotas import AdmissionController, QuotaPolicy, Rejection
from repro.service.scheduler import CampaignRecord, CampaignService, campaign_id

__all__ = [
    "ServiceClient",
    "ServiceDaemon",
    "BackgroundService",
    "serve",
    "start_background",
    "LoadgenConfig",
    "LoadgenReport",
    "run_loadgen",
    "assert_slo",
    "QuotaPolicy",
    "Rejection",
    "AdmissionController",
    "CampaignService",
    "CampaignRecord",
    "campaign_id",
]
