"""Load generator and SLO harness for the campaign service.

This module answers the service's headline question with numbers: can
one daemon absorb *thousands* of concurrent campaign submissions over a
shared store without losing or corrupting a result, and what latency do
clients see while it does?

The generator drives a deterministic traffic mix over real HTTP (its
own ``asyncio`` socket path -- the blocking
:class:`~repro.service.client.ServiceClient` cannot hold thousands of
requests in flight):

* **cold** -- a grid no prior submission used; every point executes;
* **warm** -- a previously-submitted grid under a new campaign name:
  a new campaign whose points all hit the shared cache;
* **dup** -- a byte-identical resubmission, which must collapse onto
  the existing campaign id without planning anything.

Clients honour the protocol: a 429/503 with ``Retry-After`` is slept
and retried (bounded), never counted as a failure unless the budget
runs out. After the submission phase the generator polls every accepted
campaign to a terminal state, then audits completeness over HTTP --
every campaign complete, every result grid exactly as long as its
plan, no failed points -- which is the "zero lost or corrupted"
acceptance check. :func:`LoadgenReport.to_dict` feeds
``BENCH_SERVICE.json`` and :func:`assert_slo` is the CI gate.

Latency accounting: each submission's wall time is measured around the
socket round trip, and the daemon's ``X-Handle-Ms`` header lets the
report split p50/p99 wall latency from *request overhead* (wall minus
server handle time).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import urlsplit

from repro.errors import ServiceError
from repro.suite.cases import case_names

__all__ = ["LoadgenConfig", "LoadgenReport", "build_payloads", "run_loadgen",
           "assert_slo", "percentile"]

#: Grid dimensions the cold-traffic generator cycles through.
_SIZE_EXPS = tuple(range(5, 15))
_THREADS = (2, 4, 8)


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ServiceError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run's shape: volume, concurrency and traffic mix."""

    submissions: int = 1000
    concurrency: int = 64
    warm_fraction: float = 0.25
    dup_fraction: float = 0.25
    max_attempts: int = 8
    machine: str = "A"
    backend: str = "GCC-TBB"
    api_keys: int = 16
    submit_timeout: float = 30.0
    completion_timeout: float = 300.0

    def __post_init__(self) -> None:
        """Validate volume, concurrency and that the mix fits in 1.0."""
        if self.submissions < 1:
            raise ServiceError("submissions must be >= 1")
        if self.concurrency < 1:
            raise ServiceError("concurrency must be >= 1")
        if self.api_keys < 1:
            raise ServiceError("api_keys must be >= 1")
        if self.max_attempts < 1:
            raise ServiceError("max_attempts must be >= 1")
        for name in ("warm_fraction", "dup_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ServiceError(f"{name} must be in [0, 1], got {value}")
        if self.warm_fraction + self.dup_fraction > 1.0:
            raise ServiceError("warm_fraction + dup_fraction must be <= 1")


@dataclass
class LoadgenReport:
    """Everything one load run measured (JSON-ready via :meth:`to_dict`)."""

    submissions: int = 0
    cold: int = 0
    warm: int = 0
    dup: int = 0
    accepted: int = 0
    deduped: int = 0
    retried: int = 0
    submit_failures: int = 0
    campaigns: int = 0
    completed: int = 0
    lost: int = 0
    corrupted: int = 0
    duration_s: float = 0.0
    throughput_rps: float = 0.0
    submit_p50_ms: float = 0.0
    submit_p99_ms: float = 0.0
    request_overhead_ms: float = 0.0
    dedup_hit_rate: float = 0.0
    completed_rate: float = 0.0
    wall_ms: list[float] = field(default_factory=list, repr=False)
    handle_ms: list[float] = field(default_factory=list, repr=False)

    def finalize(self) -> None:
        """Derive the aggregate rates and percentiles from raw samples."""
        self.submit_p50_ms = percentile(self.wall_ms, 0.50)
        self.submit_p99_ms = percentile(self.wall_ms, 0.99)
        if self.wall_ms and len(self.handle_ms) == len(self.wall_ms):
            overheads = [w - h for w, h in zip(self.wall_ms, self.handle_ms)]
            self.request_overhead_ms = sum(overheads) / len(overheads)
        if self.duration_s > 0:
            self.throughput_rps = self.submissions / self.duration_s
        if self.dup:
            self.dedup_hit_rate = self.deduped / self.dup
        if self.campaigns:
            self.completed_rate = self.completed / self.campaigns

    def to_dict(self) -> dict[str, Any]:
        """The report without its raw sample arrays (ledger-sized)."""
        return {
            "submissions": self.submissions,
            "cold": self.cold, "warm": self.warm, "dup": self.dup,
            "accepted": self.accepted, "deduped": self.deduped,
            "retried": self.retried,
            "submit_failures": self.submit_failures,
            "campaigns": self.campaigns, "completed": self.completed,
            "lost": self.lost, "corrupted": self.corrupted,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "submit_p50_ms": round(self.submit_p50_ms, 3),
            "submit_p99_ms": round(self.submit_p99_ms, 3),
            "request_overhead_ms": round(self.request_overhead_ms, 3),
            "dedup_hit_rate": round(self.dedup_hit_rate, 4),
            "completed_rate": round(self.completed_rate, 4),
        }


def build_payloads(config: LoadgenConfig) -> list[tuple[str, dict[str, Any]]]:
    """The deterministic submission schedule: ``(traffic_class, payload)``.

    Cold grids cycle (case, size_exp, threads) so consecutive cold
    submissions never share a point; warm entries re-use an earlier
    grid under a fresh name; dups repeat an earlier payload verbatim.
    The schedule depends only on ``config``, so two runs of the same
    config submit byte-identical traffic.
    """
    cases = case_names()
    unique_grids = len(cases) * len(_SIZE_EXPS) * len(_THREADS)
    payloads: list[tuple[str, dict[str, Any]]] = []
    prior: list[dict[str, Any]] = []
    n_dup = int(config.submissions * config.dup_fraction)
    n_warm = int(config.submissions * config.warm_fraction)
    n_cold = config.submissions - n_dup - n_warm
    if n_cold < 1:
        raise ServiceError("traffic mix leaves no cold submissions")
    if n_cold > unique_grids:
        raise ServiceError(
            f"{n_cold} cold submissions need more than the {unique_grids} "
            f"distinct grids available; lower submissions or raise the "
            f"warm/dup fractions")
    cold_done = warm_done = dup_done = 0
    for i in range(config.submissions):
        # interleave classes deterministically along the schedule:
        # positions 1 mod 4 lean warm, 3 mod 4 lean dup, the rest cold
        # until each class's budget runs out.
        if prior and dup_done < n_dup and i % 4 == 3:
            payloads.append(("dup", dict(prior[dup_done % len(prior)])))
            dup_done += 1
        elif prior and warm_done < n_warm and i % 4 == 1:
            base = dict(prior[warm_done % len(prior)])
            base["name"] = f"loadgen-warm-{warm_done:05d}"
            payloads.append(("warm", base))
            warm_done += 1
        elif cold_done < n_cold:
            k = cold_done
            payload = {
                "name": f"loadgen-cold-{k:05d}",
                "machines": [config.machine],
                "backends": [config.backend],
                "cases": [cases[k % len(cases)]],
                "size_exps": [_SIZE_EXPS[(k // len(cases)) % len(_SIZE_EXPS)]],
                "threads": [_THREADS[(k // (len(cases) * len(_SIZE_EXPS)))
                                     % len(_THREADS)]],
            }
            payloads.append(("cold", payload))
            prior.append(payload)
            cold_done += 1
        elif prior and warm_done < n_warm:
            base = dict(prior[warm_done % len(prior)])
            base["name"] = f"loadgen-warm-{warm_done:05d}"
            payloads.append(("warm", base))
            warm_done += 1
        else:  # only dup budget remains by construction
            payloads.append(("dup", dict(prior[dup_done % len(prior)])))
            dup_done += 1
    return payloads


async def _http(host: str, port: int, method: str, path: str,
                body: bytes = b"", api_key: str = "loadgen",
                timeout: float = 30.0) -> tuple[int, dict[str, str], bytes]:
    """One raw ``Connection: close`` round trip on an asyncio socket."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"X-Api-Key: {api_key}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    try:
        writer.write(head + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


async def _submit_one(host: str, port: int, payload: dict[str, Any],
                      api_key: str, config: LoadgenConfig,
                      report: LoadgenReport) -> str | None:
    """Submit one payload with honest backoff; returns the campaign id."""
    body = json.dumps(payload).encode("utf-8")
    for _attempt in range(config.max_attempts):
        t0 = time.perf_counter()
        try:
            status, headers, raw = await _http(
                host, port, "POST", "/campaigns", body, api_key,
                config.submit_timeout)
        except (OSError, asyncio.TimeoutError):
            report.submit_failures += 1
            return None
        wall_ms = (time.perf_counter() - t0) * 1000.0
        report.wall_ms.append(wall_ms)
        report.handle_ms.append(float(headers.get("x-handle-ms", "0") or "0"))
        if status in (200, 202):
            doc = json.loads(raw.decode("utf-8"))
            report.accepted += 1
            if doc.get("deduped"):
                report.deduped += 1
            return str(doc["id"])
        if status in (429, 503) and "retry-after" in headers:
            report.retried += 1
            await asyncio.sleep(float(headers["retry-after"]))
            continue
        report.submit_failures += 1
        return None
    report.submit_failures += 1
    return None


async def _await_completion(host: str, port: int, ids: list[str],
                            config: LoadgenConfig,
                            report: LoadgenReport) -> None:
    """Poll every campaign to a terminal state, then audit its results."""
    deadline = time.monotonic() + config.completion_timeout
    pending = dict.fromkeys(ids)  # insertion-ordered unique ids
    while pending and time.monotonic() < deadline:
        still: list[str] = []
        for cid in pending:
            status, _headers, raw = await _http(
                host, port, "GET", f"/campaigns/{cid}",
                timeout=config.submit_timeout)
            if status != 200:
                report.lost += 1
                continue
            state = json.loads(raw.decode("utf-8")).get("state")
            if state == "complete":
                report.completed += 1
            elif state in ("broken", "interrupted"):
                report.lost += 1
            else:
                still.append(cid)
        pending = dict.fromkeys(still)
        if pending:
            await asyncio.sleep(0.05)
    report.lost += len(pending)


async def _audit_results(host: str, port: int, ids: list[str],
                         config: LoadgenConfig,
                         report: LoadgenReport) -> None:
    """Fetch every completed grid and count missing/failed rows as corrupt."""
    for cid in ids:
        status, _headers, raw = await _http(
            host, port, "GET", f"/campaigns/{cid}/results",
            timeout=config.submit_timeout)
        if status != 200:
            continue  # non-complete campaigns were already counted lost
        doc = json.loads(raw.decode("utf-8"))
        rows = doc.get("rows", [])
        status_doc_raw = await _http(host, port, "GET", f"/campaigns/{cid}",
                                     timeout=config.submit_timeout)
        points = json.loads(status_doc_raw[2].decode("utf-8")).get("points", 0)
        failed = sum(1 for row in rows if row.get("status") == "failed")
        if len(rows) != points or failed:
            report.corrupted += 1


async def _run(base_url: str, config: LoadgenConfig) -> LoadgenReport:
    """The async body of :func:`run_loadgen`."""
    parts = urlsplit(base_url)
    if parts.scheme != "http" or not parts.hostname or parts.port is None:
        raise ServiceError(f"base_url must be http://host:port, got {base_url!r}")
    host, port = parts.hostname, parts.port
    schedule = build_payloads(config)
    report = LoadgenReport(submissions=len(schedule))
    for klass, _payload in schedule:
        setattr(report, klass, getattr(report, klass) + 1)
    semaphore = asyncio.Semaphore(config.concurrency)
    ids: list[str | None] = [None] * len(schedule)

    async def bounded(index: int, payload: dict[str, Any]) -> None:
        async with semaphore:
            api_key = f"key-{index % config.api_keys:02d}"
            ids[index] = await _submit_one(
                host, port, payload, api_key, config, report)

    t0 = time.perf_counter()
    await asyncio.gather(*(bounded(i, payload)
                           for i, (_klass, payload) in enumerate(schedule)))
    report.duration_s = time.perf_counter() - t0
    unique_ids = list(dict.fromkeys(cid for cid in ids if cid is not None))
    report.campaigns = len(unique_ids)
    await _await_completion(host, port, unique_ids, config, report)
    await _audit_results(host, port, unique_ids, config, report)
    report.finalize()
    return report


def run_loadgen(base_url: str,
                config: LoadgenConfig | None = None) -> LoadgenReport:
    """Drive one full load run against a daemon at ``base_url``.

    Blocking wrapper: runs its own event loop, so call it from a plain
    thread (never from inside the daemon's loop).
    """
    return asyncio.run(_run(base_url, config or LoadgenConfig()))


def assert_slo(report: LoadgenReport, *, min_completed_rate: float = 1.0,
               min_dedup_hit_rate: float = 1.0,
               max_p99_ms: float | None = None) -> None:
    """Raise :class:`ServiceError` when ``report`` misses the SLOs.

    The defaults encode the acceptance bar: every campaign completes,
    every duplicate dedups, nothing lost or corrupted. ``max_p99_ms``
    is opt-in because wall-clock floors are machine-relative; the bench
    trajectory tracks p99 across commits instead.
    """
    problems: list[str] = []
    if report.lost:
        problems.append(f"{report.lost} campaigns lost")
    if report.corrupted:
        problems.append(f"{report.corrupted} campaigns corrupted")
    if report.submit_failures:
        problems.append(f"{report.submit_failures} submissions failed outright")
    if report.completed_rate < min_completed_rate:
        problems.append(f"completed_rate {report.completed_rate:.4f} < "
                        f"{min_completed_rate}")
    if report.dup and report.dedup_hit_rate < min_dedup_hit_rate:
        problems.append(f"dedup_hit_rate {report.dedup_hit_rate:.4f} < "
                        f"{min_dedup_hit_rate}")
    if max_p99_ms is not None and report.submit_p99_ms > max_p99_ms:
        problems.append(f"submit_p99_ms {report.submit_p99_ms:.1f} > "
                        f"{max_p99_ms}")
    if problems:
        raise ServiceError("SLO violation: " + "; ".join(problems))
