"""The campaign daemon: a stdlib-only asyncio HTTP/1.1 front end.

One process, one event loop, one :class:`~repro.service.scheduler.
CampaignService`. The HTTP layer is deliberately tiny -- requests are
parsed by hand off an ``asyncio`` stream, every response closes its
connection, and the only content type is JSON -- because the service's
interesting problems live *behind* the socket (admission, dedup, shared
store, drain), not in protocol plumbing, and the container has no
third-party HTTP stack to lean on.

Routes
------

=========================== =============================================
``POST /campaigns``         submit a spec; 202 accepted / 200 duplicate /
                            429 or 503 + ``Retry-After`` / 413 oversized
``GET /campaigns/{id}``     status + incremental progress counts
``GET /campaigns/{id}/events?offset=N``
                            journal entries past byte ``offset`` plus the
                            ``next_offset`` cursor to poll from
``GET /campaigns/{id}/results``
                            the finished grid's rows (409 while running)
``GET /healthz``            liveness + drain flag
``GET /metrics``            ``name value`` lines, text/plain
``GET /store``              shared-cache stats from the persistent shard
                            index (objects, shards, quarantined)
``POST /executors``         register a remote wave executor; returns its
                            id and the lease/liveness TTLs
``POST /executors/{id}/heartbeat``
                            refresh an executor's liveness window
``POST /executors/{id}/lease``
                            claim a pending campaign wave (epoch-fenced
                            lease; doubles as the idle heartbeat)
``POST /executors/{id}/segments``
                            ship a sealed result segment (manifest +
                            rows); 503 + ``Retry-After`` when an
                            injected fault "loses" the shipment
``GET /executors``          the executor table + wave-protocol counters
=========================== =============================================

Every response carries ``X-Handle-Ms``, the server-side handling time:
the load generator subtracts it from wall latency to report *request
overhead* -- what the service costs beyond the work itself.

``serve()`` installs SIGTERM/SIGINT handlers that drain gracefully:
stop admissions, let running campaigns finish their wave, flush
journals, exit. A restarted daemon resumes interrupted campaigns from
those journals (see :meth:`CampaignService.start`).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from pathlib import Path
from typing import Any

from repro import __version__
from repro.campaign.store import canonical_json
from repro.errors import CampaignError, ReproError, SegmentError, ServiceError
from repro.faults import FaultPlan
from repro.remote.segment import SegmentManifest, verify_rows
from repro.service.quotas import QuotaPolicy, Rejection
from repro.service.scheduler import CampaignService
from repro.trace import get_tracer

__all__ = ["ServiceDaemon", "serve", "start_background", "BackgroundService"]

#: Largest request body the daemon will read (a spec, not a dataset).
MAX_BODY_BYTES = 1 << 20

#: Segment shipments carry whole waves of result rows; give them more
#: headroom than a spec while still bounding a hostile client.
MAX_SEGMENT_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpReply(Exception):
    """Internal control flow: abort the handler with a ready response."""

    def __init__(self, status: int, payload: dict[str, Any],
                 retry_after: float | None = None) -> None:
        """Capture the ``status``, JSON ``payload`` and retry hint."""
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


def _reject_reply(rejection: Rejection) -> _HttpReply:
    """Map an admission :class:`Rejection` onto its HTTP response."""
    return _HttpReply(
        rejection.status,
        {"error": rejection.reason, "retryable": rejection.retryable},
        retry_after=rejection.retry_after,
    )


class ServiceDaemon:
    """The HTTP front end bound to one :class:`CampaignService`."""

    def __init__(
        self,
        root: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: QuotaPolicy | None = None,
        concurrent: int = 2,
        campaign_workers: int = 0,
        faults: FaultPlan | None = None,
        lease_ttl: float = 5.0,
        executor_ttl: float = 10.0,
        wave_timeout: float = 60.0,
    ) -> None:
        """Configure (but do not start) a daemon rooted at ``root``.

        ``port=0`` asks the OS for a free port; the bound address is
        published to ``<root>/service.json`` once listening, which is
        how the CLI and tests discover a just-started daemon.
        ``lease_ttl``/``executor_ttl``/``wave_timeout`` parameterize the
        remote-executor protocol (see :mod:`repro.remote`).
        """
        self.root = Path(root)
        self.host = host
        self.port = port
        self.service = CampaignService(
            self.root, policy=policy, concurrent=concurrent,
            campaign_workers=campaign_workers, faults=faults,
            lease_ttl=lease_ttl, executor_ttl=executor_ttl,
            wave_timeout=wave_timeout,
        )
        self.requests = 0
        self.request_serial = 0
        self._server: asyncio.AbstractServer | None = None
        self._stopping: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- wire plumbing -----------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes]:
        """Parse one request: ``(method, target, headers, body)``."""
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpReply(400, {"error": "malformed request line"}) from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        limit = MAX_SEGMENT_BODY_BYTES if target.startswith("/executors") \
            else MAX_BODY_BYTES
        if length > limit:
            raise _HttpReply(413, {"error": "request body too large"})
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _response(status: int, payload: dict[str, Any], handle_ms: float,
                  retry_after: float | None = None,
                  content_type: str = "application/json") -> bytes:
        """Serialize one complete ``Connection: close`` HTTP response."""
        if content_type == "application/json":
            body = (canonical_json(payload) + "\n").encode("utf-8")
        else:
            body = str(payload.get("text", "")).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"X-Handle-Ms: {handle_ms:.3f}",
            "Connection: close",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after:g}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one connection: parse, dispatch, respond, close."""
        self.requests += 1
        self.request_serial += 1
        serial = self.request_serial
        t0 = time.perf_counter()
        retry_after: float | None = None
        try:
            method, target, headers, body = await self._read_request(reader)
            status, payload, content_type = self._dispatch(
                method, target, headers, body)
        except _HttpReply as reply:
            status, payload = reply.status, reply.payload
            retry_after, content_type = reply.retry_after, "application/json"
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            status = 500
            payload = {"error": f"{type(exc).__name__}: {exc}"}
            content_type = "application/json"
        injector = self.service.injector
        if injector is not None:
            delay = injector.slow_client_delay(f"request#{serial}")
            if delay > 0:
                await asyncio.sleep(delay)
        handle_ms = (time.perf_counter() - t0) * 1000.0
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("service.request", handle_ms / 1000.0,
                          category="service", track="service", status=status)
        try:
            writer.write(self._response(status, payload, handle_ms,
                                        retry_after, content_type))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    # -- routing -----------------------------------------------------------

    def _dispatch(self, method: str, target: str, headers: dict[str, str],
                  body: bytes) -> tuple[int, dict[str, Any], str]:
        """Route one parsed request to its handler."""
        path, _, query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "version": __version__,
                         "draining": self.service.draining}, "application/json"
        if path == "/metrics" and method == "GET":
            return 200, {"text": self._metrics_text()}, "text/plain"
        if path == "/store" and method == "GET":
            return 200, self.service.store_stats(), "application/json"
        if parts and parts[0] == "campaigns":
            if len(parts) == 1 and method == "POST":
                return self._post_campaign(headers, body)
            if len(parts) == 2 and method == "GET":
                return self._get_status(parts[1])
            if len(parts) == 3 and method == "GET" and parts[2] == "events":
                return self._get_events(parts[1], query)
            if len(parts) == 3 and method == "GET" and parts[2] == "results":
                return self._get_results(parts[1])
        if parts and parts[0] == "executors":
            if len(parts) == 1 and method == "POST":
                return self._post_executor(body)
            if len(parts) == 1 and method == "GET":
                return 200, {
                    "executors": self.service.registry.executors(),
                    "counters": self.service.registry.counters(),
                }, "application/json"
            if len(parts) == 3 and method == "POST" and parts[2] == "heartbeat":
                return self._post_heartbeat(parts[1])
            if len(parts) == 3 and method == "POST" and parts[2] == "lease":
                return self._post_lease(parts[1])
            if len(parts) == 3 and method == "POST" and parts[2] == "segments":
                return self._post_segment(parts[1], body)
        if parts and parts[0] in ("campaigns", "healthz", "metrics", "store",
                                  "executors"):
            raise _HttpReply(405, {"error": f"{method} not allowed on {path}"})
        raise _HttpReply(404, {"error": f"no route for {method} {path}"})

    # -- executor protocol (repro.remote) ---------------------------------

    def _post_executor(self, body: bytes) -> tuple[int, dict[str, Any], str]:
        """``POST /executors``: register a remote executor."""
        payload = self._json_body(body)
        host = str(payload.get("host", "unknown"))
        try:
            pid = int(payload.get("pid", 0))
        except (TypeError, ValueError):
            raise _HttpReply(400, {"error": "pid must be an integer"}) from None
        return 200, self.service.registry.register(host, pid), "application/json"

    def _post_heartbeat(self, eid: str) -> tuple[int, dict[str, Any], str]:
        """``POST /executors/{id}/heartbeat``: refresh liveness."""
        if not self.service.registry.heartbeat(eid):
            raise _HttpReply(404, {"error": f"unknown executor {eid!r}"})
        return 200, {"ok": True}, "application/json"

    def _post_lease(self, eid: str) -> tuple[int, dict[str, Any], str]:
        """``POST /executors/{id}/lease``: claim a pending wave."""
        if not self.service.registry.heartbeat(eid):
            raise _HttpReply(404, {"error": f"unknown executor {eid!r}"})
        doc = self.service.registry.claim(eid)
        return 200, (doc if doc is not None else {"wave": None}), "application/json"

    def _post_segment(self, eid: str,
                      body: bytes) -> tuple[int, dict[str, Any], str]:
        """``POST /executors/{id}/segments``: accept a sealed shipment."""
        payload = self._json_body(body)
        rows = payload.get("rows")
        if not isinstance(rows, list) \
                or not all(isinstance(row, dict) for row in rows):
            raise _HttpReply(400, {"error": "rows must be a list of objects"})
        try:
            manifest = SegmentManifest.from_dict(payload.get("manifest") or {})
            verify_rows(manifest, rows)
        except SegmentError as exc:
            raise _HttpReply(400, {"error": str(exc)}) from None
        epoch = manifest.epoch
        status = self.service.registry.deliver(
            eid, manifest.wave, epoch, manifest, rows)
        if status == "lost":
            # The injected wire fault ate the shipment: tell the
            # executor to re-ship, exactly like a real lost ack.
            raise _HttpReply(
                503, {"error": "segment lost in transit", "retryable": True},
                retry_after=0.05)
        return 200, {"status": status}, "application/json"

    @staticmethod
    def _json_body(body: bytes) -> dict[str, Any]:
        """Parse a JSON-object request body (400 on anything else)."""
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpReply(400, {"error": f"body is not JSON: {exc}"}) from None
        if not isinstance(payload, dict):
            raise _HttpReply(400, {"error": "body must be a JSON object"})
        return payload

    def _post_campaign(self, headers: dict[str, str],
                       body: bytes) -> tuple[int, dict[str, Any], str]:
        """``POST /campaigns``: parse the spec and submit it."""
        api_key = headers.get("x-api-key", "anonymous")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpReply(400, {"error": f"body is not JSON: {exc}"}) from None
        if not isinstance(payload, dict):
            raise _HttpReply(400, {"error": "body must be a JSON object"})
        try:
            record, deduped, rejection = self.service.submit(payload, api_key)
        except (CampaignError, ReproError) as exc:
            raise _HttpReply(400, {"error": str(exc)}) from None
        if rejection is not None:
            raise _reject_reply(rejection)
        assert record is not None  # submit() guarantees record xor rejection
        doc = record.to_dict()
        doc["deduped"] = deduped
        return (200 if deduped else 202), doc, "application/json"

    def _get_status(self, cid: str) -> tuple[int, dict[str, Any], str]:
        """``GET /campaigns/{id}``: the incremental status document."""
        try:
            record = self.service.status(cid)
        except ServiceError as exc:
            raise _HttpReply(404, {"error": str(exc)}) from None
        return 200, record.to_dict(), "application/json"

    def _get_events(self, cid: str,
                    query: str) -> tuple[int, dict[str, Any], str]:
        """``GET /campaigns/{id}/events``: journal rows past ``offset``."""
        offset = 0
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == "offset":
                try:
                    offset = max(0, int(value))
                except ValueError:
                    raise _HttpReply(
                        400, {"error": f"bad offset {value!r}"}) from None
        try:
            return 200, self.service.events(cid, offset), "application/json"
        except ServiceError as exc:
            raise _HttpReply(404, {"error": str(exc)}) from None

    def _get_results(self, cid: str) -> tuple[int, dict[str, Any], str]:
        """``GET /campaigns/{id}/results``: the finished grid (else 409)."""
        try:
            return 200, self.service.results(cid), "application/json"
        except ServiceError as exc:
            status = 404 if "unknown campaign" in str(exc) else 409
            raise _HttpReply(status, {"error": str(exc)}) from None

    def _metrics_text(self) -> str:
        """The ``/metrics`` body: one ``service_<name> <value>`` per line."""
        counters: dict[str, int | float] = {"requests": self.requests}
        counters.update(self.service.counters())
        lines = [f"service_{name} {value}" for name, value in counters.items()]
        return "\n".join(lines) + "\n"

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid once :meth:`run` is listening)."""
        return self.host, self.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` for the bound address."""
        return f"http://{self.host}:{self.port}"

    def request_stop(self) -> None:
        """Ask a running daemon to drain and exit (thread/signal safe)."""
        loop, stopping = self._loop, self._stopping
        if loop is None or stopping is None:
            return
        try:
            loop.call_soon_threadsafe(stopping.set)
        except RuntimeError:
            pass  # loop already closed: the daemon is gone anyway

    async def run(self, *, install_signals: bool = True,
                  ready: threading.Event | None = None) -> None:
        """Listen, serve until stopped, then drain and clean up.

        ``install_signals`` wires SIGTERM/SIGINT to :meth:`request_stop`
        (only possible on the main thread); ``ready`` is set once the
        port file is written, for :func:`start_background` callers.
        """
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        resumed = self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        port_file = self.root / "service.json"
        port_file.write_text(canonical_json({
            "host": self.host, "port": self.port, "resumed": resumed,
        }) + "\n", encoding="utf-8")
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_stop)
        if ready is not None:
            ready.set()
        try:
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            await self.service.drain()
            if install_signals:
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)
            try:
                port_file.unlink()
            except FileNotFoundError:
                pass


def serve(root: str | Path, **kwargs: Any) -> None:
    """Run a daemon in the foreground until SIGTERM/SIGINT (CLI entry)."""
    daemon = ServiceDaemon(root, **kwargs)
    asyncio.run(daemon.run())


class BackgroundService:
    """A daemon running on its own thread (tests, examples, benchmarks).

    Use as a context manager::

        with start_background(root) as svc:
            client = ServiceClient(svc.base_url)
            ...

    Exiting the block drains the daemon and joins the thread.
    """

    def __init__(self, daemon: ServiceDaemon) -> None:
        """Wrap ``daemon``; call :meth:`start` (or use the helper)."""
        self.daemon = daemon
        self._thread: threading.Thread | None = None

    @property
    def base_url(self) -> str:
        """The running daemon's ``http://host:port``."""
        return self.daemon.base_url

    def start(self, timeout: float = 10.0) -> "BackgroundService":
        """Boot the daemon thread and wait until it is accepting requests."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                self.daemon.run(install_signals=False, ready=ready)),
            name="repro-service", daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise ServiceError("service daemon failed to start in time")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the daemon and join its thread."""
        self.daemon.request_stop()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise ServiceError("service daemon did not drain in time")
            self._thread = None

    def __enter__(self) -> "BackgroundService":
        """Context-manager entry: the already-started handle."""
        return self

    def __exit__(self, *exc: Any) -> None:
        """Context-manager exit: drain and join."""
        self.stop()


def start_background(root: str | Path, **kwargs: Any) -> BackgroundService:
    """Start a daemon on a background thread; returns the joined handle."""
    return BackgroundService(ServiceDaemon(root, **kwargs)).start()
