"""Stdlib-only HTTP client for the campaign service.

:class:`ServiceClient` is the blocking counterpart of the daemon: plain
``http.client`` requests, JSON in and out, no third-party dependencies.
It is what the ``pstl-service`` CLI, the quickstart example and the
tests use to talk to a daemon; the load generator keeps its own
``asyncio`` socket path because it needs thousands of requests in
flight, which a blocking client cannot express.

Error mapping mirrors the wire protocol: a retryable rejection
(429/503 with ``Retry-After``) raises
:class:`~repro.errors.QuotaExceededError` carrying the server's hint,
any other non-2xx raises :class:`~repro.errors.ServiceError`.
:meth:`ServiceClient.submit` can absorb retryable rejections itself --
honest backoff, bounded attempts -- which is the behaviour quota'd
clients are expected to implement.

Every response's ``X-Handle-Ms`` header is accumulated in
``handle_ms_total`` alongside ``wall_ms_total``, so a caller can split
observed latency into "work the server did" and "everything else"
(queueing, protocol, scheduling) without extra instrumentation.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Mapping
from urllib.parse import urlsplit

from repro.errors import QuotaExceededError, ServiceError

__all__ = ["ServiceClient"]

#: States from which a campaign will not move without new input.
_TERMINAL = ("complete", "broken", "interrupted")


class ServiceClient:
    """Blocking JSON client bound to one daemon base URL."""

    def __init__(self, base_url: str, *, api_key: str = "anonymous",
                 timeout: float = 30.0) -> None:
        """Point at ``base_url`` (e.g. ``http://127.0.0.1:8631``).

        ``api_key`` is sent as ``X-Api-Key`` on every request and is
        the identity quotas are enforced against.
        """
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ServiceError(f"base_url must be http://host:port, "
                               f"got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.api_key = api_key
        self.timeout = timeout
        self.requests = 0
        self.wall_ms_total = 0.0
        self.handle_ms_total = 0.0

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """One round trip; returns the JSON body or raises on error."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"X-Api-Key": self.api_key}
        if body is not None:
            headers["Content-Type"] = "application/json"
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        t0 = time.perf_counter()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            handle_ms = float(response.getheader("X-Handle-Ms", "0") or "0")
            retry_after = response.getheader("Retry-After")
            content_type = response.getheader("Content-Type", "")
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from None
        finally:
            conn.close()
        self.requests += 1
        self.wall_ms_total += (time.perf_counter() - t0) * 1000.0
        self.handle_ms_total += handle_ms
        if content_type.startswith("text/"):
            doc: dict[str, Any] = {"text": raw.decode("utf-8")}
        else:
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                doc = {"error": raw.decode("utf-8", "replace")}
        if 200 <= status < 300:
            doc["_status"] = status
            return doc
        message = doc.get("error", f"HTTP {status}")
        if retry_after is not None:
            raise QuotaExceededError(message, retry_after=float(retry_after))
        raise ServiceError(f"HTTP {status}: {message}")

    # -- API surface -------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``: liveness, version and drain flag."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, float]:
        """``GET /metrics`` parsed into a ``{name: value}`` dict."""
        text = self._request("GET", "/metrics")["text"]
        out: dict[str, float] = {}
        for line in text.splitlines():
            name, _, value = line.partition(" ")
            if name and value:
                out[name] = float(value)
        return out

    def store(self) -> dict[str, Any]:
        """``GET /store``: shared-cache stats off the persistent index."""
        return self._request("GET", "/store")

    def submit(self, spec_payload: Mapping[str, Any], *,
               max_attempts: int = 1) -> dict[str, Any]:
        """``POST /campaigns``; returns the status document.

        ``max_attempts > 1`` retries retryable rejections (429 and
        drain/injected 503s), sleeping the server's ``Retry-After``
        between attempts. The last rejection propagates as
        :class:`QuotaExceededError` when the budget runs out.
        """
        if max_attempts < 1:
            raise ServiceError("max_attempts must be >= 1")
        for attempt in range(max_attempts):
            try:
                return self._request("POST", "/campaigns", dict(spec_payload))
            except QuotaExceededError as exc:
                if attempt + 1 >= max_attempts:
                    raise
                time.sleep(exc.retry_after)
        raise AssertionError("unreachable")  # pragma: no cover

    def submit_scenario(self, name: str,
                        overrides: Mapping[str, Any] | None = None, *,
                        max_attempts: int = 1) -> dict[str, Any]:
        """Submit a registered scenario by name (``POST /campaigns``).

        Sends ``{"scenario": name, **overrides}``; the daemon resolves
        it through the scenario registry, so it dedups against the
        equivalent inline campaign spec. ``overrides`` narrows axis
        fields, e.g. ``{"size_exps": [12]}``.
        """
        payload: dict[str, Any] = {"scenario": name}
        if overrides:
            payload.update(overrides)
        return self.submit(payload, max_attempts=max_attempts)

    def status(self, campaign_id: str) -> dict[str, Any]:
        """``GET /campaigns/{id}``: state plus progress counts."""
        return self._request("GET", f"/campaigns/{campaign_id}")

    def events(self, campaign_id: str, offset: int = 0) -> dict[str, Any]:
        """``GET /campaigns/{id}/events?offset=N``: rows past ``offset``.

        Pass the returned ``next_offset`` back in to stream
        incrementally; each call costs only the bytes appended since.
        """
        return self._request(
            "GET", f"/campaigns/{campaign_id}/events?offset={int(offset)}")

    def results(self, campaign_id: str) -> dict[str, Any]:
        """``GET /campaigns/{id}/results``: the finished grid's rows."""
        return self._request("GET", f"/campaigns/{campaign_id}/results")

    # -- executor protocol (repro.remote) ---------------------------------

    def register_executor(self, host: str, pid: int) -> dict[str, Any]:
        """``POST /executors``: join the registry; returns id + TTLs."""
        return self._request("POST", "/executors",
                             {"host": host, "pid": int(pid)})

    def executor_heartbeat(self, executor_id: str) -> dict[str, Any]:
        """``POST /executors/{id}/heartbeat``: refresh liveness."""
        return self._request("POST", f"/executors/{executor_id}/heartbeat")

    def claim_wave(self, executor_id: str) -> dict[str, Any] | None:
        """``POST /executors/{id}/lease``: claim a wave, or None if idle.

        The lease document carries ``wave``/``epoch``/``payloads``; the
        executor must ship a sealed segment presenting the same epoch.
        """
        doc = self._request("POST", f"/executors/{executor_id}/lease")
        return doc if doc.get("wave") else None

    def ship_segment(self, executor_id: str, manifest: Mapping[str, Any],
                     rows: list[dict]) -> dict[str, Any]:
        """``POST /executors/{id}/segments``: deliver a sealed segment.

        Returns the acceptance doc (``{"status": "accepted" | "duplicate"
        | "stale" | "unknown"}``); an injected lost shipment surfaces as
        a retryable 503, which :class:`QuotaExceededError` carries.
        """
        return self._request("POST", f"/executors/{executor_id}/segments",
                             {"manifest": dict(manifest), "rows": rows})

    def executors(self) -> dict[str, Any]:
        """``GET /executors``: the registry's executor table + counters."""
        return self._request("GET", "/executors")

    def wait(self, campaign_id: str, *, timeout: float = 120.0,
             poll: float = 0.05) -> dict[str, Any]:
        """Poll status until the campaign reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(campaign_id)
            if doc.get("state") in _TERMINAL:
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {campaign_id} still {doc.get('state')!r} "
                    f"after {timeout:g}s")
            time.sleep(poll)

    def overhead_ms(self) -> float:
        """Mean per-request overhead: wall latency minus server handle time."""
        if self.requests == 0:
            return 0.0
        return (self.wall_ms_total - self.handle_ms_total) / self.requests
