"""Parent-side fault injector: claims, applies and accounts for faults.

The :class:`FaultInjector` is the stateful runtime half of a
:class:`~repro.faults.plan.FaultPlan`. It lives in the campaign driver
process (never in workers) and is consulted at the pipeline's three
injection surfaces:

* **submission** -- :meth:`claim_worker_fault` decides whether a task's
  worker should crash, hang or die, returning the directive the
  executor hands to :mod:`repro.faults.workers`;
* **cache publish** -- :meth:`after_put` may corrupt the object that
  was just written, exercising checksum quarantine on the next read;
* **journal append** -- :meth:`after_journal` may tear the tail line,
  simulating a crash between write and durable fsync.

The ``repro.service`` daemon adds two request-side surfaces:
:meth:`claim_service_reject` (spurious 503 admission rejection the
client must retry through) and :meth:`slow_client_delay` (a stalled
response write modelling a slow client link).

Every fault fires **at most once** per (site, identity): decisions are
deterministic hashes, so without the fired-set a killed task would be
re-killed on every resubmission and never converge. Each injection is
counted per site and recorded as a ``fault.injected`` trace span, so a
traced chaos run shows exactly where the schedule hit.
"""

from __future__ import annotations

from repro.faults.plan import WORKER_SITES, FaultPlan, decision
from repro.trace import get_tracer

__all__ = ["FaultInjector"]


class FaultInjector:
    """Runtime state for one campaign run under a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        """Bind to ``plan``; all counters start at zero."""
        self.plan = plan
        self.fired: set[tuple[str, str]] = set()
        self.counts: dict[str, int] = {}

    @property
    def total_injected(self) -> int:
        """Total faults injected so far, across all sites."""
        return sum(self.counts.values())

    def _budget_left(self) -> bool:
        """Whether the plan's ``max_faults`` cap still allows an injection."""
        cap = self.plan.max_faults
        return cap is None or self.total_injected < cap

    def _claim(self, site: str, ident: str) -> bool:
        """Fire-at-most-once claim of ``site`` for ``ident``; counts + traces."""
        if (site, ident) in self.fired:
            return False
        if not self._budget_left() or not self.plan.fires(site, ident):
            return False
        self.fired.add((site, ident))
        self.counts[site] = self.counts.get(site, 0) + 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("fault.injected", 0.0, category="faults",
                          track="campaign", site=site, ident=ident)
        return True

    def claim_worker_fault(self, task_id: str, pool: bool = True) -> str | None:
        """The worker-site directive for ``task_id``, or None.

        Sites are mutually exclusive per task and evaluated in
        :data:`~repro.faults.plan.WORKER_SITES` priority order
        (kill > hang > exception). ``pool=False`` (inline execution in
        the driver process) considers only ``worker_exception`` --
        killing or stalling the driver itself would take the campaign
        down with it, which is the crash-recovery *integration* test's
        job, not the in-process injector's.
        """
        sites = WORKER_SITES if pool else ("worker_exception",)
        for site in sites:
            if self._claim(site, task_id):
                return site
        return None

    def was_killed(self, task_id: str) -> bool:
        """Whether ``task_id`` has been claimed for a ``worker_kill``."""
        return ("worker_kill", task_id) in self.fired

    def claim_service_reject(self, ident: str) -> bool:
        """Whether to spuriously reject the submission ``ident`` (503).

        Fires at most once per identity, so a client that retries the
        same submission is admitted on its second attempt -- the
        transient-then-converge shape every other site follows.
        """
        return self._claim("service_reject", ident)

    def slow_client_delay(self, ident: str) -> float:
        """Seconds to stall before answering request ``ident`` (0 = none)."""
        if self._claim("slow_client", ident):
            return self.plan.slow_client_seconds
        return 0.0

    def claim_segment_lost(self, ident: str) -> bool:
        """Whether to drop the shipped segment ``ident`` (no ack).

        Coordinator-side wire fault: the executor's bounded re-ship
        loop must deliver the segment again. At most once per identity,
        so the re-ship always lands.
        """
        return self._claim("segment_lost", ident)

    def claim_segment_dup_ship(self, ident: str) -> bool:
        """Whether the executor should ship segment ``ident`` twice."""
        return self._claim("segment_dup_ship", ident)

    def claim_lease_expire(self, ident: str) -> bool:
        """Whether to force-lapse the wave lease ``ident`` (epoch fence).

        Coordinator-side: the wave is reassigned while its holder still
        computes, so the holder's eventual ship presents a stale epoch.
        """
        return self._claim("lease_expire", ident)

    def claim_executor_dead(self, ident: str) -> bool:
        """Whether the executor process should SIGKILL itself at ``ident``."""
        return self._claim("executor_dead", ident)

    def after_put(self, store, key: str) -> None:
        """Maybe corrupt the cache object just published under ``key``."""
        if self._claim("cache_corrupt", key):
            store.corrupt(key, decision(self.plan.seed, "cache_corrupt.at", key))

    def after_journal(self, journal, task_id: str) -> None:
        """Maybe tear the journal line just appended for ``task_id``."""
        if self._claim("journal_torn_tail", task_id):
            journal.tear_tail(
                decision(self.plan.seed, "journal_torn_tail.at", task_id)
            )

    def summary(self) -> str:
        """One-line ``site=count`` report of everything injected."""
        if not self.counts:
            return "no faults injected"
        parts = [f"{site}={self.counts[site]}" for site in sorted(self.counts)]
        return "injected " + ", ".join(parts)
