"""Deterministic fault injection for the campaign pipeline.

The scalability grids this repo reproduces are only as trustworthy as
the orchestration machinery that produces them -- the process pool,
content-addressed cache and resume journal of :mod:`repro.campaign`.
This package makes that machinery's failure paths *testable*: a
:class:`FaultPlan` names seeded injection rates for five failure sites
(worker exception / hang / kill, cache-object corruption, journal torn
tail), and a :class:`FaultInjector` applies them deterministically --
the same seed against the same campaign always injects the same faults.

Activate via ``run_campaign(faults=FaultPlan(...))`` or
``pstl-campaign run --faults plan.json --fault-seed N``. The headline
invariant, enforced by the chaos suite (``pytest -m chaos``): for any
schedule whose per-task fault count stays within the retry budget,
*run -> (faults) -> resume -> query* is bit-identical to a fault-free
run, and ``pstl-campaign verify`` finds zero integrity errors
afterwards. See docs/ROBUSTNESS.md.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_SITES,
    WORKER_SITES,
    FaultPlan,
    decision,
    load_fault_plan,
)
from repro.faults.workers import (
    apply_directive,
    faulty_curve,
    faulty_point,
    faulty_wave,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FAULT_SITES",
    "WORKER_SITES",
    "decision",
    "load_fault_plan",
    "faulty_point",
    "faulty_curve",
    "faulty_wave",
    "apply_directive",
]
