"""Seed-driven fault schedules for the campaign pipeline.

A :class:`FaultPlan` is a *declarative* description of how hostile the
world should be during one campaign run: a per-site injection rate plus
a seed. Whether a given fault fires is a pure function of
``(seed, site, identity)`` -- the identity being a task id for worker
faults, a cache key for store corruption, and a task id for journal
tears -- so the same plan against the same campaign always injects the
same faults, in serial and pool mode alike, regardless of scheduling
order. That determinism is what makes chaos tests reproducible: a
failing seed is a repro recipe, not a flake.

Sites (see docs/ROBUSTNESS.md for the full fault model):

``worker_exception``
    The worker raises :class:`~repro.errors.InjectedFaultError` before
    touching the point (a crashed evaluation; in batch mode it poisons
    the whole curve future).
``worker_hang``
    The worker stalls ``hang_seconds`` before proceeding (drives the
    executor's per-task timeout path; pool mode only).
``worker_kill``
    The worker SIGKILLs itself, breaking the process pool
    (``BrokenProcessPool``); the executor must rebuild the pool and
    re-queue in-flight tasks (pool mode only).
``cache_corrupt``
    One byte of the just-written cache object is flipped (disk) or the
    record is tampered in place (memory), exercising checksum
    quarantine.
``journal_torn_tail``
    The just-appended journal line is truncated mid-write, simulating a
    crash between ``write`` and a durable ``fsync``.
``service_reject``
    The ``repro.service`` admission layer spuriously rejects one
    otherwise-admissible submission with 503 + Retry-After (a transient
    the client must absorb by retrying; fires at most once per
    submission identity, so the retry is admitted).
``slow_client``
    The service stalls ``slow_client_seconds`` before writing one
    response, modelling a slow/lossy client link (drives client
    timeout/latency handling; the loadgen's p99 must absorb it).
``segment_lost``
    The coordinator drops one shipped segment as if the wire ate it
    (no ack); the remote executor's bounded re-ship loop must recover
    (fires at most once per (wave, segment) identity, so the re-ship
    lands).
``segment_dup_ship``
    The remote executor ships one sealed segment twice; the
    coordinator's ledger + index dedup must ingest it exactly once.
``lease_expire``
    A claimed wave lease is treated as lapsed while its holder still
    computes; the coordinator reassigns the wave (epoch bump) and the
    original holder's late ship arrives fenced as stale.
``executor_dead``
    The remote executor SIGKILLs itself after claiming a wave --
    abrupt host death. The lease expires by deadline and the wave is
    reassigned to a surviving executor (or runs locally).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping

from repro.errors import FaultPlanError

__all__ = ["FaultPlan", "FAULT_SITES", "WORKER_SITES", "decision", "load_fault_plan"]

#: Every injection site a plan may rate, in decision-priority order.
FAULT_SITES = (
    "worker_exception",
    "worker_hang",
    "worker_kill",
    "cache_corrupt",
    "journal_torn_tail",
    "service_reject",
    "slow_client",
    "segment_lost",
    "segment_dup_ship",
    "lease_expire",
    "executor_dead",
)

#: Sites that fire inside (or against) a worker; mutually exclusive per task.
WORKER_SITES = ("worker_kill", "worker_hang", "worker_exception")


def decision(seed: int, site: str, ident: str) -> float:
    """Deterministic uniform draw in [0, 1) for one injection opportunity.

    The draw is a pure hash of ``(seed, site, ident)``: no RNG state, no
    ordering sensitivity, stable across processes and platforms.
    """
    digest = hashlib.sha256(f"{seed}|{site}|{ident}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule: per-site rates plus a seed.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    opportunity via :func:`decision`; ``max_faults`` caps the total
    number of injections (the cap is consumed in claim order, so it is
    the one order-sensitive knob -- leave it ``None`` for fully
    order-independent schedules). ``hang_seconds`` bounds how long a
    hung worker stalls so an abandoned worker eventually frees its pool
    slot.
    """

    seed: int = 0
    worker_exception: float = 0.0
    worker_hang: float = 0.0
    worker_kill: float = 0.0
    cache_corrupt: float = 0.0
    journal_torn_tail: float = 0.0
    service_reject: float = 0.0
    slow_client: float = 0.0
    segment_lost: float = 0.0
    segment_dup_ship: float = 0.0
    lease_expire: float = 0.0
    executor_dead: float = 0.0
    hang_seconds: float = 30.0
    slow_client_seconds: float = 0.05
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for site in FAULT_SITES:
            rate = getattr(self, site)
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{site} rate must be in [0, 1], got {rate!r}")
        if self.hang_seconds < 0:
            raise FaultPlanError("hang_seconds must be non-negative")
        if self.slow_client_seconds < 0:
            raise FaultPlanError("slow_client_seconds must be non-negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise FaultPlanError("max_faults must be non-negative or None")

    def rate(self, site: str) -> float:
        """The injection rate configured for ``site``."""
        if site not in FAULT_SITES:
            raise FaultPlanError(f"unknown fault site {site!r}; known: {FAULT_SITES}")
        return float(getattr(self, site))

    def fires(self, site: str, ident: str) -> bool:
        """Whether this plan injects ``site`` for opportunity ``ident``."""
        return decision(self.seed, site, ident) < self.rate(site)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same schedule under a different seed (CLI ``--fault-seed``)."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known
        if extra:
            raise FaultPlanError(f"unknown FaultPlan fields: {sorted(extra)}")
        return cls(**dict(payload))


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Parse a ``--faults plan.json`` file into a :class:`FaultPlan`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FaultPlanError(f"no fault plan at {path}") from None
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"invalid fault plan {path}: {exc}") from None
    if not isinstance(payload, Mapping):
        raise FaultPlanError(f"fault plan {path} must be a JSON object")
    return FaultPlan.from_dict(payload)
