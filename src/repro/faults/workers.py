"""Picklable pool-worker wrappers that apply claimed fault directives.

The injector decides *in the parent* which task gets which fault; these
module-level functions carry the directive across the process boundary
(they must stay importable and picklable, like the executor's own
worker entries) and apply it before delegating to the real evaluation:

* ``worker_exception`` raises :class:`~repro.errors.InjectedFaultError`
  so the future completes exceptionally, exactly like an unexpected
  worker crash would;
* ``worker_hang`` sleeps ``hang_seconds`` and then proceeds -- a stall,
  not a death -- so the parent's timeout machinery is what surfaces it;
* ``worker_kill`` SIGKILLs the worker process itself, which breaks the
  whole :class:`~concurrent.futures.ProcessPoolExecutor` and exercises
  the executor's pool-rebuild path.

The campaign executors are imported lazily inside each wrapper to keep
``repro.faults`` import-light and cycle-free.
"""

from __future__ import annotations

import os
import signal
import time

from repro.errors import InjectedFaultError

__all__ = ["faulty_point", "faulty_curve", "faulty_wave", "apply_directive"]


def apply_directive(directive: str, hang_seconds: float) -> None:
    """Apply one worker-site fault directive in the current process."""
    if directive == "worker_hang":
        time.sleep(hang_seconds)
        return
    if directive == "worker_kill":
        os.kill(os.getpid(), signal.SIGKILL)  # never returns
        return  # pragma: no cover - unreachable
    if directive == "worker_exception":
        raise InjectedFaultError("injected worker exception")
    raise InjectedFaultError(f"unknown fault directive {directive!r}")


def faulty_point(payload: dict, directive: str, hang_seconds: float) -> dict:
    """:func:`~repro.campaign.executor.execute_point` under one directive."""
    apply_directive(directive, hang_seconds)
    from repro.campaign.executor import execute_point

    return execute_point(payload)


def faulty_curve(payloads: list[dict], directives: list[str | None],
                 hang_seconds: float) -> list[dict]:
    """:func:`~repro.campaign.executor.execute_curve` under per-point directives.

    Directives are applied in submission order before any evaluation, so
    a single faulted point poisons the whole curve future -- the shape
    real worker crashes have, and what forces the executor's per-point
    scalar retry path.
    """
    for directive in directives:
        if directive is not None:
            apply_directive(directive, hang_seconds)
    from repro.campaign.executor import execute_curve

    return execute_curve(payloads)


def faulty_wave(payloads: list[dict], directives: list[str | None],
                hang_seconds: float) -> list[dict]:
    """:func:`~repro.campaign.executor.execute_wave` under per-point directives.

    Same poisoning semantics as :func:`faulty_curve`, scaled to a fused
    wave shard: one faulted point takes the whole shard future with it,
    and every affected point then retries through the scalar path.
    """
    for directive in directives:
        if directive is not None:
            apply_directive(directive, hang_seconds)
    from repro.campaign.executor import execute_wave

    return execute_wave(payloads)
