"""Campaign orchestration: plan, execute, cache, and query benchmark sweeps.

pSTL-Bench's evaluation is a large grid -- machines x backends x cases x
sizes x threads -- and the C++ suite ships a campaign runner that
executes the whole matrix per (compiler, backend) pair and persists the
results. This package is that runner for the reproduction, built as four
layers:

* :mod:`repro.campaign.spec` -- declarative sweep specifications;
* :mod:`repro.campaign.plan` -- expansion into a deterministic task DAG
  with capability pruning and shared-baseline deduplication;
* :mod:`repro.campaign.store` + :mod:`repro.campaign.shard` +
  :mod:`repro.campaign.fingerprint` -- content-addressed result cache
  keyed by (point, model fingerprint), fanned out over 256 key-prefix
  shards with a persistent per-shard index (O(result) lookups, counts
  and queries; background compaction via ``pstl-campaign compact``),
  plus the append-only journal that makes runs resumable;
* :mod:`repro.campaign.executor` / :mod:`repro.campaign.query` --
  process-pool execution with timeout/retry/graceful failure, and
  derivations back into the experiment grid shapes.

The ``pstl-campaign`` CLI (:mod:`repro.campaign.cli`) fronts all of it:
``run``, ``status``, ``resume``, ``query`` and ``verify`` subcommands.
See docs/CAMPAIGNS.md for the full story, including a worked Table 5
example, and docs/ROBUSTNESS.md for the failure model the pipeline is
hardened against (deterministic fault injection via
:mod:`repro.faults`, checksum quarantine, retry backoff, pool rebuild).
"""

from repro.campaign.executor import (
    BackoffPolicy,
    CampaignOutcome,
    CampaignStats,
    execute_point,
    load_campaign,
    point_context,
    run_campaign,
)
from repro.campaign.fingerprint import model_fingerprint
from repro.campaign.plan import CampaignPlan, PointTask, plan_campaign, task_id_for
from repro.campaign.query import (
    bench_rows,
    efficiency_grid,
    filter_results,
    grid_key,
    speedup_grid,
    store_query,
)
from repro.campaign.shard import (
    SHARD_COUNT,
    CompactionReport,
    ShardIndex,
    StoreIndex,
    shard_prefix,
)
from repro.campaign.spec import CampaignSpec, PointSpec
from repro.campaign.store import (
    Journal,
    JournalReader,
    PointResult,
    ResultStore,
    StoreScan,
    cache_key,
    record_checksum,
)

__all__ = [
    "BackoffPolicy",
    "CampaignSpec",
    "PointSpec",
    "CampaignPlan",
    "PointTask",
    "plan_campaign",
    "task_id_for",
    "CampaignOutcome",
    "CampaignStats",
    "run_campaign",
    "load_campaign",
    "execute_point",
    "point_context",
    "ResultStore",
    "StoreScan",
    "Journal",
    "JournalReader",
    "PointResult",
    "cache_key",
    "record_checksum",
    "model_fingerprint",
    "speedup_grid",
    "efficiency_grid",
    "filter_results",
    "bench_rows",
    "grid_key",
    "store_query",
    "SHARD_COUNT",
    "CompactionReport",
    "ShardIndex",
    "StoreIndex",
    "shard_prefix",
]
