"""Result persistence: content-addressed cache + append-only journal.

**Cache.** Every finished point is stored under a key derived from the
point's canonical JSON *and* the model-version fingerprint
(`repro.campaign.fingerprint`). Identical (point, model) pairs therefore
always collide onto the same object -- a re-run is a pure cache hit --
while any model change shifts every key and transparently invalidates
the whole cache. Objects live as small JSON files fanned out over a
two-hex-digit directory level (``objects/ab/abcdef....json``), or in a
plain dict when the store is constructed without a root (tests,
throwaway runs).

**Journal.** Each campaign run appends one JSON line per finished task
to ``journal.jsonl``. The journal is the resume log: an interrupted
campaign re-plans (deterministically), drops every task whose terminal
entry is already journaled, and executes only the remainder. Torn final
lines from a killed process are tolerated and skipped.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.campaign.fingerprint import model_fingerprint
from repro.campaign.spec import PointSpec, canonical_json
from repro.errors import CampaignError

__all__ = [
    "PointResult",
    "ResultStore",
    "Journal",
    "cache_key",
    "write_spec",
    "read_spec",
]

#: Terminal point statuses.
DONE = "done"
NA = "na"
FAILED = "failed"
_STATUSES = (DONE, NA, FAILED)


def cache_key(point: PointSpec, fingerprint: str) -> str:
    """Content hash of (point identity, model fingerprint)."""
    payload = canonical_json({"point": point.to_dict(), "model": fingerprint})
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class PointResult:
    """Terminal outcome of one point-task.

    ``seconds`` is the mean simulated seconds of one invocation (the
    figures' y-axis) for ``done`` points, ``None`` otherwise. ``cached``,
    ``attempts`` and ``wall_ms`` (real wall-clock spent executing the
    point, ``None`` when served from cache) describe *this run* and are
    excluded from the cached payload, so cache-served results compare
    bit-identical to computed ones.
    """

    task_id: str
    point: PointSpec
    status: str
    seconds: float | None = None
    error: str | None = None
    cached: bool = False
    attempts: int = 1
    wall_ms: float | None = None

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise CampaignError(f"invalid point status {self.status!r}")
        if self.status == DONE and self.seconds is None:
            raise CampaignError("done points must carry seconds")

    @property
    def ok(self) -> bool:
        """Whether the point produced a value (N/A counts as resolved)."""
        return self.status in (DONE, NA)

    def payload(self) -> dict[str, Any]:
        """The cacheable slice: status/seconds/error only."""
        return {"status": self.status, "seconds": self.seconds, "error": self.error}


class ResultStore:
    """Content-addressed point-result cache (on disk or in memory)."""

    def __init__(self, root: str | os.PathLike | None = None,
                 fingerprint: str | None = None) -> None:
        """``root=None`` keeps objects in a dict; else under ``root/objects``."""
        self.root = Path(root) if root is not None else None
        self.fingerprint = fingerprint if fingerprint is not None else model_fingerprint()
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)

    def key_for(self, point: PointSpec) -> str:
        """This store's cache key for ``point``."""
        return cache_key(point, self.fingerprint)

    def _object_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / "objects" / key[:2] / f"{key}.json"

    def load_key(self, key: str) -> dict | None:
        """Fetch a raw cached payload by key (None if absent/corrupt)."""
        if self.root is None:
            return self._memory.get(key)
        path = self._object_path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            return None  # torn write: treat as a miss and recompute

    def get(self, point: PointSpec) -> dict | None:
        """Cached payload for ``point`` under the current model, or None."""
        payload = self.load_key(self.key_for(point))
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def put(self, point: PointSpec, payload: Mapping[str, Any]) -> str:
        """Store ``payload`` for ``point``; returns the cache key."""
        key = self.key_for(point)
        record = {
            "key": key,
            "fingerprint": self.fingerprint,
            "point": point.to_dict(),
            "result": dict(payload),
        }
        if self.root is None:
            self._memory[key] = record
        else:
            path = self._object_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)  # atomic publish: readers never see a torn object
        self.writes += 1
        return key

    def result_for(self, task_id: str, point: PointSpec) -> PointResult | None:
        """Reconstruct a :class:`PointResult` from cache (marked cached)."""
        record = self.get(point)
        if record is None:
            return None
        result = record["result"]
        return PointResult(
            task_id=task_id, point=point, status=result["status"],
            seconds=result["seconds"], error=result.get("error"),
            cached=True, attempts=0,
        )


class Journal:
    """Append-only run log; one JSON object per line."""

    def __init__(self, path: str | os.PathLike) -> None:
        """Bind to ``path`` (created lazily on first append)."""
        self.path = Path(path)

    def append(self, entry: Mapping[str, Any]) -> None:
        """Append one entry and flush it to disk immediately."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(canonical_json(dict(entry)) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def entries(self) -> list[dict]:
        """All intact entries, in append order (torn tail lines skipped)."""
        if not self.path.exists():
            return []
        out: list[dict] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # interrupted mid-write; the task will re-run
        return out

    def completed_ids(self) -> dict[str, dict]:
        """task_id -> latest terminal entry (failed tasks are *not* terminal).

        Failed entries are excluded on purpose: resuming a campaign
        retries its failures, matching the executor's bounded-retry
        policy rather than freezing a transient fault forever.
        """
        done: dict[str, dict] = {}
        for entry in self.entries():
            tid = entry.get("task_id")
            status = entry.get("status")
            if not tid or status not in _STATUSES:
                continue
            if status == FAILED:
                done.pop(tid, None)
            else:
                done[tid] = entry
        return done


def write_spec(path: Path, spec_payload: Mapping[str, Any]) -> None:
    """Persist a campaign's spec.json (pretty, stable key order)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dict(spec_payload), sort_keys=True, indent=2) + "\n",
                    encoding="utf-8")


def read_spec(path: Path) -> dict:
    """Load a campaign's spec.json."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CampaignError(f"no campaign spec at {path}") from None
    except json.JSONDecodeError as exc:
        raise CampaignError(f"corrupt campaign spec at {path}: {exc}") from None
