"""Result persistence: content-addressed cache + append-only journal.

**Cache.** Every finished point is stored under a key derived from the
point's canonical JSON *and* the model-version fingerprint
(`repro.campaign.fingerprint`). Identical (point, model) pairs therefore
always collide onto the same object -- a re-run is a pure cache hit --
while any model change shifts every key and transparently invalidates
the whole cache. Objects live as small JSON files fanned out over a
two-hex-digit directory level (``objects/ab/abcdef....json``), or in a
plain dict when the store is constructed without a root (tests,
throwaway runs).

**Integrity.** Each record carries a checksum over its canonical form.
A record that parses but fails its checksum -- bit rot, a torn write
that still decodes, deliberate fault injection -- is *quarantined*
(moved to ``quarantine/``, counted, never served) and the point
recomputes; it is neither silently served nor silently dropped. Records
whose ``result`` payload has drifted schema (missing ``status`` /
``seconds`` from an older version) are treated as misses, not errors.
:meth:`ResultStore.scan` audits the whole object tree; the
``pstl-campaign verify`` subcommand fronts it.

**Journal.** Each campaign run appends one JSON line per finished task
to ``journal.jsonl``. The journal is the resume log: an interrupted
campaign re-plans (deterministically), drops every task whose terminal
entry is already journaled, and executes only the remainder. Torn final
lines from a killed process are tolerated and skipped.

**Index.** v2 stores (marker: ``STORE_META.json``) additionally keep a
persistent per-shard index (``index/ab.log.jsonl`` + ``index/ab.idx.json``,
see :mod:`repro.campaign.shard`): every ``put`` appends a row mapping
``key -> object path, checksum, status, seconds, wall_ms, point`` and
every quarantine appends a tombstone, so counts, lookups and queries
are O(result) instead of O(walk the tree). A store root that already
holds objects but no marker is a v1 flat store: it keeps working,
unindexed, until ``tools/migrate_store.py`` upgrades it in place.

**Concurrency.** Several processes may share one store and one journal
(the ``repro.service`` daemon multiplexes client campaigns over a
shared cache; the 8-appender property test pins the contract). Cache
objects publish atomically -- a per-process temp file renamed into
place -- so readers only ever see whole records, and journal appends
take a cross-process advisory lock around a single ``O_APPEND``
``write()`` so concurrent appenders can never interleave partial
lines. :class:`JournalReader` adds the offset-resumable read side:
repeated polls cost O(new bytes), not O(journal).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (single-writer)
    fcntl = None

from repro.campaign.fingerprint import model_fingerprint
from repro.campaign.shard import (
    CompactionReport,
    StoreIndex,
    read_store_meta,
    write_store_meta,
)
from repro.campaign.spec import PointSpec, canonical_json
from repro.errors import CampaignError

__all__ = [
    "PointResult",
    "ResultStore",
    "StoreScan",
    "Journal",
    "JournalReader",
    "cache_key",
    "record_checksum",
    "write_spec",
    "read_spec",
]

#: Terminal point statuses.
DONE = "done"
NA = "na"
FAILED = "failed"
_STATUSES = (DONE, NA, FAILED)


def cache_key(point: PointSpec, fingerprint: str) -> str:
    """Content hash of (point identity, model fingerprint)."""
    payload = canonical_json({"point": point.to_dict(), "model": fingerprint})
    return hashlib.sha256(payload.encode()).hexdigest()


def record_checksum(record: Mapping[str, Any]) -> str:
    """Integrity checksum of a stored record (its ``checksum`` field excluded).

    Computed over the *canonical* JSON of the record core, so semantically
    identical re-encodings (key order, float spelling) verify equal while
    any value change -- one corrupted byte that still parses -- does not.
    """
    core = {k: v for k, v in record.items() if k != "checksum"}
    return hashlib.sha256(canonical_json(core).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PointResult:
    """Terminal outcome of one point-task.

    ``seconds`` is the mean simulated seconds of one invocation (the
    figures' y-axis) for ``done`` points, ``None`` otherwise. ``cached``,
    ``attempts`` and ``wall_ms`` (real wall-clock spent executing the
    point, ``None`` when served from cache) describe *this run* and are
    excluded from the cached payload, so cache-served results compare
    bit-identical to computed ones.
    """

    task_id: str
    point: PointSpec
    status: str
    seconds: float | None = None
    error: str | None = None
    cached: bool = False
    attempts: int = 1
    wall_ms: float | None = None

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise CampaignError(f"invalid point status {self.status!r}")
        if self.status == DONE and self.seconds is None:
            raise CampaignError("done points must carry seconds")

    @property
    def ok(self) -> bool:
        """Whether the point produced a value (N/A counts as resolved)."""
        return self.status in (DONE, NA)

    def payload(self) -> dict[str, Any]:
        """The cacheable slice: status/seconds/error only."""
        return {"status": self.status, "seconds": self.seconds, "error": self.error}


@dataclass
class StoreScan:
    """Integrity report over a store's object tree (see :meth:`ResultStore.scan`).

    ``corrupt`` lists ``(key, reason)`` pairs for objects that fail to
    parse, fail their checksum, or disagree with their filename;
    ``drifted`` counts records that verify but whose ``result`` payload
    is schema-drifted (served as misses, never as hits); ``legacy``
    counts pre-checksum records (accepted, but unauditable).

    On indexed (v2) stores the scan also cross-checks the persistent
    index against the tree: ``unindexed`` counts intact objects with no
    index row (e.g. files dropped in by hand, or a tail row lost to a
    crash), ``index_stale`` counts rows whose checksum disagrees with
    the object -- or that point at a missing object. Both are advisory
    flags, *not* errors: the object tree is ground truth and a
    compaction/migration pass rebuilds the index.
    """

    objects: int = 0
    ok: int = 0
    legacy: int = 0
    drifted: int = 0
    quarantined: int = 0
    unindexed: int = 0
    index_stale: int = 0
    corrupt: list[tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> int:
        """Number of integrity errors (corrupt objects) found."""
        return len(self.corrupt)

    def summary(self) -> str:
        """One-line human report."""
        base = (
            f"{self.objects} object(s): {self.ok} ok, {self.legacy} legacy, "
            f"{self.drifted} schema-drifted, {self.errors} corrupt, "
            f"{self.quarantined} quarantined"
        )
        if self.unindexed or self.index_stale:
            base += (f", {self.unindexed} unindexed, "
                     f"{self.index_stale} index-stale")
        return base


def _result_slice(record: Mapping[str, Any]) -> dict | None:
    """The usable ``result`` payload of a record, or None on schema drift.

    Older (or newer) store versions may journal records whose ``result``
    lacks ``status``/``seconds``; those must read as cache *misses*, not
    ``KeyError`` crashes -- the point simply recomputes under the
    current schema.
    """
    result = record.get("result")
    if not isinstance(result, Mapping):
        return None
    status = result.get("status")
    if status not in _STATUSES:
        return None
    if status == DONE and not isinstance(result.get("seconds"), (int, float)):
        return None
    return dict(result)


class ResultStore:
    """Content-addressed point-result cache (on disk or in memory)."""

    def __init__(self, root: str | os.PathLike | None = None,
                 fingerprint: str | None = None) -> None:
        """``root=None`` keeps objects in a dict; else under ``root/objects``.

        Disk stores detect their layout: a root carrying the
        ``STORE_META.json`` marker (or a fresh/empty root, which gets
        one) is v2 and owns a :class:`~repro.campaign.shard.StoreIndex`;
        a root that already holds objects but no marker is a v1 flat
        store, served unindexed until ``tools/migrate_store.py``
        upgrades it in place.
        """
        self.root = Path(root) if root is not None else None
        self.fingerprint = fingerprint if fingerprint is not None else model_fingerprint()
        self._memory: dict[str, dict] = {}
        self._memory_quarantine: dict[str, dict] = {}
        self._key_memo: dict[PointSpec, str] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.index: StoreIndex | None = None
        if self.root is not None:
            objects = self.root / "objects"
            if read_store_meta(self.root) is not None:
                objects.mkdir(parents=True, exist_ok=True)
                self.index = StoreIndex(self.root)
            elif objects.is_dir() and any(objects.iterdir()):
                pass  # v1 flat store: keep serving it, unindexed
            else:
                objects.mkdir(parents=True, exist_ok=True)
                write_store_meta(self.root)
                self.index = StoreIndex(self.root)

    @property
    def indexed(self) -> bool:
        """Whether this store carries a persistent shard index (v2)."""
        return self.index is not None

    def key_for(self, point: PointSpec) -> str:
        """This store's cache key for ``point`` (memoized; the executor
        derives the same key several times per task on the warm path)."""
        key = self._key_memo.get(point)
        if key is None:
            key = self._key_memo[point] = cache_key(point, self.fingerprint)
        return key

    def object_path(self, key: str) -> Path:
        """On-disk location of ``key``'s object (disk stores only)."""
        if self.root is None:
            raise CampaignError("in-memory store has no object paths")
        return self.root / "objects" / key[:2] / f"{key}.json"

    def quarantine(self, key: str, reason: str) -> None:
        """Pull ``key``'s object out of service (counted, never deleted).

        Disk stores move the object file to ``quarantine/`` (preserving
        the evidence for post-mortems); memory stores park the record in
        a side dict. Either way the next :meth:`get` is a miss and the
        point recomputes.

        Re-quarantining the same key (heal, recompute, corrupt again)
        must not overwrite the earlier evidence: the destination gains a
        monotonic ``.N`` suffix whenever the unsuffixed name is taken.
        On indexed stores a tombstone row is appended so the key drops
        from the index at the next merge/compaction.
        """
        self.quarantined += 1
        if self.root is None:
            record = self._memory.pop(key, None)
            if record is not None:
                slot, serial = key, 0
                while slot in self._memory_quarantine:
                    serial += 1
                    slot = f"{key}.{serial}"
                self._memory_quarantine[slot] = record
            return
        path = self.object_path(key)
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        target, serial = qdir / f"{key}.json", 0
        while target.exists():
            serial += 1
            target = qdir / f"{key}.{serial}.json"
        try:
            os.replace(path, target)
        except FileNotFoundError:
            pass  # already gone; nothing to preserve
        if self.index is not None:
            self.index.record_quarantine(key, reason)

    def _verified(self, key: str, record: Any) -> dict | None:
        """``record`` if it is a checksummed, untampered dict; else quarantine."""
        if not isinstance(record, Mapping):
            self.quarantine(key, "not a JSON object")
            return None
        record = dict(record)
        checksum = record.get("checksum")
        if checksum is None:
            return record  # pre-checksum record: accepted, flagged by scan()
        if record_checksum(record) != checksum:
            self.quarantine(key, "checksum mismatch")
            return None
        return record

    def contains(self, key: str) -> bool:
        """Cheap presence probe for ``key`` -- no record load, no quarantine.

        The remote-ingest dedup path asks "is this key already landed?"
        for every shipped row; answering via :meth:`load_key` would
        parse and checksum the object. Indexed stores answer from the
        shard index; unindexed ones from the object path. A corrupt
        object therefore *does* read as present here -- ingest skips it
        and the normal verify/quarantine machinery reclaims it later,
        which is the same trade the executor's resume path makes.
        """
        if self.root is None:
            return key in self._memory
        if self.index is not None and self.index.has(key):
            return True
        return self.object_path(key).exists()

    def load_key(self, key: str) -> dict | None:
        """Fetch a verified cached record by key (None if absent/corrupt).

        A record that fails to parse or fails its checksum is
        quarantined on the spot and reads as a miss -- a
        corrupt-but-parseable object is never served as a hit.
        """
        if self.root is None:
            record = self._memory.get(key)
            return None if record is None else self._verified(key, record)
        path = self.object_path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            # torn or rotten write -- possibly not even valid UTF-8
            self.quarantine(key, "unparseable JSON")
            return None
        return self._verified(key, record)

    def get(self, point: PointSpec) -> dict | None:
        """Cached record for ``point`` under the current model, or None."""
        record = self.load_key(self.key_for(point))
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, point: PointSpec, payload: Mapping[str, Any],
            wall_ms: float | None = None) -> str:
        """Store ``payload`` for ``point`` (checksummed); returns the cache key.

        ``wall_ms`` (real wall-clock the executor spent on the point, if
        known) is *not* part of the cached record -- cache-served results
        stay bit-identical to computed ones -- but is carried on the
        index row so latency queries never open object files.
        """
        key = self.key_for(point)
        record = {
            "key": key,
            "fingerprint": self.fingerprint,
            "point": point.to_dict(),
            "result": dict(payload),
        }
        record["checksum"] = record_checksum(record)
        if self.root is None:
            self._memory[key] = record
        else:
            path = self.object_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: readers never see a torn object. The temp
            # name embeds the pid *and* thread id so concurrent writers
            # racing on the same key -- sibling processes or the service
            # daemon's runner threads -- each stage their own file; last
            # rename wins with a whole record either way.
            tmp = path.with_name(
                f".{key}.{os.getpid()}.{threading.get_ident()}.tmp")
            tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
            if self.index is not None:
                result = record["result"]
                self.index.record_put(
                    key, checksum=record["checksum"], point=record["point"],
                    status=result.get("status"), seconds=result.get("seconds"),
                    wall_ms=wall_ms,
                )
        self.writes += 1
        return key

    def corrupt(self, key: str, at: float = 0.0) -> None:
        """Damage ``key``'s stored object in place (fault-injection hook).

        ``at`` in [0, 1] picks *where*: disk stores XOR one byte at that
        fraction of the file, memory stores tamper the record without
        refreshing its checksum. Out-of-range ``at`` values are clamped
        (fault schedules derive ``at`` from seeded hashes and may hand
        in anything); empty or missing objects are a no-op, never an
        error. Only :mod:`repro.faults` and tests call this; it exists
        so chaos schedules can corrupt through the same API surface the
        store itself owns.
        """
        at = min(max(float(at), 0.0), 1.0)
        if self.root is None:
            record = self._memory.get(key)
            if record is not None:
                record["fingerprint"] = f"corrupt|{record.get('fingerprint')}"
            return
        path = self.object_path(key)
        try:
            data = bytearray(path.read_bytes())
        except FileNotFoundError:
            return
        if not data:
            return
        pos = min(int(at * len(data)), len(data) - 1)
        data[pos] ^= 0x01
        path.write_bytes(bytes(data))

    def result_for(self, task_id: str, point: PointSpec) -> PointResult | None:
        """Reconstruct a :class:`PointResult` from cache (marked cached).

        Corrupt objects (quarantined by :meth:`load_key`) and
        schema-drifted records both come back as None -- a miss the
        executor answers by recomputing -- never as an exception.
        """
        record = self.load_key(self.key_for(point))
        result = None if record is None else _result_slice(record)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return PointResult(
            task_id=task_id, point=point, status=result["status"],
            seconds=result["seconds"], error=result.get("error"),
            cached=True, attempts=0,
        )

    def _iter_records(self):
        """Yield (key, raw record | None, reason) for every stored object."""
        if self.root is None:
            for key, record in self._memory.items():
                yield key, record, ""
            return
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.rglob("*.json")):
            key = path.stem
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
                yield key, None, f"unparseable: {exc}"
                continue
            yield key, record, ""

    def scan(self, quarantine: bool = False) -> StoreScan:
        """Audit every stored object; optionally quarantine what fails.

        Checks, per object: JSON parses to a dict, the checksum verifies
        (pre-checksum records count as ``legacy``), the record's ``key``
        field matches its filename, and its point/fingerprint re-derive
        that same key. Schema-drifted ``result`` payloads are counted
        but are not errors. ``quarantine=True`` additionally pulls every
        corrupt object out of service, exactly as a read would.

        Indexed (v2) stores get an extra cross-check of the persistent
        index against the tree -- intact objects without a row count as
        ``unindexed``, rows that contradict their object (or point at a
        missing one) as ``index_stale``. Both are advisory, not errors:
        the tree is ground truth and the index is rebuildable.
        """
        report = StoreScan()
        index_rows = None
        if self.root is not None and self.index is not None:
            index_rows = {key: row for key, row in self.index.rows()}
        for key, record, reason in self._iter_records():
            report.objects += 1
            row = index_rows.pop(key, None) if index_rows is not None else None
            if record is None or not isinstance(record, Mapping):
                report.corrupt.append((key, reason or "not a JSON object"))
                continue
            checksum = record.get("checksum")
            if checksum is not None and record_checksum(record) != checksum:
                report.corrupt.append((key, "checksum mismatch"))
                continue
            if record.get("key") != key:
                report.corrupt.append((key, "record key != object name"))
                continue
            derived = _derive_key(record)
            if derived is not None and derived != key:
                report.corrupt.append((key, "content hash != object name"))
                continue
            if checksum is None:
                report.legacy += 1
            elif _result_slice(record) is None:
                report.drifted += 1
            else:
                report.ok += 1
            if index_rows is not None:
                if row is None:
                    report.unindexed += 1
                elif row.get("checksum") != checksum:
                    report.index_stale += 1
        if index_rows:
            report.index_stale += len(index_rows)  # rows with no object
        if quarantine:
            for key, _reason in report.corrupt:
                self.quarantine(key, _reason)
                report.quarantined += 1
        return report

    def count_objects(self) -> int:
        """Number of stored objects: O(index) when indexed, O(tree) else.

        The index-backed count is what the service's ``/metrics`` and
        ``/store`` endpoints poll; on a v1 (unindexed) store it falls
        back to walking the object tree.
        """
        if self.root is None:
            return len(self._memory)
        if self.index is not None:
            return self.index.count()
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.rglob("*.json"))

    def compact(self) -> CompactionReport:
        """Fold every shard's index log into its snapshot (see
        :meth:`repro.campaign.shard.StoreIndex.compact`); raises
        :class:`CampaignError` on unindexed (memory or v1) stores."""
        if self.index is None:
            raise CampaignError(
                "store has no persistent index (in-memory, or v1 layout; "
                "run tools/migrate_store.py to upgrade a flat store)")
        return self.index.compact()


def _derive_key(record: Mapping[str, Any]) -> str | None:
    """Re-derive a record's content hash from its point + fingerprint.

    Returns None when the embedded point does not round-trip (schema
    drift from another version) -- that is a drift condition, not
    evidence of corruption, so the scan skips the comparison.
    """
    point_payload = record.get("point")
    fingerprint = record.get("fingerprint")
    if not isinstance(point_payload, Mapping) or not isinstance(fingerprint, str):
        return None
    try:
        point = PointSpec.from_dict(point_payload, ignore_unknown=True)
    except CampaignError:
        return None
    return cache_key(point, fingerprint)


def _lock_file(fd: int) -> None:
    """Take an exclusive cross-process advisory lock on ``fd`` (blocking)."""
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_EX)


def _unlock_file(fd: int) -> None:
    """Release the advisory lock taken by :func:`_lock_file`."""
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_UN)


class Journal:
    """Append-only run log; one JSON object per line.

    Safe for concurrent appenders across processes: each append is one
    ``write()`` of a whole line on an ``O_APPEND`` descriptor, guarded
    by an exclusive advisory lock, so two processes sharing one journal
    can never interleave partial lines (the 8-appender property test in
    ``tests/campaign/test_store_properties.py`` pins this).

    A journal may additionally be *fenced*: ``fence`` is a zero-argument
    callable re-validated under the append lock before any byte is
    written. Remote executors fence their private segment journals with
    the lease check (:meth:`repro.remote.lease.LeaseFile.guard`), so a
    writer whose lease expired or was taken over gets a typed error
    (``LeaseExpiredError`` / ``StaleWriterError``) instead of silently
    appending rows the coordinator will never own.
    """

    def __init__(self, path: str | os.PathLike,
                 fence: Callable[[], None] | None = None) -> None:
        """Bind to ``path`` (created lazily on first append).

        ``fence``, when given, runs under the append lock before each
        write; raising from it aborts the append with nothing written.
        """
        self.path = Path(path)
        self.fence = fence

    def append(self, entry: Mapping[str, Any]) -> None:
        """Append one entry and flush it to disk immediately.

        A crash mid-append can leave the final line without its trailing
        newline; blindly appending to that would concatenate the new
        entry onto the torn line and lose *both*. The append therefore
        heals such a tail first by terminating it, so the torn fragment
        stays an isolated (skipped) line and the new entry parses.

        The heal-check plus the line write happen under an exclusive
        advisory lock on the journal file, and the line lands as a
        single ``write()`` on an ``O_APPEND`` descriptor -- concurrent
        appenders serialize instead of interleaving.

        When the journal carries a ``fence``, it is re-checked *inside*
        the lock: an expired or superseded lease holder is rejected with
        the fence's typed error before the heal or the write touch the
        file, so a stale writer cannot race a takeover.
        """
        line = (canonical_json(dict(entry)) + "\n").encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR | os.O_APPEND, 0o644)
        try:
            _lock_file(fd)
            try:
                if self.fence is not None:
                    self.fence()
                size = os.fstat(fd).st_size
                if size and os.pread(fd, 1, size - 1) != b"\n":
                    os.write(fd, b"\n")
                os.write(fd, line)
                os.fsync(fd)
            finally:
                _unlock_file(fd)
        finally:
            os.close(fd)

    def tear_tail(self, at: float = 0.0) -> int:
        """Truncate the final line mid-write (fault-injection hook).

        Cuts between 1 byte and the whole last line, ``at`` in [0, 1]
        picking how deep -- the shapes a crash between ``write`` and a
        durable ``fsync`` leaves behind. Out-of-range ``at`` values are
        clamped (fault schedules derive them from seeded hashes; a
        negative ``at`` used to *grow* the file with zero padding), and
        an empty or missing journal is a no-op. Returns the number of
        bytes removed (0 when the journal is empty).
        """
        at = min(max(float(at), 0.0), 1.0)
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return 0
        if not data:
            return 0
        body = data[:-1] if data.endswith(b"\n") else data
        start = body.rfind(b"\n") + 1
        last_len = len(data) - start
        cut = min(1 + int(at * last_len), last_len)
        with open(self.path, "rb+") as fh:
            fh.truncate(len(data) - cut)
        return cut

    def torn_lines(self) -> int:
        """Number of journal lines that do not parse (normally 0 or 1)."""
        if not self.path.exists():
            return 0
        torn = 0
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    json.loads(line)
                except json.JSONDecodeError:
                    torn += 1
        return torn

    def entries(self) -> list[dict]:
        """All intact entries, in append order (torn tail lines skipped)."""
        if not self.path.exists():
            return []
        out: list[dict] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # interrupted mid-write; the task will re-run
        return out

    def completed_ids(self) -> dict[str, dict]:
        """task_id -> latest terminal entry (failed tasks are *not* terminal).

        Failed entries are excluded on purpose: resuming a campaign
        retries its failures, matching the executor's bounded-retry
        policy rather than freezing a transient fault forever.
        """
        done: dict[str, dict] = {}
        for entry in self.entries():
            tid = entry.get("task_id")
            status = entry.get("status")
            if not tid or status not in _STATUSES:
                continue
            if status == FAILED:
                done.pop(tid, None)
            else:
                done[tid] = entry
        return done


class JournalReader:
    """Offset-resumable journal reader: repeated polls cost O(new bytes).

    ``Journal.entries`` re-reads and re-parses the whole file on every
    call, which is fine for a one-shot CLI but quadratic for anything
    that polls -- the service's status endpoint and event stream hit
    the journal once per client request. A reader remembers the byte
    offset it has consumed up to and only reads what appended since.

    Torn-tail semantics: a final line *without* a trailing newline is
    left unconsumed (it may still be mid-write; the next append heals
    it), while a newline-terminated line that fails to parse is counted
    in ``torn`` and skipped permanently. ``bytes_read`` accumulates the
    real read cost, which the O(new rows) regression test pins.
    """

    def __init__(self, path: str | os.PathLike, offset: int = 0) -> None:
        """Bind to ``path``, resuming from byte ``offset`` (default 0)."""
        self.path = Path(path)
        self.offset = int(offset)
        self.bytes_read = 0
        self.torn = 0
        self.resyncs = 0

    def poll(self) -> list[dict]:
        """Entries appended since the last poll (empty when none).

        Advances ``offset`` past every fully-written line it returns or
        skips; a trailing fragment with no newline is re-examined on the
        next poll.

        If the journal shrank below ``offset`` -- a torn tail cut into
        bytes this reader had already consumed -- the offset re-syncs to
        the new end of file (counted in ``resyncs``) instead of staying
        past it. Without the re-sync, a later completed write that
        re-delivers the torn entry would be read from mid-line and lost
        as garbage; with it, the entry arrives whole. Entries consumed
        just before the tear may be delivered again after the rewrite,
        which is safe: journal folding (``completed_ids``) is last-wins.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() < self.offset:
                    self.offset = fh.tell()
                    self.resyncs += 1
                fh.seek(self.offset)
                chunk = fh.read()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        self.bytes_read += len(chunk)
        end = chunk.rfind(b"\n")
        if end < 0:
            return []  # only an unterminated fragment so far
        consumed = chunk[: end + 1]
        self.offset += len(consumed)
        out: list[dict] = []
        for line in consumed.split(b"\n"):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.torn += 1  # healed torn fragment; permanently skipped
                continue
            if isinstance(entry, dict):
                out.append(entry)
        return out


def write_spec(path: Path, spec_payload: Mapping[str, Any]) -> None:
    """Persist a campaign's spec.json (pretty, stable key order).

    Published atomically (per-process temp file + rename) so concurrent
    runners racing to create the same campaign directory -- the service
    deduplicates upstream, but the CLI has no such guard -- never leave
    a half-written spec for the loser to read.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    tmp.write_text(json.dumps(dict(spec_payload), sort_keys=True, indent=2) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


def read_spec(path: Path) -> dict:
    """Load a campaign's spec.json."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CampaignError(f"no campaign spec at {path}") from None
    except json.JSONDecodeError as exc:
        raise CampaignError(f"corrupt campaign spec at {path}: {exc}") from None
