"""Campaign executor: run planned points on a process pool, cached.

The simulator is deterministic and CPU-bound, so unlike most Python
workloads a :class:`~concurrent.futures.ProcessPoolExecutor` buys real
wall-clock speedup: each worker process costs points independently and
ships back a tiny ``{status, seconds, error}`` dict. The executor walks
the plan's topological waves (shared baselines first, then measures),
and for every task:

1. serves it from the content-addressed store when the (point, model
   fingerprint) key is present -- a *cache hit* span, zero simulator
   invocations;
2. otherwise executes it (inline for ``workers <= 1``, on the pool
   otherwise) with a per-task timeout and bounded retry -- a *cache
   miss* span whose duration is the point's simulated seconds;
3. journals the terminal outcome, making an interrupted campaign
   resumable: ``resume=True`` re-plans deterministically and skips every
   task the journal already holds.

Failures degrade gracefully: a point that raises (or times out) after
its retries is recorded as ``failed`` with its error string and the
campaign carries on -- one bad cell never aborts a 90-cell grid.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.backends import get_backend
from repro.campaign.plan import CampaignPlan, PointTask, plan_campaign
from repro.campaign.spec import CampaignSpec, PointSpec
from repro.campaign.store import (
    DONE,
    FAILED,
    NA,
    Journal,
    PointResult,
    ResultStore,
    read_spec,
    write_spec,
)
from repro.errors import CampaignError, ReproError, UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.memory.allocators import (
    DefaultAllocator,
    HpxNumaAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
)
from repro.suite.cases import get_case
from repro.suite.wrappers import run_case
from repro.trace import get_tracer

__all__ = [
    "CampaignOutcome",
    "CampaignStats",
    "run_campaign",
    "load_campaign",
    "execute_point",
    "point_context",
]

#: Named allocators a point may request (None = backend default).
_ALLOCATORS: Mapping[str, Callable] = {
    "default": DefaultAllocator,
    "first-touch": ParallelFirstTouchAllocator,
    "hpx": HpxNumaAllocator,
    "interleaved": InterleavedAllocator,
}


def point_context(point: PointSpec) -> ExecutionContext:
    """Build the execution context one point describes."""
    machine = get_machine(point.machine)
    backend = get_backend(point.backend)
    threads = 1 if backend.is_sequential else point.threads
    allocator = None
    if point.allocator is not None:
        allocator = _ALLOCATORS[point.allocator]()
    return ExecutionContext(
        machine, backend, threads=threads, allocator=allocator, mode=point.mode
    )


def execute_point(payload: dict) -> dict:
    """Cost one point; the process-pool worker entry (module-level, picklable).

    Returns the cacheable ``{status, seconds, error}`` payload. Capability
    gaps surface as ``na`` (the paper's N/A cells); any other failure --
    model bug, bad spec value -- becomes ``failed`` with the error text,
    never an exception that would poison the pool.
    """
    try:
        point = PointSpec.from_dict(payload)
        ctx = point_context(point)
        result = run_case(
            get_case(point.case), ctx, point.n, min_time=point.min_time
        )
        return {"status": DONE, "seconds": result.mean_time, "error": None}
    except UnsupportedOperationError as exc:
        return {"status": NA, "seconds": None, "error": str(exc)}
    except ReproError as exc:
        return {"status": FAILED, "seconds": None,
                "error": f"{type(exc).__name__}: {exc}"}
    except Exception as exc:  # noqa: BLE001 - worker boundary, degrade gracefully
        return {"status": FAILED, "seconds": None,
                "error": f"{type(exc).__name__}: {exc}"}


@dataclass
class CampaignStats:
    """Counters describing where one run's results came from."""

    planned: int = 0
    pruned: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    executed: int = 0
    failed: int = 0

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.planned} tasks: {self.pruned} pruned N/A, "
            f"{self.journal_hits} from journal, {self.cache_hits} cache hits, "
            f"{self.executed} executed, {self.failed} failed"
        )


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    plan: CampaignPlan
    results: dict[str, PointResult] = field(default_factory=dict)
    stats: CampaignStats = field(default_factory=CampaignStats)

    def result_for(self, task: PointTask) -> PointResult | None:
        """The result recorded for ``task`` (None only after a crash)."""
        return self.results.get(task.task_id)

    def seconds(self, task_id: str) -> float | None:
        """Simulated seconds of a done task, else None."""
        result = self.results.get(task_id)
        return result.seconds if result is not None and result.status == DONE else None


def _trace_point(task: PointTask, result: PointResult) -> None:
    """Emit one cache-hit/cache-miss span for a finished task."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    if task.pruned is not None:
        name = "pruned"
    elif result.cached:
        name = "cache-hit"
    else:
        name = "cache-miss"
    duration = 0.0
    if not result.cached and result.seconds is not None:
        duration = result.seconds
        tracer.advance(duration)
        start = tracer.clock - duration
    else:
        start = tracer.clock
    tracer.record(
        name, duration, category="campaign", track="campaign", start=start,
        task=task.task_id, kind=task.kind, status=result.status,
        machine=task.point.machine, backend=task.point.backend,
        case=task.point.case, n=task.point.n, threads=task.point.threads,
    )


def _record(outcome: CampaignOutcome, store: ResultStore, journal: Journal | None,
            task: PointTask, result: PointResult) -> None:
    """Finalize one task: cache it, journal it, trace it, count it."""
    outcome.results[task.task_id] = result
    key = None
    if result.status != FAILED and not result.cached and task.pruned is None:
        key = store.put(task.point, result.payload())
    elif task.pruned is None:
        key = store.key_for(task.point)
    if journal is not None:
        journal.append({
            "task_id": task.task_id,
            "status": result.status,
            "key": key,
            "seconds": result.seconds,
            "error": result.error,
            "cached": result.cached,
        })
    _trace_point(task, result)


def _execute_serial(tasks: list[PointTask], retries: int) -> dict[str, dict]:
    """Run tasks inline (workers <= 1); returns task_id -> payload."""
    out: dict[str, dict] = {}
    for task in tasks:
        payload = execute_point(task.point.to_dict())
        attempt = 0
        while payload["status"] == FAILED and attempt < retries:
            attempt += 1
            payload = execute_point(task.point.to_dict())
        payload["attempts"] = attempt + 1
        out[task.task_id] = payload
    return out


def _execute_pool(tasks: list[PointTask], pool: ProcessPoolExecutor,
                  timeout: float | None, retries: int) -> dict[str, dict]:
    """Run one wave on the pool with per-task timeout and bounded retry."""
    out: dict[str, dict] = {}
    attempts: dict[str, int] = {t.task_id: 1 for t in tasks}
    pending: dict[Future, PointTask] = {
        pool.submit(execute_point, t.point.to_dict()): t for t in tasks
    }
    while pending:
        finished, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
        if not finished:
            # Nothing completed within the per-task budget: every pending
            # point has now been waiting >= timeout, so fail them all.
            for fut, task in pending.items():
                fut.cancel()
                out[task.task_id] = {
                    "status": FAILED, "seconds": None,
                    "error": f"timeout after {timeout:g}s",
                    "attempts": attempts[task.task_id],
                }
            return out
        for fut in finished:
            task = pending.pop(fut)
            exc = fut.exception()
            if exc is not None:
                payload = {"status": FAILED, "seconds": None,
                           "error": f"{type(exc).__name__}: {exc}"}
            else:
                payload = fut.result()
            if payload["status"] == FAILED and attempts[task.task_id] <= retries:
                attempts[task.task_id] += 1
                pending[pool.submit(execute_point, task.point.to_dict())] = task
                continue
            payload["attempts"] = attempts[task.task_id]
            out[task.task_id] = payload
    return out


def run_campaign(
    spec: CampaignSpec,
    *,
    store: ResultStore | None = None,
    workers: int = 0,
    timeout: float | None = None,
    retries: int = 1,
    campaign_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable[[PointTask, PointResult], None] | None = None,
) -> CampaignOutcome:
    """Plan and execute ``spec``; returns the full outcome.

    Parameters
    ----------
    store:
        Result cache; defaults to ``<campaign_dir>/cache`` when a
        directory is given, else an in-memory store.
    workers:
        Process-pool width. ``0``/``1`` executes inline in this process
        (deterministic, no fork) -- the right choice for tests and tiny
        grids; ``>= 2`` runs points concurrently.
    timeout:
        Per-task wall-clock budget in seconds (pool mode only); a point
        that exceeds it is recorded as failed.
    retries:
        How many times a failed point is re-executed before its failure
        is journaled as terminal.
    campaign_dir:
        Run directory holding ``spec.json`` + ``journal.jsonl`` (and the
        default cache). Required for ``resume``.
    resume:
        Skip every task whose terminal entry the journal already holds,
        loading its result from the cache instead of recomputing.
    progress:
        Optional callback invoked with every (task, result) as recorded.
    """
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    if workers < 0:
        raise CampaignError("workers must be >= 0")
    journal: Journal | None = None
    if campaign_dir is not None:
        root = Path(campaign_dir)
        spec_path = root / "spec.json"
        if spec_path.exists():
            on_disk = read_spec(spec_path)
            if CampaignSpec.from_dict(on_disk).canonical() != spec.canonical():
                raise CampaignError(
                    f"{root} already holds a different campaign "
                    f"({on_disk.get('name')!r}); use a fresh directory"
                )
        else:
            write_spec(spec_path, spec.to_dict())
        journal = Journal(root / "journal.jsonl")
        if store is None:
            store = ResultStore(root / "cache")
    if store is None:
        store = ResultStore(None)
    if resume and journal is None:
        raise CampaignError("resume requires a campaign_dir")

    tracer = get_tracer()
    outcome = None
    span = tracer.begin("campaign.run", category="campaign", track="campaign",
                        campaign=spec.name) if tracer.enabled else None
    try:
        outcome = _run(spec, store, workers, timeout, retries, journal, resume,
                       progress)
    finally:
        if span is not None:
            if outcome is not None:
                span.set_attribute("tasks", outcome.stats.planned)
                span.set_attribute("executed", outcome.stats.executed)
                span.set_attribute("cache_hits", outcome.stats.cache_hits)
            tracer.end()
    return outcome


def _run(spec, store, workers, timeout, retries, journal, resume, progress):
    """The executor body (directory/span plumbing handled by the caller)."""
    plan = plan_campaign(spec)
    outcome = CampaignOutcome(spec=spec, plan=plan)
    outcome.stats.planned = len(plan.tasks)

    journaled: dict[str, dict] = {}
    if resume and journal is not None:
        journaled = journal.completed_ids()

    def finish(task: PointTask, result: PointResult) -> None:
        _record(outcome, store, journal, task, result)
        if progress is not None:
            progress(task, result)

    tracer = get_tracer()
    pool: ProcessPoolExecutor | None = None
    try:
        span = tracer.begin("campaign.execute", category="campaign",
                            track="campaign") if tracer.enabled else None
        try:
            for wave in _all_waves(plan):
                to_run: list[PointTask] = []
                for task in wave:
                    if task.pruned is not None:
                        outcome.stats.pruned += 1
                        finish(task, PointResult(
                            task_id=task.task_id, point=task.point, status=NA,
                            error=task.pruned, attempts=0,
                        ))
                        continue
                    if task.task_id in journaled:
                        entry = journaled[task.task_id]
                        cached = store.result_for(task.task_id, task.point)
                        if cached is not None:
                            outcome.stats.journal_hits += 1
                            finish(task, cached)
                            continue
                        if entry["status"] == NA:
                            # N/A needs no cache object to be trustworthy.
                            outcome.stats.journal_hits += 1
                            finish(task, PointResult(
                                task_id=task.task_id, point=task.point,
                                status=NA, error=entry.get("error"),
                                cached=True, attempts=0,
                            ))
                            continue
                        # Journaled but evicted from cache: recompute.
                    cached = store.result_for(task.task_id, task.point)
                    if cached is not None:
                        outcome.stats.cache_hits += 1
                        finish(task, cached)
                        continue
                    to_run.append(task)
                if not to_run:
                    continue
                if workers >= 2:
                    if pool is None:
                        pool = ProcessPoolExecutor(max_workers=workers)
                    payloads = _execute_pool(to_run, pool, timeout, retries)
                else:
                    payloads = _execute_serial(to_run, retries)
                for task in to_run:
                    payload = payloads[task.task_id]
                    outcome.stats.executed += 1
                    if payload["status"] == FAILED:
                        outcome.stats.failed += 1
                    finish(task, PointResult(
                        task_id=task.task_id, point=task.point,
                        status=payload["status"], seconds=payload["seconds"],
                        error=payload["error"],
                        attempts=payload.get("attempts", 1),
                    ))
        finally:
            if span is not None:
                tracer.end()
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    return outcome


def load_campaign(campaign_dir: str | os.PathLike,
                  store: ResultStore | None = None) -> CampaignOutcome:
    """Reconstruct a campaign's outcome from disk without executing.

    Re-plans from ``spec.json`` (deterministic, so task ids line up),
    then fills in whatever the journal and cache already hold: pruned
    tasks, journaled N/As, and cached results. Tasks with no terminal
    record stay absent from ``outcome.results`` -- that's the pending
    set a ``resume`` would run.
    """
    root = Path(campaign_dir)
    spec = CampaignSpec.from_dict(read_spec(root / "spec.json"))
    if store is None:
        store = ResultStore(root / "cache")
    plan = plan_campaign(spec)
    outcome = CampaignOutcome(spec=spec, plan=plan)
    outcome.stats.planned = len(plan.tasks)
    journaled = Journal(root / "journal.jsonl").completed_ids()
    for task in plan.tasks:
        if task.pruned is not None:
            outcome.stats.pruned += 1
            outcome.results[task.task_id] = PointResult(
                task_id=task.task_id, point=task.point, status=NA,
                error=task.pruned, attempts=0,
            )
            continue
        cached = store.result_for(task.task_id, task.point)
        if cached is not None:
            outcome.stats.cache_hits += 1
            outcome.results[task.task_id] = cached
            continue
        entry = journaled.get(task.task_id)
        if entry is not None and entry["status"] == NA:
            outcome.stats.journal_hits += 1
            outcome.results[task.task_id] = PointResult(
                task_id=task.task_id, point=task.point, status=NA,
                error=entry.get("error"), cached=True, attempts=0,
            )
    return outcome


def _all_waves(plan: CampaignPlan):
    """Pruned tasks first (cheap N/A records), then the plan's waves."""
    pruned = tuple(plan.pruned)
    if pruned:
        yield pruned
    yield from plan.waves()
