"""Campaign executor: run planned points on a process pool, cached.

The simulator is deterministic and CPU-bound, so unlike most Python
workloads a :class:`~concurrent.futures.ProcessPoolExecutor` buys real
wall-clock speedup: each worker process costs points independently and
ships back a tiny ``{status, seconds, error}`` dict. The executor walks
the plan's topological waves (shared baselines first, then measures),
and for every task:

1. serves it from the content-addressed store when the (point, model
   fingerprint) key is present -- a *cache hit* span, zero simulator
   invocations;
2. otherwise executes it (inline for ``workers <= 1``, on the pool
   otherwise) with a per-task timeout and bounded retry -- a *cache
   miss* span whose duration is the point's simulated seconds;
3. journals the terminal outcome, making an interrupted campaign
   resumable: ``resume=True`` re-plans deterministically and skips every
   task the journal already holds.

Failures degrade gracefully: a point that raises (or times out) after
its retries is recorded as ``failed`` with its error string and the
campaign carries on -- one bad cell never aborts a 90-cell grid.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.backends import get_backend
from repro.campaign.plan import CampaignPlan, PointTask, plan_campaign
from repro.campaign.spec import CampaignSpec, PointSpec
from repro.campaign.store import (
    DONE,
    FAILED,
    NA,
    Journal,
    PointResult,
    ResultStore,
    read_spec,
    write_spec,
)
from repro.errors import CampaignError, ReproError, UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.machines import get_machine
from repro.memory.allocators import (
    DefaultAllocator,
    HpxNumaAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
)
from repro.suite.cases import get_case
from repro.suite.wrappers import run_case
from repro.trace import get_tracer

__all__ = [
    "CampaignOutcome",
    "CampaignStats",
    "run_campaign",
    "load_campaign",
    "execute_point",
    "execute_curve",
    "point_context",
]

#: Named allocators a point may request (None = backend default).
_ALLOCATORS: Mapping[str, Callable] = {
    "default": DefaultAllocator,
    "first-touch": ParallelFirstTouchAllocator,
    "hpx": HpxNumaAllocator,
    "interleaved": InterleavedAllocator,
}


def point_context(point: PointSpec) -> ExecutionContext:
    """Build the execution context one point describes."""
    machine = get_machine(point.machine)
    backend = get_backend(point.backend)
    threads = 1 if backend.is_sequential else point.threads
    allocator = None
    if point.allocator is not None:
        allocator = _ALLOCATORS[point.allocator]()
    return ExecutionContext(
        machine, backend, threads=threads, allocator=allocator, mode=point.mode
    )


def execute_point(payload: dict) -> dict:
    """Cost one point; the process-pool worker entry (module-level, picklable).

    Returns the ``{status, seconds, error}`` payload plus ``wall_ms``,
    the real wall-clock the evaluation took (journaled, never cached).
    Capability gaps surface as ``na`` (the paper's N/A cells); any other
    failure -- model bug, bad spec value -- becomes ``failed`` with the
    error text, never an exception that would poison the pool.
    """
    t0 = time.perf_counter()
    try:
        point = PointSpec.from_dict(payload)
        ctx = point_context(point)
        result = run_case(
            get_case(point.case), ctx, point.n, min_time=point.min_time
        )
        out = {"status": DONE, "seconds": result.mean_time, "error": None}
    except UnsupportedOperationError as exc:
        out = {"status": NA, "seconds": None, "error": str(exc)}
    except ReproError as exc:
        out = {"status": FAILED, "seconds": None,
               "error": f"{type(exc).__name__}: {exc}"}
    except Exception as exc:  # noqa: BLE001 - worker boundary, degrade gracefully
        out = {"status": FAILED, "seconds": None,
               "error": f"{type(exc).__name__}: {exc}"}
    out["wall_ms"] = (time.perf_counter() - t0) * 1000.0
    return out


def _curve_key(task: PointTask) -> tuple:
    """Grouping key: points of one sweep curve share this tuple."""
    point = task.point
    return (point.machine, point.backend, point.case, point.allocator, point.mode)


def _group_curves(tasks: list[PointTask]) -> list[list[PointTask]]:
    """Split a wave into curves (shared machine/backend/case/allocator/mode)."""
    groups: dict[tuple, list[PointTask]] = {}
    for task in tasks:
        groups.setdefault(_curve_key(task), []).append(task)
    return list(groups.values())


def execute_curve(payloads: list[dict]) -> list[dict]:
    """Cost a curve of points sharing (machine, backend, case, allocator, mode).

    The batch counterpart of :func:`execute_point` and, like it, a
    module-level picklable pool-worker entry: one submission covers a
    whole sweep curve instead of one cell. Each point goes through the
    vectorized ``repro.sim.batch`` path when eligible (model mode,
    ``min_time == 0``, a :data:`~repro.suite.batch.BATCH_CASES` case) and
    falls back to the scalar :func:`execute_point` otherwise; both paths
    return bit-identical seconds, so cached results stay coherent across
    paths. Returns one payload per input, in order. When tracing is
    enabled (serial in-process execution), one ``sim.batch`` span is
    recorded per curve.
    """
    from repro.suite.batch import BATCH_TRACK, batch_supported, measure_case_batch

    out: list[dict] = []
    batch_total = 0.0
    batch_points = 0
    first = None
    for payload in payloads:
        t0 = time.perf_counter()
        try:
            point = PointSpec.from_dict(payload)
            ctx = point_context(point)
            if point.min_time == 0.0 and batch_supported(point.case, ctx):
                first = first or point
                seconds = measure_case_batch(point.case, ctx, point.n)
                batch_total += seconds
                batch_points += 1
                out.append({"status": DONE, "seconds": seconds, "error": None})
            else:
                out.append(execute_point(payload))
                continue  # execute_point stamped its own wall_ms
        except UnsupportedOperationError as exc:
            out.append({"status": NA, "seconds": None, "error": str(exc)})
        except ReproError as exc:
            out.append({"status": FAILED, "seconds": None,
                        "error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:  # noqa: BLE001 - worker boundary
            out.append({"status": FAILED, "seconds": None,
                        "error": f"{type(exc).__name__}: {exc}"})
        out[-1]["wall_ms"] = (time.perf_counter() - t0) * 1000.0
    tracer = get_tracer()
    if tracer.enabled and batch_points:
        tracer.record(
            "sim.batch", batch_total, category="batch", track=BATCH_TRACK,
            machine=first.machine, backend=first.backend, case=first.case,
            points=batch_points,
        )
    return out


@dataclass
class CampaignStats:
    """Counters describing where one run's results came from."""

    planned: int = 0
    pruned: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    executed: int = 0
    failed: int = 0

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.planned} tasks: {self.pruned} pruned N/A, "
            f"{self.journal_hits} from journal, {self.cache_hits} cache hits, "
            f"{self.executed} executed, {self.failed} failed"
        )


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    plan: CampaignPlan
    results: dict[str, PointResult] = field(default_factory=dict)
    stats: CampaignStats = field(default_factory=CampaignStats)

    def result_for(self, task: PointTask) -> PointResult | None:
        """The result recorded for ``task`` (None only after a crash)."""
        return self.results.get(task.task_id)

    def seconds(self, task_id: str) -> float | None:
        """Simulated seconds of a done task, else None."""
        result = self.results.get(task_id)
        return result.seconds if result is not None and result.status == DONE else None


def _trace_point(task: PointTask, result: PointResult) -> None:
    """Emit one cache-hit/cache-miss span for a finished task."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    if task.pruned is not None:
        name = "pruned"
    elif result.cached:
        name = "cache-hit"
    else:
        name = "cache-miss"
    duration = 0.0
    if not result.cached and result.seconds is not None:
        duration = result.seconds
        tracer.advance(duration)
        start = tracer.clock - duration
    else:
        start = tracer.clock
    tracer.record(
        name, duration, category="campaign", track="campaign", start=start,
        task=task.task_id, kind=task.kind, status=result.status,
        machine=task.point.machine, backend=task.point.backend,
        case=task.point.case, n=task.point.n, threads=task.point.threads,
    )


def _record(outcome: CampaignOutcome, store: ResultStore, journal: Journal | None,
            task: PointTask, result: PointResult,
            journal_new: bool = True) -> None:
    """Finalize one task: cache it, journal it, trace it, count it.

    ``journal_new=False`` marks a result that was *reconstructed from* the
    journal (a resume's journal hit): it is already durable, so appending
    it again would only grow the journal with duplicate terminal rows on
    every resume.
    """
    outcome.results[task.task_id] = result
    key = None
    if result.status != FAILED and not result.cached and task.pruned is None:
        key = store.put(task.point, result.payload())
    elif task.pruned is None:
        key = store.key_for(task.point)
    if journal is not None and journal_new:
        journal.append({
            "task_id": task.task_id,
            "status": result.status,
            "key": key,
            "seconds": result.seconds,
            "error": result.error,
            "cached": result.cached,
            "wall_ms": result.wall_ms,
        })
    _trace_point(task, result)


def _execute_serial(tasks: list[PointTask], retries: int) -> dict[str, dict]:
    """Run tasks inline (workers <= 1); returns task_id -> payload."""
    out: dict[str, dict] = {}
    for task in tasks:
        payload = execute_point(task.point.to_dict())
        attempt = 0
        while payload["status"] == FAILED and attempt < retries:
            attempt += 1
            payload = execute_point(task.point.to_dict())
        payload["attempts"] = attempt + 1
        out[task.task_id] = payload
    return out


def _execute_serial_batch(tasks: list[PointTask], retries: int) -> dict[str, dict]:
    """Serial curve-at-a-time execution; failed points retry scalar."""
    out: dict[str, dict] = {}
    for group in _group_curves(tasks):
        results = execute_curve([t.point.to_dict() for t in group])
        for task, payload in zip(group, results):
            attempt = 0
            while payload["status"] == FAILED and attempt < retries:
                attempt += 1
                payload = execute_point(task.point.to_dict())
            payload["attempts"] = attempt + 1
            out[task.task_id] = payload
    return out


def _execute_pool_batch(tasks: list[PointTask], pool: ProcessPoolExecutor,
                        timeout: float | None, retries: int) -> dict[str, dict]:
    """Pool execution with one submission per curve; retries are per-point.

    A curve future that fails or times out marks all its points; each
    failed point is then retried individually through the scalar
    :func:`execute_point` path (up to ``retries`` total re-executions),
    so one bad point never re-runs a whole curve.
    """
    out: dict[str, dict] = {}
    attempts: dict[str, int] = {t.task_id: 1 for t in tasks}
    pending: dict[Future, list[PointTask] | PointTask] = {
        pool.submit(execute_curve, [t.point.to_dict() for t in group]): group
        for group in _group_curves(tasks)
    }
    while pending:
        finished, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
        if not finished:
            for fut, val in pending.items():
                fut.cancel()
                group = val if isinstance(val, list) else [val]
                for task in group:
                    out[task.task_id] = {
                        "status": FAILED, "seconds": None,
                        "error": f"timeout after {timeout:g}s",
                        "attempts": attempts[task.task_id],
                    }
            return out
        for fut in finished:
            val = pending.pop(fut)
            group = val if isinstance(val, list) else [val]
            exc = fut.exception()
            if exc is not None:
                payloads = [
                    {"status": FAILED, "seconds": None,
                     "error": f"{type(exc).__name__}: {exc}"}
                    for _ in group
                ]
            else:
                result = fut.result()
                payloads = result if isinstance(val, list) else [result]
            for task, payload in zip(group, payloads):
                if payload["status"] == FAILED and attempts[task.task_id] <= retries:
                    attempts[task.task_id] += 1
                    pending[pool.submit(execute_point, task.point.to_dict())] = task
                    continue
                payload["attempts"] = attempts[task.task_id]
                out[task.task_id] = payload
    return out


def _execute_pool(tasks: list[PointTask], pool: ProcessPoolExecutor,
                  timeout: float | None, retries: int) -> dict[str, dict]:
    """Run one wave on the pool with per-task timeout and bounded retry."""
    out: dict[str, dict] = {}
    attempts: dict[str, int] = {t.task_id: 1 for t in tasks}
    pending: dict[Future, PointTask] = {
        pool.submit(execute_point, t.point.to_dict()): t for t in tasks
    }
    while pending:
        finished, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
        if not finished:
            # Nothing completed within the per-task budget: every pending
            # point has now been waiting >= timeout, so fail them all.
            for fut, task in pending.items():
                fut.cancel()
                out[task.task_id] = {
                    "status": FAILED, "seconds": None,
                    "error": f"timeout after {timeout:g}s",
                    "attempts": attempts[task.task_id],
                }
            return out
        for fut in finished:
            task = pending.pop(fut)
            exc = fut.exception()
            if exc is not None:
                payload = {"status": FAILED, "seconds": None,
                           "error": f"{type(exc).__name__}: {exc}"}
            else:
                payload = fut.result()
            if payload["status"] == FAILED and attempts[task.task_id] <= retries:
                attempts[task.task_id] += 1
                pending[pool.submit(execute_point, task.point.to_dict())] = task
                continue
            payload["attempts"] = attempts[task.task_id]
            out[task.task_id] = payload
    return out


def run_campaign(
    spec: CampaignSpec,
    *,
    store: ResultStore | None = None,
    workers: int = 0,
    timeout: float | None = None,
    retries: int = 1,
    campaign_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable[[PointTask, PointResult], None] | None = None,
    batch: bool = True,
) -> CampaignOutcome:
    """Plan and execute ``spec``; returns the full outcome.

    Parameters
    ----------
    store:
        Result cache; defaults to ``<campaign_dir>/cache`` when a
        directory is given, else an in-memory store.
    workers:
        Process-pool width. ``0``/``1`` executes inline in this process
        (deterministic, no fork) -- the right choice for tests and tiny
        grids; ``>= 2`` runs points concurrently.
    timeout:
        Per-task wall-clock budget in seconds (pool mode only); a point
        that exceeds it is recorded as failed.
    retries:
        How many times a failed point is re-executed before its failure
        is journaled as terminal.
    campaign_dir:
        Run directory holding ``spec.json`` + ``journal.jsonl`` (and the
        default cache). Required for ``resume``.
    resume:
        Skip every task whose terminal entry the journal already holds,
        loading its result from the cache instead of recomputing.
    progress:
        Optional callback invoked with every (task, result) as recorded.
    batch:
        Execute whole curves per task through the vectorized
        ``repro.sim.batch`` path (bit-identical seconds; failed points
        retry through the scalar path). ``False`` forces the scalar
        per-point path everywhere -- the ``--no-batch`` debugging mode.
    """
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    if workers < 0:
        raise CampaignError("workers must be >= 0")
    journal: Journal | None = None
    if campaign_dir is not None:
        root = Path(campaign_dir)
        spec_path = root / "spec.json"
        if spec_path.exists():
            on_disk = read_spec(spec_path)
            if CampaignSpec.from_dict(on_disk).canonical() != spec.canonical():
                raise CampaignError(
                    f"{root} already holds a different campaign "
                    f"({on_disk.get('name')!r}); use a fresh directory"
                )
        else:
            write_spec(spec_path, spec.to_dict())
        journal = Journal(root / "journal.jsonl")
        if store is None:
            store = ResultStore(root / "cache")
    if store is None:
        store = ResultStore(None)
    if resume and journal is None:
        raise CampaignError("resume requires a campaign_dir")

    tracer = get_tracer()
    outcome = None
    span = tracer.begin("campaign.run", category="campaign", track="campaign",
                        campaign=spec.name) if tracer.enabled else None
    try:
        outcome = _run(spec, store, workers, timeout, retries, journal, resume,
                       progress, batch)
    finally:
        if span is not None:
            if outcome is not None:
                span.set_attribute("tasks", outcome.stats.planned)
                span.set_attribute("executed", outcome.stats.executed)
                span.set_attribute("cache_hits", outcome.stats.cache_hits)
            tracer.end()
    return outcome


def _run(spec, store, workers, timeout, retries, journal, resume, progress,
         batch=True):
    """The executor body (directory/span plumbing handled by the caller)."""
    plan = plan_campaign(spec)
    outcome = CampaignOutcome(spec=spec, plan=plan)
    outcome.stats.planned = len(plan.tasks)

    journaled: dict[str, dict] = {}
    if resume and journal is not None:
        journaled = journal.completed_ids()

    def finish(task: PointTask, result: PointResult,
               journal_new: bool = True) -> None:
        _record(outcome, store, journal, task, result, journal_new)
        if progress is not None:
            progress(task, result)

    tracer = get_tracer()
    pool: ProcessPoolExecutor | None = None
    try:
        span = tracer.begin("campaign.execute", category="campaign",
                            track="campaign") if tracer.enabled else None
        try:
            for wave in _all_waves(plan):
                to_run: list[PointTask] = []
                for task in wave:
                    if task.pruned is not None:
                        outcome.stats.pruned += 1
                        finish(task, PointResult(
                            task_id=task.task_id, point=task.point, status=NA,
                            error=task.pruned, attempts=0,
                        ), journal_new=task.task_id not in journaled)
                        continue
                    if task.task_id in journaled:
                        entry = journaled[task.task_id]
                        cached = store.result_for(task.task_id, task.point)
                        if cached is not None:
                            outcome.stats.journal_hits += 1
                            finish(task, cached, journal_new=False)
                            continue
                        if entry["status"] == NA:
                            # N/A needs no cache object to be trustworthy.
                            outcome.stats.journal_hits += 1
                            finish(task, PointResult(
                                task_id=task.task_id, point=task.point,
                                status=NA, error=entry.get("error"),
                                cached=True, attempts=0,
                            ), journal_new=False)
                            continue
                        # Journaled but evicted from cache: recompute.
                    cached = store.result_for(task.task_id, task.point)
                    if cached is not None:
                        outcome.stats.cache_hits += 1
                        finish(task, cached)
                        continue
                    to_run.append(task)
                if not to_run:
                    continue
                if workers >= 2:
                    if pool is None:
                        pool = ProcessPoolExecutor(max_workers=workers)
                    run_pool = _execute_pool_batch if batch else _execute_pool
                    payloads = run_pool(to_run, pool, timeout, retries)
                else:
                    run_serial = _execute_serial_batch if batch else _execute_serial
                    payloads = run_serial(to_run, retries)
                for task in to_run:
                    payload = payloads[task.task_id]
                    outcome.stats.executed += 1
                    if payload["status"] == FAILED:
                        outcome.stats.failed += 1
                    finish(task, PointResult(
                        task_id=task.task_id, point=task.point,
                        status=payload["status"], seconds=payload["seconds"],
                        error=payload["error"],
                        attempts=payload.get("attempts", 1),
                        wall_ms=payload.get("wall_ms"),
                    ))
        finally:
            if span is not None:
                tracer.end()
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    return outcome


def load_campaign(campaign_dir: str | os.PathLike,
                  store: ResultStore | None = None) -> CampaignOutcome:
    """Reconstruct a campaign's outcome from disk without executing.

    Re-plans from ``spec.json`` (deterministic, so task ids line up),
    then fills in whatever the journal and cache already hold: pruned
    tasks, journaled N/As, and cached results. Tasks with no terminal
    record stay absent from ``outcome.results`` -- that's the pending
    set a ``resume`` would run.
    """
    root = Path(campaign_dir)
    spec = CampaignSpec.from_dict(read_spec(root / "spec.json"))
    if store is None:
        store = ResultStore(root / "cache")
    plan = plan_campaign(spec)
    outcome = CampaignOutcome(spec=spec, plan=plan)
    outcome.stats.planned = len(plan.tasks)
    journaled = Journal(root / "journal.jsonl").completed_ids()
    for task in plan.tasks:
        if task.pruned is not None:
            outcome.stats.pruned += 1
            outcome.results[task.task_id] = PointResult(
                task_id=task.task_id, point=task.point, status=NA,
                error=task.pruned, attempts=0,
            )
            continue
        cached = store.result_for(task.task_id, task.point)
        if cached is not None:
            outcome.stats.cache_hits += 1
            outcome.results[task.task_id] = cached
            continue
        entry = journaled.get(task.task_id)
        if entry is not None and entry["status"] == NA:
            outcome.stats.journal_hits += 1
            outcome.results[task.task_id] = PointResult(
                task_id=task.task_id, point=task.point, status=NA,
                error=entry.get("error"), cached=True, attempts=0,
            )
    return outcome


def _all_waves(plan: CampaignPlan):
    """Pruned tasks first (cheap N/A records), then the plan's waves."""
    pruned = tuple(plan.pruned)
    if pruned:
        yield pruned
    yield from plan.waves()
