"""Campaign executor: run planned points on a process pool, cached.

The simulator is deterministic and CPU-bound, so unlike most Python
workloads a :class:`~concurrent.futures.ProcessPoolExecutor` buys real
wall-clock speedup: each worker process costs points independently and
ships back a tiny ``{status, seconds, error}`` dict. The executor walks
the plan's topological waves (shared baselines first, then measures),
and for every task:

1. serves it from the content-addressed store when the (point, model
   fingerprint) key is present -- a *cache hit* span, zero simulator
   invocations;
2. otherwise executes it (inline for ``workers <= 1``, on the pool
   otherwise) with a per-task timeout and bounded retry -- a *cache
   miss* span whose duration is the point's simulated seconds;
3. journals the terminal outcome, making an interrupted campaign
   resumable: ``resume=True`` re-plans deterministically and skips every
   task the journal already holds.

By default each wave is submitted *whole*: eligible points are fused
into one ``repro.sim.wave`` struct-of-arrays program (serial mode) or
into one balanced shard per worker (pool mode) via
:func:`execute_wave`, with shared baselines -- execution contexts,
chunk->thread layouts, NUMA node maps -- computed once per wave instead
of once per point. ``wave=False`` (CLI ``--no-wave``) falls back to
curve-at-a-time batch submission, and ``batch=False`` (``--no-batch``)
to the scalar per-point path; all three produce bit-identical results
(enforced by ``tools/diffcheck.py``), and retries always degrade to the
scalar path regardless of how the first attempt was submitted.

Failures degrade gracefully: a point that raises (or times out) after
its retries is recorded as ``failed`` with its error string and the
campaign carries on -- one bad cell never aborts a 90-cell grid.
Retries space themselves out under a configurable
:class:`BackoffPolicy` (exponential, seeded jitter), a broken process
pool (a worker SIGKILLed mid-wave) is rebuilt and its in-flight tasks
re-queued (``pool.rebuild`` trace spans, bounded by
:data:`MAX_POOL_REBUILDS`), and the whole pipeline can be driven under
a deterministic :class:`~repro.faults.FaultPlan` via
``run_campaign(faults=...)`` -- see docs/ROBUSTNESS.md for the fault
model and the invariants the chaos suite enforces.
"""

from __future__ import annotations

import hashlib
import os
import time
from functools import lru_cache
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.backends import get_backend
from repro.campaign.plan import CampaignPlan, PointTask, plan_campaign
from repro.campaign.spec import CampaignSpec, PointSpec
from repro.campaign.store import (
    DONE,
    FAILED,
    NA,
    Journal,
    PointResult,
    ResultStore,
    read_spec,
    write_spec,
)
from repro.errors import CampaignError, ReproError, UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.faults import (
    FaultInjector,
    FaultPlan,
    faulty_curve,
    faulty_point,
    faulty_wave,
)
from repro.machines import get_machine
from repro.memory.allocators import (
    DefaultAllocator,
    HpxNumaAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
)
from repro.suite.cases import get_case
from repro.suite.wrappers import run_case
from repro.trace import get_tracer

__all__ = [
    "BackoffPolicy",
    "CampaignOutcome",
    "CampaignStats",
    "run_campaign",
    "load_campaign",
    "execute_point",
    "execute_curve",
    "execute_wave",
    "point_context",
    "MAX_POOL_REBUILDS",
]

#: Named allocators a point may request (None = backend default).
_ALLOCATORS: Mapping[str, Callable] = {
    "default": DefaultAllocator,
    "first-touch": ParallelFirstTouchAllocator,
    "hpx": HpxNumaAllocator,
    "interleaved": InterleavedAllocator,
}

#: How many times one wave may rebuild a broken process pool before its
#: remaining tasks are failed outright. A pool that keeps breaking is a
#: systematically crashing workload (or a hostile fault schedule), not a
#: transient; the bound keeps the executor from thrashing forever.
MAX_POOL_REBUILDS = 8


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry spacing: exponential backoff with deterministic seeded jitter.

    Attempt ``k`` (1-based count of failures so far) sleeps
    ``min(max_delay, base * factor**(k-1))``, scaled by a jitter factor
    in ``[1-jitter, 1+jitter]`` drawn as a pure hash of
    ``(seed, task_id, k)`` -- the same task retries with the same
    spacing on every run, so chaos tests stay reproducible while
    distinct tasks still de-correlate. The default ``base=0`` sleeps
    nothing, preserving the fast-path behavior for tests and grids
    whose failures are not time-correlated.
    """

    base: float = 0.0
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise CampaignError("backoff base must be non-negative")
        if self.factor < 1:
            raise CampaignError("backoff factor must be >= 1")
        if self.max_delay < 0:
            raise CampaignError("backoff max_delay must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise CampaignError("backoff jitter must be in [0, 1]")

    def delay(self, task_id: str, attempt: int) -> float:
        """Seconds to wait before re-running ``task_id``'s next attempt."""
        if self.base <= 0 or attempt < 1:
            return 0.0
        raw = min(self.max_delay, self.base * self.factor ** (attempt - 1))
        if self.jitter:
            digest = hashlib.sha256(
                f"{self.seed}|{task_id}|{attempt}".encode()
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return raw

    def sleep(self, task_id: str, attempt: int) -> float:
        """Sleep :meth:`delay` seconds (if any); returns the delay slept."""
        d = self.delay(task_id, attempt)
        if d > 0:
            time.sleep(d)
        return d


#: The do-nothing default policy (zero delays).
_NO_BACKOFF = BackoffPolicy()


def point_context(point: PointSpec) -> ExecutionContext:
    """Build the execution context one point describes."""
    machine = get_machine(point.machine)
    backend = get_backend(point.backend)
    threads = 1 if backend.is_sequential else point.threads
    allocator = None
    if point.allocator is not None:
        allocator = _ALLOCATORS[point.allocator]()
    return ExecutionContext(
        machine, backend, threads=threads, allocator=allocator, mode=point.mode
    )


def execute_point(payload: dict) -> dict:
    """Cost one point; the process-pool worker entry (module-level, picklable).

    Returns the ``{status, seconds, error}`` payload plus ``wall_ms``,
    the real wall-clock the evaluation took (journaled, never cached).
    Capability gaps surface as ``na`` (the paper's N/A cells); any other
    failure -- model bug, bad spec value -- becomes ``failed`` with the
    error text, never an exception that would poison the pool.
    """
    t0 = time.perf_counter()
    try:
        point = PointSpec.from_dict(payload)
        ctx = point_context(point)
        result = run_case(
            get_case(point.case), ctx, point.n, min_time=point.min_time
        )
        out = {"status": DONE, "seconds": result.mean_time, "error": None}
    except UnsupportedOperationError as exc:
        out = {"status": NA, "seconds": None, "error": str(exc)}
    except ReproError as exc:
        out = {"status": FAILED, "seconds": None,
               "error": f"{type(exc).__name__}: {exc}"}
    except Exception as exc:  # noqa: BLE001 - worker boundary, degrade gracefully
        out = {"status": FAILED, "seconds": None,
               "error": f"{type(exc).__name__}: {exc}"}
    out["wall_ms"] = (time.perf_counter() - t0) * 1000.0
    return out


def _curve_key(task: PointTask) -> tuple:
    """Grouping key: points of one sweep curve share this tuple."""
    point = task.point
    return (point.machine, point.backend, point.case, point.allocator, point.mode)


def _group_curves(tasks: list[PointTask]) -> list[list[PointTask]]:
    """Split a wave into curves (shared machine/backend/case/allocator/mode)."""
    groups: dict[tuple, list[PointTask]] = {}
    for task in tasks:
        groups.setdefault(_curve_key(task), []).append(task)
    return list(groups.values())


def execute_curve(payloads: list[dict]) -> list[dict]:
    """Cost a curve of points sharing (machine, backend, case, allocator, mode).

    The batch counterpart of :func:`execute_point` and, like it, a
    module-level picklable pool-worker entry: one submission covers a
    whole sweep curve instead of one cell. Each point goes through the
    vectorized ``repro.sim.batch`` path when eligible (model mode,
    ``min_time == 0``, a :data:`~repro.suite.batch.BATCH_CASES` case) and
    falls back to the scalar :func:`execute_point` otherwise; both paths
    return bit-identical seconds, so cached results stay coherent across
    paths. Returns one payload per input, in order. When tracing is
    enabled (serial in-process execution), one ``sim.batch`` span is
    recorded per curve.
    """
    from repro.suite.batch import BATCH_TRACK, batch_supported, measure_case_batch

    out: list[dict] = []
    batch_total = 0.0
    batch_points = 0
    first = None
    for payload in payloads:
        t0 = time.perf_counter()
        try:
            point = PointSpec.from_dict(payload)
            ctx = point_context(point)
            if point.min_time == 0.0 and batch_supported(point.case, ctx):
                first = first or point
                seconds = measure_case_batch(point.case, ctx, point.n)
                batch_total += seconds
                batch_points += 1
                out.append({"status": DONE, "seconds": seconds, "error": None})
            else:
                out.append(execute_point(payload))
                continue  # execute_point stamped its own wall_ms
        except UnsupportedOperationError as exc:
            out.append({"status": NA, "seconds": None, "error": str(exc)})
        except ReproError as exc:
            out.append({"status": FAILED, "seconds": None,
                        "error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:  # noqa: BLE001 - worker boundary
            out.append({"status": FAILED, "seconds": None,
                        "error": f"{type(exc).__name__}: {exc}"})
        out[-1]["wall_ms"] = (time.perf_counter() - t0) * 1000.0
    tracer = get_tracer()
    if tracer.enabled and batch_points:
        tracer.record(
            "sim.batch", batch_total, category="batch", track=BATCH_TRACK,
            machine=first.machine, backend=first.backend, case=first.case,
            points=batch_points,
        )
    return out


@lru_cache(maxsize=4096)
def _cached_context(machine, backend, threads: int,
                    allocator: str | None, mode: str) -> ExecutionContext:
    """Memoized :func:`point_context` by value (wave path only).

    A campaign wave holds many points per (machine, backend, threads,
    allocator, mode) cell; the scalar and per-curve paths rebuild the
    context for every point, which profiling shows is a real share of
    warm grid time. Contexts are frozen and allocators are stateless
    policy objects, so sharing one instance across points is safe. Only
    the wave path uses this cache -- the per-curve batch path keeps its
    per-point construction so benchmark comparisons stay honest.

    Keyed by the *resolved* machine and backend objects (frozen, value-
    hashable dataclasses), never by registry name: if the model under a
    name changes -- a perturbation test, a custom registration -- the
    key changes with it, so a stale context can never be served.
    """
    alloc = _ALLOCATORS[allocator]() if allocator is not None else None
    return ExecutionContext(
        machine, backend, threads=1 if backend.is_sequential else threads,
        allocator=alloc, mode=mode,
    )


@lru_cache(maxsize=8192)
def _cached_profile(machine, backend, threads: int,
                    allocator: str | None, mode: str, case: str, n: int):
    """Memoized :func:`~repro.suite.batch.build_array_profile` (wave path).

    The other shared baseline: an :class:`ArrayProfile` is a frozen,
    deterministic function of the cell key, is only ever read by the
    engines, and is small (its arrays scale with chunk count, not
    problem size), so fused waves can share one instance per cell --
    across waves and across campaign re-runs -- instead of rebuilding
    the chunk grid per point. Like :func:`_cached_context` (and keyed
    the same way, by resolved model objects), this is deliberately
    wave-only.
    """
    from repro.suite.batch import build_array_profile

    ctx = _cached_context(machine, backend, threads, allocator, mode)
    return build_array_profile(case, ctx, n)


def execute_wave(payloads: list[dict]) -> list[dict]:
    """Cost a whole campaign wave as one fused array program.

    The wave counterpart of :func:`execute_curve` and, like it, a
    module-level picklable pool-worker entry: one submission covers an
    arbitrary mix of points -- different machines, backends and cases
    fused into a single ``repro.sim.wave`` struct-of-arrays program with
    shared baselines (contexts, chunk->thread layouts, NUMA node maps)
    computed once. Points the fused path cannot serve (``min_time > 0``,
    GPU/run-mode contexts, cases outside the batch set) fall back to the
    scalar :func:`execute_point` per point, and any unexpected fused-stage
    failure degrades the whole group the same way -- so the wave path
    never fails a point the scalar path could cost. Returns one payload
    per input, in order, each stamped with ``wall_ms``. Seconds are
    bit-identical to both the per-curve batch path and the scalar path
    (``tools/diffcheck.py`` enforces the three-way identity).
    """
    from repro.sim.wave import WaveEntry, fuse_wave, simulate_wave
    from repro.suite.batch import batch_supported

    out: list[dict | None] = [None] * len(payloads)
    fused: list[tuple[int, WaveEntry]] = []
    parse_wall: dict[int, float] = {}
    # Registry factories build a fresh model per call; resolve each
    # (machine, backend) name pair once per wave, not once per point.
    # The memo lives only for this call, so a re-registered model is
    # still picked up by the next wave.
    resolved: dict[tuple[str, str], tuple] = {}
    for i, payload in enumerate(payloads):
        t0 = time.perf_counter()
        try:
            point = PointSpec.from_dict(payload)
            if point.min_time != 0.0:
                out[i] = execute_point(payload)
                continue
            names = (point.machine, point.backend)
            models = resolved.get(names)
            if models is None:
                models = resolved[names] = (get_machine(point.machine),
                                            get_backend(point.backend))
            machine, backend = models
            ctx = _cached_context(machine, backend, point.threads,
                                  point.allocator, point.mode)
            if not batch_supported(point.case, ctx):
                out[i] = execute_point(payload)
                continue
            profile = _cached_profile(machine, backend, point.threads,
                                      point.allocator, point.mode,
                                      point.case, point.n)
            fused.append((i, WaveEntry(ctx.machine, ctx.backend, profile)))
            parse_wall[i] = (time.perf_counter() - t0) * 1000.0
        except UnsupportedOperationError as exc:
            out[i] = {"status": NA, "seconds": None, "error": str(exc),
                      "wall_ms": (time.perf_counter() - t0) * 1000.0}
        except ReproError as exc:
            out[i] = {"status": FAILED, "seconds": None,
                      "error": f"{type(exc).__name__}: {exc}",
                      "wall_ms": (time.perf_counter() - t0) * 1000.0}
        except Exception as exc:  # noqa: BLE001 - worker boundary
            out[i] = {"status": FAILED, "seconds": None,
                      "error": f"{type(exc).__name__}: {exc}",
                      "wall_ms": (time.perf_counter() - t0) * 1000.0}
    if fused:
        try:
            t_fuse = time.perf_counter()
            reports = simulate_wave(fuse_wave([entry for _, entry in fused]))
            shared = (time.perf_counter() - t_fuse) * 1000.0 / len(fused)
            for (i, _entry), report in zip(fused, reports):
                out[i] = {"status": DONE, "seconds": report.seconds,
                          "error": None, "wall_ms": parse_wall[i] + shared}
        except Exception:  # noqa: BLE001 - degrade to per-point scalar
            for i, _entry in fused:
                out[i] = execute_point(payloads[i])
    return out


@dataclass
class CampaignStats:
    """Counters describing where one run's results came from."""

    planned: int = 0
    pruned: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    executed: int = 0
    failed: int = 0
    #: Of ``executed``, how many were computed by remote executors and
    #: landed via segment ingest (their store writes happened at the
    #: coordinator's ingest path, not in this process).
    remote: int = 0
    quarantined: int = 0
    faults_injected: int = 0
    pool_rebuilds: int = 0
    #: True when a ``should_stop`` drain request ended the run between
    #: waves; every recorded result is still durable and a ``resume``
    #: picks up exactly the remaining tasks.
    drained: bool = False

    def summary(self) -> str:
        """One-line human summary (degradation counters only when nonzero)."""
        line = (
            f"{self.planned} tasks: {self.pruned} pruned N/A, "
            f"{self.journal_hits} from journal, {self.cache_hits} cache hits, "
            f"{self.executed} executed, {self.failed} failed"
        )
        extras = [
            f"{value} {label}"
            for label, value in (
                ("remote", self.remote),
                ("quarantined", self.quarantined),
                ("faults injected", self.faults_injected),
                ("pool rebuilds", self.pool_rebuilds),
            )
            if value
        ]
        if self.drained:
            extras.append("drained")
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    plan: CampaignPlan
    results: dict[str, PointResult] = field(default_factory=dict)
    stats: CampaignStats = field(default_factory=CampaignStats)

    def result_for(self, task: PointTask) -> PointResult | None:
        """The result recorded for ``task`` (None only after a crash)."""
        return self.results.get(task.task_id)

    def seconds(self, task_id: str) -> float | None:
        """Simulated seconds of a done task, else None."""
        result = self.results.get(task_id)
        return result.seconds if result is not None and result.status == DONE else None


def _trace_point(task: PointTask, result: PointResult) -> None:
    """Emit one cache-hit/cache-miss span for a finished task."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    if task.pruned is not None:
        name = "pruned"
    elif result.cached:
        name = "cache-hit"
    else:
        name = "cache-miss"
    duration = 0.0
    if not result.cached and result.seconds is not None:
        duration = result.seconds
        tracer.advance(duration)
        start = tracer.clock - duration
    else:
        start = tracer.clock
    tracer.record(
        name, duration, category="campaign", track="campaign", start=start,
        task=task.task_id, kind=task.kind, status=result.status,
        machine=task.point.machine, backend=task.point.backend,
        case=task.point.case, n=task.point.n, threads=task.point.threads,
    )


def _record(outcome: CampaignOutcome, store: ResultStore, journal: Journal | None,
            task: PointTask, result: PointResult,
            journal_new: bool = True,
            injector: FaultInjector | None = None,
            persist: bool = True) -> None:
    """Finalize one task: cache it, journal it, trace it, count it.

    ``journal_new=False`` marks a result that was *reconstructed from* the
    journal (a resume's journal hit): it is already durable, so appending
    it again would only grow the journal with duplicate terminal rows on
    every resume. ``persist=False`` marks a result whose store write
    already happened elsewhere -- a remote executor's row landed by the
    coordinator's segment ingest -- so the local put is skipped (the
    journal entry still lands here, keeping the journal the single
    task-completion log either way). When an ``injector`` is active, the
    cache publish and journal append are its two storage-side injection
    surfaces.
    """
    outcome.results[task.task_id] = result
    key = None
    if persist and result.status != FAILED and not result.cached \
            and task.pruned is None:
        key = store.put(task.point, result.payload(), wall_ms=result.wall_ms)
        if injector is not None:
            injector.after_put(store, key)
    elif task.pruned is None:
        key = store.key_for(task.point)
    if journal is not None and journal_new:
        journal.append({
            "task_id": task.task_id,
            "status": result.status,
            "key": key,
            "seconds": result.seconds,
            "error": result.error,
            "cached": result.cached,
            "wall_ms": result.wall_ms,
        })
        if injector is not None:
            injector.after_journal(journal, task.task_id)
    _trace_point(task, result)


def _injected_failure(site: str) -> dict:
    """The payload an inline (serial) injected worker fault settles to."""
    return {
        "status": FAILED, "seconds": None,
        "error": f"InjectedFaultError: injected {site}",
        "wall_ms": 0.0,
    }


def _execute_serial(tasks: list[PointTask], retries: int,
                    injector: FaultInjector | None = None,
                    backoff: BackoffPolicy = _NO_BACKOFF) -> dict[str, dict]:
    """Run tasks inline (workers <= 1); returns task_id -> payload."""
    out: dict[str, dict] = {}
    for task in tasks:
        payload = _serial_attempt(task, injector)
        attempt = 0
        while payload["status"] == FAILED and attempt < retries:
            attempt += 1
            backoff.sleep(task.task_id, attempt)
            payload = _serial_attempt(task, injector)
        payload["attempts"] = attempt + 1
        out[task.task_id] = payload
    return out


def _serial_attempt(task: PointTask,
                    injector: FaultInjector | None) -> dict:
    """One inline execution of ``task``, under the injector if active."""
    if injector is not None:
        site = injector.claim_worker_fault(task.task_id, pool=False)
        if site is not None:
            return _injected_failure(site)
    return execute_point(task.point.to_dict())


def _execute_serial_batch(tasks: list[PointTask], retries: int,
                          injector: FaultInjector | None = None,
                          backoff: BackoffPolicy = _NO_BACKOFF) -> dict[str, dict]:
    """Serial curve-at-a-time execution; failed points retry scalar.

    An injected worker fault poisons the whole curve -- the same blast
    radius a crashed pool worker has -- and every point of it then
    retries through the scalar path.
    """
    out: dict[str, dict] = {}
    for group in _group_curves(tasks):
        poisoned = None
        if injector is not None:
            for t in group:
                poisoned = injector.claim_worker_fault(t.task_id, pool=False)
                if poisoned is not None:
                    break
        if poisoned is not None:
            results = [_injected_failure(poisoned) for _ in group]
        else:
            results = execute_curve([t.point.to_dict() for t in group])
        for task, payload in zip(group, results):
            attempt = 0
            while payload["status"] == FAILED and attempt < retries:
                attempt += 1
                backoff.sleep(task.task_id, attempt)
                payload = execute_point(task.point.to_dict())
            payload["attempts"] = attempt + 1
            out[task.task_id] = payload
    return out


def _execute_serial_wave(tasks: list[PointTask], retries: int,
                         injector: FaultInjector | None = None,
                         backoff: BackoffPolicy = _NO_BACKOFF) -> dict[str, dict]:
    """Serial wave-at-a-time execution; failed points retry scalar.

    An injected worker fault poisons the whole wave -- the blast radius
    a crashed worker running a fused wave shard would have -- and every
    point of it then retries through the scalar path.
    """
    out: dict[str, dict] = {}
    poisoned = None
    if injector is not None:
        for t in tasks:
            poisoned = injector.claim_worker_fault(t.task_id, pool=False)
            if poisoned is not None:
                break
    if poisoned is not None:
        results = [_injected_failure(poisoned) for _ in tasks]
    else:
        results = execute_wave([t.point.to_dict() for t in tasks])
    for task, payload in zip(tasks, results):
        attempt = 0
        while payload["status"] == FAILED and attempt < retries:
            attempt += 1
            backoff.sleep(task.task_id, attempt)
            payload = execute_point(task.point.to_dict())
        payload["attempts"] = attempt + 1
        out[task.task_id] = payload
    return out


def _shard_wave(tasks: list[PointTask], shards: int) -> list[list[PointTask]]:
    """Split a wave into up to ``shards`` balanced contiguous shards."""
    count = max(1, min(shards, len(tasks)))
    bounds = [len(tasks) * i // count for i in range(count + 1)]
    return [
        tasks[bounds[i]:bounds[i + 1]]
        for i in range(count)
        if bounds[i] < bounds[i + 1]
    ]


class _PoolHandle:
    """A rebuildable process pool: survives ``BrokenProcessPool``.

    Wraps lazy construction, shutdown, and the rebuild that recovery
    from a killed worker requires -- the executor loop swaps pools
    through this one handle so the final ``shutdown`` always reaches
    whichever pool is current. Each rebuild is counted and emits a
    ``pool.rebuild`` trace span.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self.pool: ProcessPoolExecutor | None = None
        self.rebuilds = 0

    def get(self) -> ProcessPoolExecutor:
        """The current pool, created on first use."""
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=self.workers)
        return self.pool

    def rebuild(self) -> ProcessPoolExecutor:
        """Discard the broken pool and stand up a fresh one."""
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        self.rebuilds += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("pool.rebuild", 0.0, category="campaign",
                          track="campaign", rebuilds=self.rebuilds)
        return self.pool

    def shutdown(self) -> None:
        """Tear down whichever pool is current (idempotent)."""
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None


def _tasks_of(val: list[PointTask] | PointTask) -> list[PointTask]:
    """Normalise a pending-map value (curve group or single task) to a list."""
    return val if isinstance(val, list) else [val]


def _run_pool(tasks: list[PointTask], pool, timeout: float | None, retries: int,
              *, batch: bool = True, wave: bool = False, shards: int = 1,
              injector: FaultInjector | None = None,
              backoff: BackoffPolicy = _NO_BACKOFF) -> dict[str, dict]:
    """The pool engine: submission, timeout, bounded retry, pool rebuild.

    ``pool`` is either a ready executor (tests drive this directly with
    a thread pool) or a :class:`_PoolHandle`, which additionally enables
    recovery from ``BrokenProcessPool``: the broken pool is rebuilt (up
    to :data:`MAX_POOL_REBUILDS` times per wave) and every in-flight
    task re-queued. A task whose worker was *deliberately* killed by the
    fault injector consumes one retry for it; innocent bystanders are
    re-queued free of charge, since they never actually ran.

    A wait window in which nothing completes means every in-flight task
    has exceeded the per-task ``timeout``: each one is cancelled and
    either retried (budget permitting, through the scalar path) or
    failed -- a hung worker therefore costs one attempt, not the wave.
    """
    handle = pool if isinstance(pool, _PoolHandle) else None
    out: dict[str, dict] = {}
    attempts: dict[str, int] = {t.task_id: 1 for t in tasks}
    pending: dict[Future, list[PointTask] | PointTask] = {}
    requeue: list[list[PointTask] | PointTask] = []

    def _submit(fn, *args) -> Future | None:
        executor = handle.get() if handle is not None else pool
        try:
            return executor.submit(fn, *args)
        except BrokenExecutor:
            return None  # caller re-queues; the wait loop rebuilds

    def submit_task(task: PointTask) -> None:
        directive = injector.claim_worker_fault(task.task_id) if injector else None
        if directive is not None:
            fut = _submit(faulty_point, task.point.to_dict(), directive,
                          injector.plan.hang_seconds)
        else:
            fut = _submit(execute_point, task.point.to_dict())
        if fut is None:
            requeue.append(task)
        else:
            pending[fut] = task

    def submit_group(group: list[PointTask]) -> None:
        payloads = [t.point.to_dict() for t in group]
        directives = ([injector.claim_worker_fault(t.task_id) for t in group]
                      if injector else [])
        if any(directives):
            fut = _submit(faulty_curve, payloads, directives,
                          injector.plan.hang_seconds)
        else:
            fut = _submit(execute_curve, payloads)
        if fut is None:
            requeue.append(list(group))
        else:
            pending[fut] = list(group)

    def submit_wave(group: list[PointTask]) -> None:
        payloads = [t.point.to_dict() for t in group]
        directives = ([injector.claim_worker_fault(t.task_id) for t in group]
                      if injector else [])
        if any(directives):
            fut = _submit(faulty_wave, payloads, directives,
                          injector.plan.hang_seconds)
        else:
            fut = _submit(execute_wave, payloads)
        if fut is None:
            requeue.append(list(group))
        else:
            pending[fut] = list(group)

    def settle(task: PointTask, payload: dict) -> None:
        """Retry a failed payload while budget lasts, else record it."""
        if payload["status"] == FAILED and attempts[task.task_id] <= retries:
            failed_attempt = attempts[task.task_id]
            attempts[task.task_id] += 1
            backoff.sleep(task.task_id, failed_attempt)
            submit_task(task)  # retries always go through the scalar path
            return
        payload["attempts"] = attempts[task.task_id]
        out[task.task_id] = payload

    def fail_outright(task: PointTask, error: str) -> None:
        out[task.task_id] = {
            "status": FAILED, "seconds": None, "error": error,
            "attempts": attempts[task.task_id],
        }

    if wave:
        for shard in _shard_wave(tasks, shards):
            submit_wave(shard)
    elif batch:
        for group in _group_curves(tasks):
            submit_group(group)
    else:
        for task in tasks:
            submit_task(task)

    while pending or requeue:
        if pending:
            finished, _ = wait(pending, timeout=timeout,
                               return_when=FIRST_COMPLETED)
            if not finished:
                # Nothing completed within the per-task budget: every
                # in-flight task has now waited >= timeout. Cancel and
                # retry-or-fail each one individually.
                stalled = list(pending.items())
                pending.clear()
                for fut, val in stalled:
                    fut.cancel()
                    for task in _tasks_of(val):
                        settle(task, {
                            "status": FAILED, "seconds": None,
                            "error": f"timeout after {timeout:g}s",
                        })
                continue
            for fut in finished:
                val = pending.pop(fut)
                exc = fut.exception()
                if isinstance(exc, BrokenExecutor):
                    requeue.append(val)
                    continue
                group = _tasks_of(val)
                if exc is not None:
                    payloads = [
                        {"status": FAILED, "seconds": None,
                         "error": f"{type(exc).__name__}: {exc}"}
                        for _ in group
                    ]
                else:
                    result = fut.result()
                    payloads = result if isinstance(val, list) else [result]
                for task, payload in zip(group, payloads):
                    settle(task, payload)
        if not requeue:
            continue
        # The pool broke under us: drain everything still in flight (those
        # futures are doomed too), rebuild once, and re-queue.
        for doomed in list(pending):
            requeue.append(pending.pop(doomed))
        affected, requeue = requeue, []
        can_rebuild = handle is not None and handle.rebuilds < MAX_POOL_REBUILDS
        if can_rebuild:
            handle.rebuild()
        for val in affected:
            for task in _tasks_of(val):
                if not can_rebuild:
                    fail_outright(
                        task, "process pool broke and could not be rebuilt"
                    )
                elif injector is not None and injector.was_killed(task.task_id):
                    # The injected kill was this task's doing: it costs
                    # one attempt, like any other failed execution.
                    settle(task, {
                        "status": FAILED, "seconds": None,
                        "error": "InjectedFaultError: injected worker_kill",
                    })
                else:
                    submit_task(task)  # never ran; re-queue free of charge
    return out


def _execute_pool(tasks: list[PointTask], pool, timeout: float | None,
                  retries: int, injector: FaultInjector | None = None,
                  backoff: BackoffPolicy = _NO_BACKOFF) -> dict[str, dict]:
    """Run one wave on the pool, one submission per point (scalar path)."""
    return _run_pool(tasks, pool, timeout, retries, batch=False,
                     injector=injector, backoff=backoff)


def _execute_pool_batch(tasks: list[PointTask], pool, timeout: float | None,
                        retries: int, injector: FaultInjector | None = None,
                        backoff: BackoffPolicy = _NO_BACKOFF) -> dict[str, dict]:
    """Pool execution with one submission per curve; retries are per-point.

    A curve future that fails or times out marks all its points; each
    failed point is then retried individually through the scalar
    :func:`execute_point` path (up to ``retries`` total re-executions),
    so one bad point never re-runs a whole curve.
    """
    return _run_pool(tasks, pool, timeout, retries, batch=True,
                     injector=injector, backoff=backoff)


def _execute_pool_wave(tasks: list[PointTask], pool, timeout: float | None,
                       retries: int, injector: FaultInjector | None = None,
                       backoff: BackoffPolicy = _NO_BACKOFF,
                       shards: int = 1) -> dict[str, dict]:
    """Pool execution submitting balanced wave shards; retries are per-point.

    The wave is split into up to ``shards`` contiguous shards (one per
    worker keeps the pool busy without starving fusion), each submitted
    through :func:`execute_wave`. A shard that fails, breaks its worker,
    or times out marks all its points; each failed point then retries
    individually through the scalar path, exactly like the curve mode.
    """
    return _run_pool(tasks, pool, timeout, retries, batch=True, wave=True,
                     shards=shards, injector=injector, backoff=backoff)


def run_campaign(
    spec: CampaignSpec,
    *,
    store: ResultStore | None = None,
    workers: int = 0,
    timeout: float | None = None,
    retries: int = 1,
    campaign_dir: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable[[PointTask, PointResult], None] | None = None,
    batch: bool = True,
    wave: bool = True,
    faults: FaultPlan | None = None,
    backoff: BackoffPolicy | None = None,
    should_stop: Callable[[], bool] | None = None,
    dispatch: Callable[[list[PointTask]], dict[str, dict] | None] | None = None,
) -> CampaignOutcome:
    """Plan and execute ``spec``; returns the full outcome.

    Parameters
    ----------
    store:
        Result cache; defaults to ``<campaign_dir>/cache`` when a
        directory is given, else an in-memory store.
    workers:
        Process-pool width. ``0``/``1`` executes inline in this process
        (deterministic, no fork) -- the right choice for tests and tiny
        grids; ``>= 2`` runs points concurrently.
    timeout:
        Per-task wall-clock budget in seconds (pool mode only); a point
        that exceeds it consumes one retry, and is recorded as failed
        once its budget is spent.
    retries:
        How many times a failed point is re-executed before its failure
        is journaled as terminal.
    campaign_dir:
        Run directory holding ``spec.json`` + ``journal.jsonl`` (and the
        default cache). Required for ``resume``.
    resume:
        Skip every task whose terminal entry the journal already holds,
        loading its result from the cache instead of recomputing.
    progress:
        Optional callback invoked with every (task, result) as recorded.
    batch:
        Execute points through the vectorized ``repro.sim.batch`` cost
        model (bit-identical seconds; failed points retry through the
        scalar path). ``False`` forces the scalar per-point path
        everywhere -- the ``--no-batch`` debugging mode -- and also
        disables wave fusion.
    wave:
        Fuse each wave's eligible points into one ``repro.sim.wave``
        struct-of-arrays program (serial) or into one balanced shard per
        worker (pool) instead of submitting per-curve tasks. Requires
        ``batch``; ``False`` falls back to curve-at-a-time submission --
        the ``--no-wave`` debugging mode. All three paths produce
        bit-identical seconds.
    faults:
        Optional deterministic :class:`~repro.faults.FaultPlan`; when
        given, a :class:`~repro.faults.FaultInjector` is threaded
        through submission, cache publish and journal append (chaos
        testing -- see docs/ROBUSTNESS.md). ``None`` injects nothing
        and costs nothing.
    backoff:
        Retry-spacing :class:`BackoffPolicy`; the default sleeps zero
        seconds between retries.
    should_stop:
        Optional drain predicate polled *between waves*: once it returns
        True, no further wave is submitted, the outcome is returned with
        ``stats.drained = True``, and every already-recorded result is
        durable (journaled) -- the graceful-shutdown hook the
        ``repro.service`` daemon uses on SIGTERM. A ``resume`` of the
        same directory executes exactly the remaining tasks.
    dispatch:
        Optional remote-execution hook (see :mod:`repro.remote`). Called
        once per wave with the cache-miss tasks; returns a complete
        ``task_id -> payload`` map, or None to decline the wave -- the
        wave then runs through the normal local paths, which is the
        graceful degradation when no remote executor is live. Payloads
        carrying ``"persisted": True`` already landed in the store via
        segment ingest, so only their journal entry is written here.
    """
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    if workers < 0:
        raise CampaignError("workers must be >= 0")
    journal: Journal | None = None
    if campaign_dir is not None:
        root = Path(campaign_dir)
        spec_path = root / "spec.json"
        if spec_path.exists():
            on_disk = read_spec(spec_path)
            if CampaignSpec.from_dict(on_disk).canonical() != spec.canonical():
                raise CampaignError(
                    f"{root} already holds a different campaign "
                    f"({on_disk.get('name')!r}); use a fresh directory"
                )
        else:
            write_spec(spec_path, spec.to_dict())
        journal = Journal(root / "journal.jsonl")
        if store is None:
            store = ResultStore(root / "cache")
    if store is None:
        store = ResultStore(None)
    if resume and journal is None:
        raise CampaignError("resume requires a campaign_dir")

    tracer = get_tracer()
    outcome = None
    span = tracer.begin("campaign.run", category="campaign", track="campaign",
                        campaign=spec.name) if tracer.enabled else None
    try:
        outcome = _run(spec, store, workers, timeout, retries, journal, resume,
                       progress, batch,
                       FaultInjector(faults) if faults is not None else None,
                       backoff if backoff is not None else _NO_BACKOFF,
                       wave, should_stop, dispatch)
    finally:
        if span is not None:
            if outcome is not None:
                span.set_attribute("tasks", outcome.stats.planned)
                span.set_attribute("executed", outcome.stats.executed)
                span.set_attribute("cache_hits", outcome.stats.cache_hits)
            tracer.end()
    return outcome


def _run(spec, store, workers, timeout, retries, journal, resume, progress,
         batch=True, injector=None, backoff=_NO_BACKOFF, wave=True,
         should_stop=None, dispatch=None):
    """The executor body (directory/span plumbing handled by the caller)."""
    use_wave = batch and wave  # the loop below rebinds ``wave`` to task groups
    plan = plan_campaign(spec)
    outcome = CampaignOutcome(spec=spec, plan=plan)
    outcome.stats.planned = len(plan.tasks)
    quarantined_before = store.quarantined

    journaled: dict[str, dict] = {}
    if resume and journal is not None:
        journaled = journal.completed_ids()

    def finish(task: PointTask, result: PointResult,
               journal_new: bool = True, persist: bool = True) -> None:
        _record(outcome, store, journal, task, result, journal_new, injector,
                persist)
        if progress is not None:
            progress(task, result)

    tracer = get_tracer()
    handle: _PoolHandle | None = None
    try:
        span = tracer.begin("campaign.execute", category="campaign",
                            track="campaign") if tracer.enabled else None
        try:
            for wave in _all_waves(plan):
                if should_stop is not None and should_stop():
                    # Graceful drain: everything recorded so far is
                    # journaled; the rest belongs to a future resume.
                    outcome.stats.drained = True
                    break
                to_run: list[PointTask] = []
                for task in wave:
                    if task.pruned is not None:
                        outcome.stats.pruned += 1
                        finish(task, PointResult(
                            task_id=task.task_id, point=task.point, status=NA,
                            error=task.pruned, attempts=0,
                        ), journal_new=task.task_id not in journaled)
                        continue
                    if task.task_id in journaled:
                        entry = journaled[task.task_id]
                        cached = store.result_for(task.task_id, task.point)
                        if cached is not None:
                            outcome.stats.journal_hits += 1
                            finish(task, cached, journal_new=False)
                            continue
                        if entry["status"] == NA:
                            # N/A needs no cache object to be trustworthy.
                            outcome.stats.journal_hits += 1
                            finish(task, PointResult(
                                task_id=task.task_id, point=task.point,
                                status=NA, error=entry.get("error"),
                                cached=True, attempts=0,
                            ), journal_new=False)
                            continue
                        # Journaled but evicted from cache (or quarantined
                        # as corrupt): recompute.
                    cached = store.result_for(task.task_id, task.point)
                    if cached is not None:
                        outcome.stats.cache_hits += 1
                        finish(task, cached)
                        continue
                    to_run.append(task)
                if not to_run:
                    continue
                payloads = None
                if dispatch is not None:
                    # Remote-first: offer the wave to live executors.
                    # ``None`` means no remote capacity (or the
                    # coordinator declined) -- fall through to the local
                    # paths, the graceful single-host degradation.
                    payloads = dispatch(to_run)
                if payloads is not None:
                    for task in to_run:
                        payload = payloads[task.task_id]
                        outcome.stats.executed += 1
                        persisted = bool(payload.get("persisted"))
                        if persisted:
                            outcome.stats.remote += 1
                        if payload["status"] == FAILED:
                            outcome.stats.failed += 1
                        finish(task, PointResult(
                            task_id=task.task_id, point=task.point,
                            status=payload["status"],
                            seconds=payload["seconds"],
                            error=payload["error"],
                            attempts=payload.get("attempts", 1),
                            wall_ms=payload.get("wall_ms"),
                        ), persist=not persisted)
                    continue
                if workers >= 2:
                    if handle is None:
                        handle = _PoolHandle(workers)
                    if use_wave:
                        payloads = _execute_pool_wave(
                            to_run, handle, timeout, retries,
                            injector=injector, backoff=backoff, shards=workers,
                        )
                    else:
                        run_pool = _execute_pool_batch if batch else _execute_pool
                        payloads = run_pool(to_run, handle, timeout, retries,
                                            injector=injector, backoff=backoff)
                else:
                    if use_wave:
                        run_serial = _execute_serial_wave
                    elif batch:
                        run_serial = _execute_serial_batch
                    else:
                        run_serial = _execute_serial
                    payloads = run_serial(to_run, retries, injector=injector,
                                          backoff=backoff)
                for task in to_run:
                    payload = payloads[task.task_id]
                    outcome.stats.executed += 1
                    if payload["status"] == FAILED:
                        outcome.stats.failed += 1
                    finish(task, PointResult(
                        task_id=task.task_id, point=task.point,
                        status=payload["status"], seconds=payload["seconds"],
                        error=payload["error"],
                        attempts=payload.get("attempts", 1),
                        wall_ms=payload.get("wall_ms"),
                    ))
        finally:
            if span is not None:
                tracer.end()
    finally:
        if handle is not None:
            outcome.stats.pool_rebuilds = handle.rebuilds
            handle.shutdown()
        outcome.stats.quarantined = store.quarantined - quarantined_before
        if injector is not None:
            outcome.stats.faults_injected = injector.total_injected
    return outcome


def load_campaign(campaign_dir: str | os.PathLike,
                  store: ResultStore | None = None) -> CampaignOutcome:
    """Reconstruct a campaign's outcome from disk without executing.

    Re-plans from ``spec.json`` (deterministic, so task ids line up),
    then fills in whatever the journal and cache already hold: pruned
    tasks, journaled N/As, and cached results. Tasks with no terminal
    record stay absent from ``outcome.results`` -- that's the pending
    set a ``resume`` would run.
    """
    root = Path(campaign_dir)
    spec = CampaignSpec.from_dict(read_spec(root / "spec.json"))
    if store is None:
        store = ResultStore(root / "cache")
    plan = plan_campaign(spec)
    outcome = CampaignOutcome(spec=spec, plan=plan)
    outcome.stats.planned = len(plan.tasks)
    journaled = Journal(root / "journal.jsonl").completed_ids()
    for task in plan.tasks:
        if task.pruned is not None:
            outcome.stats.pruned += 1
            outcome.results[task.task_id] = PointResult(
                task_id=task.task_id, point=task.point, status=NA,
                error=task.pruned, attempts=0,
            )
            continue
        cached = store.result_for(task.task_id, task.point)
        if cached is not None:
            outcome.stats.cache_hits += 1
            outcome.results[task.task_id] = cached
            continue
        entry = journaled.get(task.task_id)
        if entry is not None and entry["status"] == NA:
            outcome.stats.journal_hits += 1
            outcome.results[task.task_id] = PointResult(
                task_id=task.task_id, point=task.point, status=NA,
                error=entry.get("error"), cached=True, attempts=0,
            )
    return outcome


def _all_waves(plan: CampaignPlan):
    """Pruned tasks first (cheap N/A records), then the plan's waves."""
    pruned = tuple(plan.pruned)
    if pruned:
        yield pruned
    yield from plan.waves()
