"""Declarative campaign specifications.

A :class:`CampaignSpec` names the full cross product of a sweep --
machines x backends x cases x sizes x threads x allocators x modes --
the way pSTL-Bench's campaign runner takes one (compiler, backend) pair
and a benchmark list per invocation. The planner (`repro.campaign.plan`)
expands a spec into concrete :class:`PointSpec` tasks, pruning cells the
capability matrix marks N/A and deduplicating shared sequential
baselines.

Both classes serialise to canonical JSON (sorted keys, no whitespace
variance), which is what the content-addressed store hashes: the same
point always maps to the same cache key.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.errors import CampaignError

__all__ = ["PointSpec", "CampaignSpec", "canonical_json"]

#: Modes a point may execute in (DESIGN.md section 1).
_VALID_MODES = ("model", "run")

#: Allocator names a point may request (None = the backend's default).
ALLOCATOR_NAMES = ("default", "first-touch", "hpx", "interleaved")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class PointSpec:
    """One executable grid point: a single (machine, backend, case) run.

    ``threads`` is always a concrete integer here -- the planner resolves
    the spec-level ``None`` ("all cores") against the machine model before
    emitting points, so a point's identity (and therefore its cache key)
    is unambiguous.
    """

    machine: str
    backend: str
    case: str
    size_exp: int
    threads: int
    mode: str = "model"
    allocator: str | None = None
    min_time: float = 0.0

    def __post_init__(self) -> None:
        if self.size_exp < 0:
            raise CampaignError("size_exp must be non-negative")
        if self.threads < 1:
            raise CampaignError("threads must be >= 1")
        if self.mode not in _VALID_MODES:
            raise CampaignError(f"mode must be one of {_VALID_MODES}, got {self.mode!r}")
        if self.allocator is not None and self.allocator not in ALLOCATOR_NAMES:
            raise CampaignError(
                f"allocator must be one of {ALLOCATOR_NAMES} or None, "
                f"got {self.allocator!r}"
            )
        if self.min_time < 0:
            raise CampaignError("min_time must be non-negative")

    @property
    def n(self) -> int:
        """Problem size in elements (2^size_exp)."""
        return 1 << self.size_exp

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready).

        Spelled out rather than ``dataclasses.asdict`` -- every field is
        a scalar, and asdict's recursive deepcopy dominates the warm
        (all-cache-hit) campaign path, where this runs per task.
        """
        return {
            "machine": self.machine, "backend": self.backend,
            "case": self.case, "size_exp": self.size_exp,
            "threads": self.threads, "mode": self.mode,
            "allocator": self.allocator, "min_time": self.min_time,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], *,
                  ignore_unknown: bool = False) -> "PointSpec":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys are rejected by default (a mistyped spec should
        fail loudly); ``ignore_unknown=True`` drops them instead, for
        readers of *stored* records that may carry fields from a newer
        schema -- the store's integrity scan, for one.
        """
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known
        if extra and not ignore_unknown:
            raise CampaignError(f"unknown PointSpec fields: {sorted(extra)}")
        return cls(**{k: v for k, v in payload.items() if k in known})

    def canonical(self) -> str:
        """Canonical JSON identity (what the cache key hashes)."""
        return canonical_json(self.to_dict())


def _tuple_of(value, kind=None) -> tuple:
    """Normalise list-ish spec fields to tuples (frozen dataclass hygiene)."""
    out = tuple(value)
    if kind is not None:
        for item in out:
            if item is not None and not isinstance(item, kind):
                raise CampaignError(f"expected {kind.__name__} or None, got {item!r}")
    return out


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: the cross product the planner expands.

    ``threads`` entries may be ``None`` ("all cores of the machine") or a
    concrete count; counts larger than a machine's core total are skipped
    for that machine, so one spec can drive a strong-scaling sweep across
    machines of different widths. ``exclude`` lists (machine, backend)
    pairs that are unavailable -- the paper's "ICC was not installed on
    Mach B" -- and renders those cells N/A without running them.
    """

    name: str
    machines: tuple[str, ...]
    backends: tuple[str, ...]
    cases: tuple[str, ...]
    size_exps: tuple[int, ...] = (30,)
    threads: tuple[int | None, ...] = (None,)
    modes: tuple[str, ...] = ("model",)
    allocators: tuple[str | None, ...] = (None,)
    baseline_backend: str = "GCC-SEQ"
    exclude: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    min_time: float = 0.0

    def __post_init__(self) -> None:
        for name in ("machines", "backends", "cases", "size_exps", "threads",
                     "modes", "allocators"):
            object.__setattr__(self, name, _tuple_of(getattr(self, name)))
        object.__setattr__(
            self, "exclude", tuple(tuple(pair) for pair in self.exclude)
        )
        if not self.name:
            raise CampaignError("campaign needs a non-empty name")
        for name in ("machines", "backends", "cases", "size_exps", "threads",
                     "modes", "allocators"):
            if not getattr(self, name):
                raise CampaignError(f"campaign spec field {name!r} must be non-empty")
        for mode in self.modes:
            if mode not in _VALID_MODES:
                raise CampaignError(f"invalid mode {mode!r}")
        for exp in self.size_exps:
            if not isinstance(exp, int) or exp < 0:
                raise CampaignError(f"invalid size_exp {exp!r}")
        for t in self.threads:
            if t is not None and (not isinstance(t, int) or t < 1):
                raise CampaignError(f"invalid thread count {t!r}")
        for pair in self.exclude:
            if len(pair) != 2:
                raise CampaignError(f"exclude entries are (machine, backend) pairs, got {pair!r}")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready; exclude pairs become lists)."""
        payload = asdict(self)
        payload["exclude"] = [list(pair) for pair in self.exclude]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known
        if extra:
            raise CampaignError(f"unknown CampaignSpec fields: {sorted(extra)}")
        data = dict(payload)
        if "exclude" in data:
            data["exclude"] = tuple(tuple(pair) for pair in data["exclude"])
        for name in ("machines", "backends", "cases", "size_exps", "threads",
                     "modes", "allocators"):
            if name in data:
                data[name] = tuple(data[name])
        return cls(**data)

    def canonical(self) -> str:
        """Canonical JSON identity of the whole spec."""
        return canonical_json(self.to_dict())
