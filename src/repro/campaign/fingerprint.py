"""Model-version fingerprint: the cache-invalidation half of the store.

A cached result is only valid while the performance model that produced
it is unchanged. Rather than asking humans to bump a version constant on
every calibration tweak, the fingerprint hashes the *source text* of
every model-bearing subpackage (machines, backends, cost engine,
algorithms, memory, execution, suite) plus the package version. Any
edit to any of those files changes the fingerprint, which changes every
cache key, which transparently invalidates the entire cache -- stale
hits are structurally impossible.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from repro._version import __version__

__all__ = ["model_fingerprint", "MODEL_PACKAGES"]

#: Subpackages whose source participates in the fingerprint. These are
#: exactly the layers a simulated point's value depends on; docs, tests,
#: reporters and the campaign subsystem itself are deliberately outside.
MODEL_PACKAGES = (
    "algorithms",
    "backends",
    "execution",
    "machines",
    "memory",
    "sim",
    "suite",
    "types.py",
)


def _iter_sources(root: Path):
    """Yield (relative path, bytes) for every model source file, sorted."""
    for entry in MODEL_PACKAGES:
        path = root / entry
        if path.is_file():
            yield entry, path.read_bytes()
        else:
            for py in sorted(path.rglob("*.py")):
                yield str(py.relative_to(root)), py.read_bytes()


@lru_cache(maxsize=1)
def model_fingerprint() -> str:
    """Stable hex digest of (package version, model source files).

    Cached per process: the source tree does not change under a running
    campaign, and hashing ~100 files on every point would dominate small
    runs.
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    digest.update(f"repro=={__version__}".encode())
    for rel, data in _iter_sources(root):
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(data)
    return digest.hexdigest()[:20]
