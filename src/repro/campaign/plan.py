"""Campaign planner: spec -> deterministic DAG of point-tasks.

Expansion walks the spec's cross product in a fixed nested order
(machines, backends, cases, sizes, threads, modes, allocators), so the
same spec always yields the same task list with the same task ids --
the property resume and the append-only journal rely on.

Three things happen during expansion beyond the raw product:

* **capability pruning** -- cells the backend capability matrix marks
  unsupported (GNU has no parallel ``inclusive_scan``) and cells the
  spec excludes as unavailable (ICC on Mach B) become *pruned* tasks:
  they appear in the plan so grids render their N/A, but are never
  executed;
* **thread resolution** -- spec-level ``threads=None`` becomes the
  machine's core count, and counts wider than the machine are skipped,
  so one strong-scaling spec serves machines of different widths;
* **shared-baseline deduplication** -- every speedup cell needs the
  same ``GCC-SEQ`` denominator per (machine, case, n); the planner
  emits exactly one baseline task per distinct denominator and points
  each measure task at it via ``baseline_id``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.backends import get_backend
from repro.backends.base import Support
from repro.campaign.spec import CampaignSpec, PointSpec
from repro.errors import CampaignError, UnknownBackendError, UnknownMachineError
from repro.machines import get_machine
from repro.suite.cases import get_case
from repro.trace import get_tracer

__all__ = ["PointTask", "CampaignPlan", "plan_campaign", "task_id_for"]

#: Task kinds: baselines carry no dependencies; measures depend on their
#: shared baseline for the speedup derivation.
BASELINE = "baseline"
MEASURE = "measure"


def task_id_for(point: PointSpec) -> str:
    """Stable short id of a point (prefix of its content hash)."""
    return hashlib.sha256(point.canonical().encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PointTask:
    """One node of the campaign DAG."""

    task_id: str
    point: PointSpec
    kind: str
    baseline_id: str | None = None
    pruned: str | None = None

    @property
    def depends_on(self) -> tuple[str, ...]:
        """Ids of tasks that must complete before this one's derivation."""
        return (self.baseline_id,) if self.baseline_id else ()


@dataclass(frozen=True)
class CampaignPlan:
    """The expanded, deduplicated task list of one campaign."""

    spec: CampaignSpec
    tasks: tuple[PointTask, ...]

    @property
    def by_id(self) -> Mapping[str, PointTask]:
        """task_id -> task lookup (computed on demand)."""
        return {t.task_id: t for t in self.tasks}

    @property
    def baselines(self) -> tuple[PointTask, ...]:
        """The deduplicated sequential-baseline tasks."""
        return tuple(t for t in self.tasks if t.kind == BASELINE)

    @property
    def measures(self) -> tuple[PointTask, ...]:
        """The grid's measured (non-baseline) tasks, pruned ones included."""
        return tuple(t for t in self.tasks if t.kind == MEASURE)

    @property
    def runnable(self) -> tuple[PointTask, ...]:
        """Tasks that will actually execute (everything not pruned)."""
        return tuple(t for t in self.tasks if t.pruned is None)

    @property
    def pruned(self) -> tuple[PointTask, ...]:
        """Tasks planned as N/A without execution."""
        return tuple(t for t in self.tasks if t.pruned is not None)

    def waves(self) -> Iterator[tuple[PointTask, ...]]:
        """Topological execution waves: baselines first, then measures."""
        first = tuple(t for t in self.runnable if t.kind == BASELINE)
        second = tuple(t for t in self.runnable if t.kind == MEASURE)
        if first:
            yield first
        if second:
            yield second


def _resolve_threads(backend, requested: int | None, cores: int) -> int | None:
    """Concrete thread count for one expansion, or None to skip it."""
    if backend.is_sequential:
        return 1
    if requested is None:
        return cores
    if requested > cores:
        return None
    return requested


def plan_campaign(spec: CampaignSpec) -> CampaignPlan:
    """Expand ``spec`` into its deterministic task DAG."""
    tracer = get_tracer()
    if not tracer.enabled:
        return _expand(spec)
    with tracer.span("campaign.plan", category="campaign", track="campaign",
                     campaign=spec.name) as span:
        plan = _expand(spec)
        span.set_attribute("tasks", len(plan.tasks))
        span.set_attribute("pruned", len(plan.pruned))
    return plan


def _expand(spec: CampaignSpec) -> CampaignPlan:
    """The planner body (no tracing concerns)."""
    try:
        cores = {m: get_machine(m).total_cores for m in spec.machines}
        backends = {b: get_backend(b) for b in set(spec.backends) | {spec.baseline_backend}}
        algs = {c: get_case(c).alg for c in spec.cases}
    except (UnknownMachineError, UnknownBackendError) as exc:
        raise CampaignError(f"cannot plan campaign {spec.name!r}: {exc}") from exc

    excluded = {(m, b) for m, b in spec.exclude}
    baseline = backends[spec.baseline_backend]
    if not baseline.is_sequential:
        raise CampaignError(
            f"baseline backend {spec.baseline_backend!r} is not sequential"
        )

    tasks: list[PointTask] = []
    seen: dict[str, int] = {}  # task_id -> index into tasks
    baseline_ids: dict[str, str] = {}  # baseline canonical -> task_id

    def add_baseline(machine: str, case: str, size_exp: int, mode: str) -> str:
        point = PointSpec(
            machine=machine, backend=spec.baseline_backend, case=case,
            size_exp=size_exp, threads=1, mode=mode, allocator=None,
            min_time=spec.min_time,
        )
        canon = point.canonical()
        if canon in baseline_ids:
            return baseline_ids[canon]
        tid = task_id_for(point)
        baseline_ids[canon] = tid
        if tid not in seen:
            seen[tid] = len(tasks)
            tasks.append(PointTask(task_id=tid, point=point, kind=BASELINE))
        return tid

    for machine in spec.machines:
        for backend_name in spec.backends:
            backend = backends[backend_name]
            for case in spec.cases:
                for size_exp in spec.size_exps:
                    for requested in spec.threads:
                        threads = _resolve_threads(backend, requested, cores[machine])
                        if threads is None:
                            continue
                        for mode in spec.modes:
                            for allocator in spec.allocators:
                                pruned = None
                                if (machine, backend_name) in excluded:
                                    pruned = f"{backend_name} unavailable on Mach {machine}"
                                elif backend.support(algs[case]) is Support.UNSUPPORTED:
                                    pruned = f"{backend_name} does not implement {algs[case]}"
                                point = PointSpec(
                                    machine=machine, backend=backend_name,
                                    case=case, size_exp=size_exp,
                                    threads=threads, mode=mode,
                                    allocator=allocator, min_time=spec.min_time,
                                )
                                tid = task_id_for(point)
                                if tid in seen:
                                    continue
                                bid = None
                                if pruned is None:
                                    bid = add_baseline(machine, case, size_exp, mode)
                                seen[tid] = len(tasks)
                                tasks.append(PointTask(
                                    task_id=tid, point=point, kind=MEASURE,
                                    baseline_id=bid, pruned=pruned,
                                ))

    order = {t.task_id: i for i, t in enumerate(tasks)}
    ordered = sorted(tasks, key=lambda t: (t.kind != BASELINE, order[t.task_id]))
    return CampaignPlan(spec=spec, tasks=tuple(ordered))
