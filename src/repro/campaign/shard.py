"""Sharded persistent index for the content-addressed result store.

The object tree already fans out over a two-hex-digit directory level
(``objects/ab/<key>.json``) -- that fan-out *is* the natural 256-way
shard structure. What was missing is a per-shard **persistent index**
so lookups, counts and queries are O(result) instead of O(walk the
whole tree): with millions of cached points, ``rglob("*.json")`` is the
scalability cliff, exactly the metadata-path bottleneck the pSTL-Bench
scaling study keeps finding in the kernels themselves.

Layout, per store root::

    STORE_META.json          # {"layout": 2, "shards": 256} -- v2 marker
    objects/ab/<key>.json    # unchanged: the records stay ground truth
    index/ab.log.jsonl       # append-only index journal for shard "ab"
    index/ab.idx.json        # compacted snapshot of shard "ab"

Every ``put`` appends one row (``key -> object path, checksum, status,
seconds, wall_ms, point``) to its shard's log under the same flock +
single ``O_APPEND`` ``write()`` discipline as the campaign journal, so
concurrent writers never interleave partial rows. Every ``quarantine``
appends a tombstone. Reading a shard merges the compacted snapshot with
a replay of its log (last-wins; tombstones delete); the merge is cached
and invalidated by (snapshot, log) file signatures, so repeated reads
cost O(1) stat calls.

**Compaction** (:meth:`StoreIndex.compact`, fronted by ``pstl-campaign
compact``) folds each shard's log into its snapshot: superseded rows
and quarantined tombstones are dropped, the snapshot is rewritten
atomically (temp file + rename), and the log is truncated to zero --
all while holding the shard log's exclusive advisory lock, so appenders
serialize against the rewrite instead of losing rows.

The index is a *derived* structure: the object files remain the ground
truth, ``ResultStore.scan`` cross-checks the two, and
``tools/migrate_store.py`` can rebuild the index from the tree at any
time. Index appends therefore skip ``fsync`` -- losing a tail row to a
crash costs one flagged-then-rebuilt row, not data.
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (single-writer)
    fcntl = None

from repro.campaign.spec import canonical_json
from repro.errors import CampaignError

__all__ = [
    "SHARD_COUNT",
    "STORE_META",
    "STORE_LAYOUT_VERSION",
    "CompactionReport",
    "ShardIndex",
    "StoreIndex",
    "shard_prefix",
    "read_store_meta",
    "write_store_meta",
]

#: Number of key-prefix shards (two hex digits -> 256).
SHARD_COUNT = 256

#: Marker file naming the store layout version at the store root.
STORE_META = "STORE_META.json"

#: Current on-disk layout version (v1 = flat unindexed, v2 = sharded index).
STORE_LAYOUT_VERSION = 2

_HEX = set("0123456789abcdef")


def shard_prefix(key: str) -> str:
    """The two-hex-digit shard a cache key belongs to."""
    prefix = key[:2].lower()
    if len(prefix) != 2 or not set(prefix) <= _HEX:
        raise CampaignError(f"not a shardable cache key: {key!r}")
    return prefix


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    """Publish ``payload`` at ``path`` via per-process/thread temp + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    tmp.write_text(json.dumps(dict(payload), sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def write_store_meta(root: str | os.PathLike) -> None:
    """Stamp ``root`` as a v2 (sharded-index) store, atomically."""
    _atomic_write_json(
        Path(root) / STORE_META,
        {"layout": STORE_LAYOUT_VERSION, "shards": SHARD_COUNT},
    )


def read_store_meta(root: str | os.PathLike) -> dict | None:
    """The store-layout marker at ``root``, or None for a v1/fresh store."""
    try:
        payload = json.loads((Path(root) / STORE_META).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None  # torn marker: treat as unmigrated, never crash a read
    return payload if isinstance(payload, dict) else None


def _flock(fd: int) -> None:
    """Exclusive cross-process advisory lock (no-op without fcntl)."""
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_EX)


def _funlock(fd: int) -> None:
    """Release the lock taken by :func:`_flock`."""
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_UN)


@dataclass
class CompactionReport:
    """What one compaction pass did (see :meth:`StoreIndex.compact`)."""

    shards: int = 0
    rows_kept: int = 0
    superseded: int = 0
    quarantined_dropped: int = 0
    log_bytes_merged: int = 0

    def merge(self, other: "CompactionReport") -> None:
        """Fold another shard's report into this aggregate."""
        self.shards += other.shards
        self.rows_kept += other.rows_kept
        self.superseded += other.superseded
        self.quarantined_dropped += other.quarantined_dropped
        self.log_bytes_merged += other.log_bytes_merged

    def summary(self) -> str:
        """One-line human report."""
        return (
            f"{self.shards} shard(s) compacted: {self.rows_kept} row(s) kept, "
            f"{self.superseded} superseded, {self.quarantined_dropped} "
            f"quarantined row(s) dropped, {self.log_bytes_merged} "
            f"log byte(s) merged"
        )


class ShardIndex:
    """One key-prefix shard: an append-only log plus a compacted snapshot.

    Appends go to ``<prefix>.log.jsonl`` (flock + single ``O_APPEND``
    write, torn-tail healed exactly like the campaign journal); reads
    merge ``<prefix>.idx.json`` with a log replay, last row per key
    winning and ``quarantine`` tombstones deleting. The merge is cached
    against the two files' stat signatures.
    """

    def __init__(self, index_root: str | os.PathLike, prefix: str) -> None:
        """Bind to shard ``prefix`` under ``index_root`` (lazily created)."""
        self.prefix = prefix
        root = Path(index_root)
        self.log_path = root / f"{prefix}.log.jsonl"
        self.compact_path = root / f"{prefix}.idx.json"
        self._cache: dict[str, dict] | None = None
        self._cache_sig: tuple | None = None

    def _sig(self) -> tuple:
        """Stat signature of (snapshot, log); changes on any write."""
        try:
            stat = self.compact_path.stat()
            compact_sig = (stat.st_mtime_ns, stat.st_size)
        except FileNotFoundError:
            compact_sig = None
        try:
            log_size = self.log_path.stat().st_size
        except FileNotFoundError:
            log_size = None
        return (compact_sig, log_size)

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one index row (a whole line) to the shard log.

        Same discipline as :meth:`Journal.append` -- heal a torn tail,
        then a single ``write()`` on an ``O_APPEND`` descriptor under an
        exclusive advisory lock -- minus the ``fsync``: the index is
        derived from the object tree and rebuildable, so a lost tail row
        costs a flagged rebuild, not data.
        """
        line = (canonical_json(dict(row)) + "\n").encode("utf-8")
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.log_path, os.O_CREAT | os.O_RDWR | os.O_APPEND, 0o644)
        try:
            _flock(fd)
            try:
                size = os.fstat(fd).st_size
                if size and os.pread(fd, 1, size - 1) != b"\n":
                    os.write(fd, b"\n")
                os.write(fd, line)
            finally:
                _funlock(fd)
        finally:
            os.close(fd)

    def _read_compact(self) -> dict[str, dict]:
        """Rows of the compacted snapshot ({} when absent or unreadable --
        the object tree stays ground truth; scan flags the gap)."""
        try:
            payload = json.loads(self.compact_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {}
        rows = payload.get("rows") if isinstance(payload, Mapping) else None
        if not isinstance(rows, Mapping):
            return {}
        return {k: dict(v) for k, v in rows.items() if isinstance(v, Mapping)}

    def _read_log(self) -> list[dict]:
        """Parsed log entries in append order (torn/garbage lines skipped)."""
        try:
            raw = self.log_path.read_bytes()
        except FileNotFoundError:
            return []
        out: list[dict] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn tail from a crash mid-append
            if isinstance(entry, dict):
                out.append(entry)
        return out

    @staticmethod
    def _replay(base: dict[str, dict], entries: list[dict],
                report: CompactionReport | None = None) -> dict[str, dict]:
        """Fold log ``entries`` onto ``base`` (last-wins, tombstones delete)."""
        merged = dict(base)
        for entry in entries:
            key = entry.get("key")
            if not isinstance(key, str):
                continue
            op = entry.get("op")
            if op == "quarantine":
                if merged.pop(key, None) is not None and report is not None:
                    report.quarantined_dropped += 1
            elif op == "put":
                if key in merged and report is not None:
                    report.superseded += 1
                merged[key] = {k: v for k, v in entry.items()
                               if k not in ("op", "key")}
        return merged

    def rows(self) -> dict[str, dict]:
        """key -> index row for every live key in this shard.

        Returns the internal cached mapping -- treat it as read-only.
        The cache invalidates whenever the snapshot or log changes on
        disk (other processes included), so a fresh poll costs two
        ``stat`` calls.
        """
        sig = self._sig()
        if self._cache is not None and sig == self._cache_sig:
            return self._cache
        merged = self._replay(self._read_compact(), self._read_log())
        self._cache, self._cache_sig = merged, sig
        return merged

    def lookup(self, key: str) -> dict | None:
        """The index row for ``key``, or None (O(shard), cached)."""
        return self.rows().get(key)

    #: Snapshot head shape: ``sort_keys`` puts ``"count"`` first, so a
    #: 64-byte read answers counts without parsing the whole snapshot.
    _COUNT_HEAD = re.compile(rb'^\{"count": (\d+)[,}]')

    def count(self) -> int:
        """Number of live keys in this shard.

        On a compacted shard (empty log) this is O(1): the snapshot
        embeds its row count as its first JSON key, read from the file
        head without parsing the rows. With pending log entries -- whose
        tombstones and supersedes need the full merge -- it falls back
        to :meth:`rows`.
        """
        sig = self._sig()
        if self._cache is not None and sig == self._cache_sig:
            return len(self._cache)
        compact_sig, log_size = sig
        if not log_size and compact_sig is not None:
            try:
                with open(self.compact_path, "rb") as fh:
                    head = fh.read(64)
            except FileNotFoundError:
                head = b""
            match = self._COUNT_HEAD.match(head)
            if match:
                return int(match.group(1))
        return len(self.rows())

    def compact(self) -> CompactionReport:
        """Fold the log into the snapshot; truncate the log; atomically.

        Runs under the shard log's exclusive advisory lock, so appends
        racing the compaction serialize: a row appended before the lock
        is merged, one appended after lands in the (now empty) log.
        The snapshot rewrite publishes via temp file + rename, so
        readers only ever see a whole snapshot.
        """
        report = CompactionReport()
        if not self.log_path.exists() and not self.compact_path.exists():
            return report
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.log_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            _flock(fd)
            try:
                report.log_bytes_merged = os.fstat(fd).st_size
                merged = self._replay(self._read_compact(), self._read_log(),
                                      report)
                _atomic_write_json(self.compact_path, {
                    "count": len(merged),  # first key: O(1) count reads
                    "layout": STORE_LAYOUT_VERSION,
                    "prefix": self.prefix,
                    "rows": merged,
                })
                os.ftruncate(fd, 0)
            finally:
                _funlock(fd)
        finally:
            os.close(fd)
        report.shards = 1
        report.rows_kept = len(merged)
        self._cache, self._cache_sig = merged, self._sig()
        return report


class StoreIndex:
    """The store-wide view over all 256 key-prefix shards.

    Shards are lazily instantiated and lazily created on disk -- a
    store that only ever saw keys under ``ab/`` has exactly one shard's
    files. :class:`~repro.campaign.store.ResultStore` owns one of these
    when the store root carries a v2 ``STORE_META.json`` marker.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        """Bind to the store ``root`` (index files under ``root/index``)."""
        self.root = Path(root)
        self.index_root = self.root / "index"
        self._shards: dict[str, ShardIndex] = {}

    def shard(self, prefix: str) -> ShardIndex:
        """The :class:`ShardIndex` for ``prefix`` (memoized)."""
        shard = self._shards.get(prefix)
        if shard is None:
            shard = self._shards[prefix] = ShardIndex(self.index_root, prefix)
        return shard

    def shard_for(self, key: str) -> ShardIndex:
        """The shard that owns cache key ``key``."""
        return self.shard(shard_prefix(key))

    def prefixes(self) -> list[str]:
        """Sorted shard prefixes that exist on disk."""
        if not self.index_root.is_dir():
            return []
        found = set()
        for path in self.index_root.iterdir():
            prefix = path.name[:2].lower()
            if len(path.name) > 2 and set(prefix) <= _HEX:
                found.add(prefix)
        return sorted(found)

    def record_put(self, key: str, *, checksum: str | None,
                   point: Mapping[str, Any],
                   status: str | None = None,
                   seconds: float | None = None,
                   wall_ms: float | None = None) -> None:
        """Index a freshly published object (appended to its shard log)."""
        self.shard_for(key).append({
            "op": "put",
            "key": key,
            "path": f"objects/{key[:2]}/{key}.json",
            "checksum": checksum,
            "point": dict(point),
            "status": status,
            "seconds": seconds,
            "wall_ms": wall_ms,
        })

    def record_quarantine(self, key: str, reason: str) -> None:
        """Tombstone ``key`` (its row drops at the next merge/compaction)."""
        self.shard_for(key).append({
            "op": "quarantine", "key": key, "reason": reason,
        })

    def lookup(self, key: str) -> dict | None:
        """The index row for ``key`` across shards, or None."""
        return self.shard_for(key).lookup(key)

    def has(self, key: str) -> bool:
        """True when ``key`` has a live index row (tombstones excluded)."""
        return self.lookup(key) is not None

    def count(self) -> int:
        """Total live keys across every shard on disk."""
        return sum(self.shard(p).count() for p in self.prefixes())

    def rows(self) -> Iterator[tuple[str, dict]]:
        """Yield every (key, row) across shards, shard order then key order."""
        for prefix in self.prefixes():
            shard = self.shard(prefix)
            for key in sorted(shard.rows()):
                yield key, shard.rows()[key]

    def compact(self) -> CompactionReport:
        """Compact every shard on disk; aggregate report."""
        total = CompactionReport()
        for prefix in self.prefixes():
            total.merge(self.shard(prefix).compact())
        return total
