"""``pstl-campaign`` command-line entry point.

Examples::

    pstl-campaign run --spec table5 --dir campaigns/t5 --workers 4
    pstl-campaign run --spec table5 --dir campaigns/t5 --workers 4   # warm: all cache hits
    pstl-campaign status campaigns/t5
    pstl-campaign resume campaigns/t5 --workers 4
    pstl-campaign query campaigns/t5 --backend GCC-TBB --format csv
    pstl-campaign run --spec-file mysweep.json --dir campaigns/mine
    pstl-campaign run --spec table5 --dir campaigns/chaos \\
        --faults plan.json --fault-seed 7 --retries 2
    pstl-campaign verify campaigns/t5
    pstl-campaign compact campaigns/t5

Exit codes: 0 = success, 1 = campaign finished but some points FAILED
(for ``verify``: integrity errors were found), 2 = bad invocation or
corrupt campaign state.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.bench.reporters import csv_report, json_report
from repro.campaign.executor import BackoffPolicy, load_campaign, run_campaign
from repro.campaign.query import bench_rows, filter_results, speedup_grid
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    FAILED,
    Journal,
    JournalReader,
    ResultStore,
    read_spec,
)
from repro.errors import ReproError
from repro.faults import load_fault_plan
from repro.trace import Tracer, use_tracer, write_chrome_trace

__all__ = ["main", "build_parser"]

#: Named grid specs: spec builder + outcome renderer, resolved lazily so
#: importing the CLI does not pull in the experiment drivers.
_NAMED_SPECS = ("table5", "table6")


def _named_spec(name: str, size_exp: int):
    """(spec, render) for one of the named paper grids."""
    if name == "table5":
        from repro.experiments.table5 import table5_campaign_spec, table5_result

        return table5_campaign_spec(size_exp), table5_result
    if name == "table6":
        from repro.experiments.table6 import table6_campaign_spec, table6_result

        return table6_campaign_spec(size_exp), table6_result
    raise ReproError(f"unknown named spec {name!r}; known: {_NAMED_SPECS}")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="pstl-campaign",
        description="Plan, execute, cache and query pSTL-Bench campaigns "
        "(parallel sweeps with a content-addressed result cache; "
        "see docs/CAMPAIGNS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="plan and execute a campaign")
    run.add_argument("--spec", choices=_NAMED_SPECS, default=None,
                     help="a named paper grid")
    run.add_argument("--spec-file", default=None,
                     help="JSON CampaignSpec file (alternative to --spec)")
    run.add_argument("--size-exp", type=int, default=30,
                     help="problem-size exponent for named specs (default 2^30)")
    run.add_argument("--dir", default=None,
                     help="campaign directory (spec.json, journal, cache); "
                     "omit for a throwaway in-memory run")
    run.add_argument("--workers", type=int, default=4,
                     help="process-pool width; 0/1 = run inline (default 4)")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-task wall-clock budget in seconds (pool mode)")
    run.add_argument("--retries", type=int, default=1,
                     help="re-executions of a failed point (default 1)")
    run.add_argument("--resume", action="store_true",
                     help="skip tasks already journaled in --dir")
    run.add_argument("--no-batch", action="store_true",
                     help="force the scalar per-point executor instead of "
                     "the vectorized curve-at-a-time path (bit-identical "
                     "results; debugging aid; implies --no-wave)")
    run.add_argument("--no-wave", action="store_true",
                     help="disable wave fusion: submit curve-at-a-time "
                     "batch tasks instead of fused whole-wave programs "
                     "(bit-identical results; debugging aid)")
    run.add_argument("--trace", metavar="OUT.json", default=None,
                     help="write a Chrome trace of the campaign "
                     "(plan/execute/cache-hit/cache-miss spans)")
    _add_robustness_flags(run)

    resume = sub.add_parser("resume", help="continue an interrupted campaign")
    resume.add_argument("dir", help="campaign directory to resume")
    resume.add_argument("--workers", type=int, default=4)
    resume.add_argument("--timeout", type=float, default=None)
    resume.add_argument("--retries", type=int, default=1)
    resume.add_argument("--no-batch", action="store_true",
                        help="force the scalar per-point executor "
                        "(implies --no-wave)")
    resume.add_argument("--no-wave", action="store_true",
                        help="disable wave fusion (curve-at-a-time batch)")
    _add_robustness_flags(resume)

    verify = sub.add_parser(
        "verify",
        help="audit a campaign's store + journal integrity "
        "(checksums, content addresses, torn lines)",
    )
    verify.add_argument("dir", help="campaign directory to audit")
    verify.add_argument("--quarantine", action="store_true",
                        help="pull every corrupt object out of service "
                        "(moved to cache/quarantine/) instead of only "
                        "reporting it")

    compact = sub.add_parser(
        "compact",
        help="fold the store's per-shard index logs into their compacted "
        "snapshots (drops superseded and quarantined rows)",
    )
    compact.add_argument("dir", help="campaign directory, or a bare store "
                         "root (a directory holding objects/)")

    status = sub.add_parser("status", help="summarise a campaign directory")
    status.add_argument("dir", help="campaign directory")

    query = sub.add_parser("query", help="filter and report stored results")
    query.add_argument("dir", help="campaign directory")
    query.add_argument("--machine", default=None)
    query.add_argument("--backend", default=None)
    query.add_argument("--case", default=None)
    query.add_argument("--status", default=None,
                       choices=["done", "na", "failed"])
    query.add_argument("--format", choices=["console", "csv", "json"],
                       default="console")
    return parser


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    """Fault-injection and retry-backoff flags shared by run/resume."""
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="deterministic fault-injection plan (chaos "
                        "testing; see docs/ROBUSTNESS.md)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="override the plan's seed (requires --faults)")
    parser.add_argument("--backoff-base", type=float, default=0.0,
                        help="first-retry delay in seconds (default 0: "
                        "retry immediately)")
    parser.add_argument("--backoff-factor", type=float, default=2.0,
                        help="exponential growth per retry (default 2)")
    parser.add_argument("--backoff-max", type=float, default=30.0,
                        help="delay ceiling in seconds (default 30)")
    parser.add_argument("--backoff-jitter", type=float, default=0.0,
                        help="+/- jitter fraction in [0, 1], seeded "
                        "deterministically per task (default 0)")


def _robustness(args) -> tuple:
    """(faults, backoff) for run/resume from the shared flags."""
    faults = None
    if args.faults is not None:
        faults = load_fault_plan(args.faults)
        if args.fault_seed is not None:
            faults = faults.with_seed(args.fault_seed)
    elif args.fault_seed is not None:
        raise ReproError("--fault-seed requires --faults")
    backoff = None
    if args.backoff_base > 0:
        backoff = BackoffPolicy(
            base=args.backoff_base, factor=args.backoff_factor,
            max_delay=args.backoff_max, jitter=args.backoff_jitter,
        )
    return faults, backoff


def _print_outcome(outcome, render=None) -> None:
    """Shared run/resume reporting."""
    if render is not None:
        print(render(outcome).rendered)
    else:
        grid = speedup_grid(outcome)
        for key in sorted(grid):
            value = grid[key]
            print(f"{key} = " + ("N/A" if value is None else f"{value:.2f}x"))
    print(f"campaign: {outcome.stats.summary()}", file=sys.stderr)


def _failures(outcome) -> int:
    """Count of FAILED points (drives the exit code)."""
    return sum(1 for r in outcome.results.values() if r.status == FAILED)


def _cmd_run(args) -> int:
    """``pstl-campaign run``."""
    if (args.spec is None) == (args.spec_file is None):
        print("error: pass exactly one of --spec / --spec-file", file=sys.stderr)
        return 2
    render = None
    if args.spec is not None:
        spec, render = _named_spec(args.spec, args.size_exp)
    else:
        with open(args.spec_file, encoding="utf-8") as fh:
            try:
                spec = CampaignSpec.from_dict(json.load(fh))
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"invalid spec file {args.spec_file}: {exc}"
                ) from None
    faults, backoff = _robustness(args)
    tracer = Tracer() if args.trace else None
    with use_tracer(tracer) if tracer is not None else nullcontext():
        outcome = run_campaign(
            spec,
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            campaign_dir=args.dir,
            resume=args.resume,
            batch=not args.no_batch,
            wave=not args.no_wave,
            faults=faults,
            backoff=backoff,
        )
    if tracer is not None:
        n_spans = write_chrome_trace(tracer, args.trace)
        print(f"trace: {n_spans} spans -> {args.trace}", file=sys.stderr)
    _print_outcome(outcome, render)
    return 1 if _failures(outcome) else 0


def _cmd_resume(args) -> int:
    """``pstl-campaign resume``: reload spec.json and continue."""
    spec = CampaignSpec.from_dict(read_spec(Path(args.dir) / "spec.json"))
    faults, backoff = _robustness(args)
    outcome = run_campaign(
        spec,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        campaign_dir=args.dir,
        resume=True,
        batch=not args.no_batch,
        wave=not args.no_wave,
        faults=faults,
        backoff=backoff,
    )
    _print_outcome(outcome)
    return 1 if _failures(outcome) else 0


def _cmd_verify(args) -> int:
    """``pstl-campaign verify``: audit store + journal integrity.

    Exit 0 when every stored object parses, verifies its checksum and
    matches its content address (and the journal has at most a torn
    tail, which resume tolerates by design); exit 1 otherwise.
    """
    root = Path(args.dir)
    read_spec(root / "spec.json")  # fail fast (exit 2) on a non-campaign dir
    store = ResultStore(root / "cache")
    scan = store.scan(quarantine=args.quarantine)
    journal = Journal(root / "journal.jsonl")
    torn = journal.torn_lines()
    reader = JournalReader(journal.path)
    replayed = 0
    while True:  # drain exactly the way service pollers consume it
        batch = reader.poll()
        if not batch:
            break
        replayed += len(batch)
    tail = 0
    if journal.path.exists():
        tail = max(0, journal.path.stat().st_size - reader.offset)
    print(f"store:    {scan.summary()}")
    for key, reason in scan.corrupt:
        print(f"  corrupt {key[:16]}...: {reason}")
    if store.index is not None:
        print(f"index:    {store.index.count()} row(s) across "
              f"{len(store.index.prefixes())} shard(s)")
        if scan.unindexed or scan.index_stale:
            print(f"  index drift: {scan.unindexed} unindexed object(s), "
                  f"{scan.index_stale} stale row(s) -- advisory; "
                  "tools/migrate_store.py --force rebuilds the index")
    else:
        print("index:    absent (v1 flat store; "
              "tools/migrate_store.py upgrades it in place)")
    print(f"journal:  {len(journal.entries())} intact entr(ies), "
          f"{torn} torn line(s)")
    print(f"reader:   {replayed} entr(ies) replayed, "
          f"{reader.torn} torn skip(s), {reader.resyncs} resync(s), "
          f"{tail} unterminated tail byte(s)")
    if scan.errors:
        print(f"verify: {scan.errors} integrity error(s)", file=sys.stderr)
        if not args.quarantine:
            print("re-run with --quarantine to pull them out of service, "
                  "then resume to recompute", file=sys.stderr)
        return 1
    print("verify: OK")
    return 0


def _store_root(path: Path) -> Path:
    """Resolve a compact target: a campaign dir's ``cache/`` or a bare store.

    Accepts either a campaign directory (holding ``spec.json``) or a
    store root itself (holding ``objects/``); anything else raises.
    """
    if (path / "spec.json").exists():
        return path / "cache"
    if (path / "objects").is_dir() or (path / "STORE_META.json").exists():
        return path
    raise ReproError(
        f"{path} is neither a campaign directory (no spec.json) "
        "nor a result store (no objects/)")


def _cmd_compact(args) -> int:
    """``pstl-campaign compact``: fold index logs into shard snapshots."""
    store = ResultStore(_store_root(Path(args.dir)))
    report = store.compact()  # raises (-> exit 2) on unindexed v1 stores
    print(f"compact:  {report.summary()}")
    print(f"index:    {store.index.count()} row(s) across "
          f"{len(store.index.prefixes())} shard(s)")
    return 0


def _cmd_status(args) -> int:
    """``pstl-campaign status``: plan vs journal bookkeeping."""
    outcome = load_campaign(args.dir)
    entries = Journal(Path(args.dir) / "journal.jsonl").entries()
    by_status: dict[str, int] = {}
    for result in outcome.results.values():
        by_status[result.status] = by_status.get(result.status, 0) + 1
    pending = [t for t in outcome.plan.tasks if t.task_id not in outcome.results]
    print(f"campaign: {outcome.spec.name}")
    print(f"planned:  {len(outcome.plan.tasks)} tasks "
          f"({len(outcome.plan.baselines)} shared baselines, "
          f"{len(outcome.plan.pruned)} pruned N/A)")
    print(f"journal:  {len(entries)} entries")
    for status in ("done", "na", "failed"):
        if by_status.get(status):
            print(f"  {status:6s} {by_status[status]}")
    _print_wall_time(outcome, entries)
    store = ResultStore(Path(args.dir) / "cache")
    print(f"cache:    {store.count_objects()} object(s)"
          + (" (indexed)" if store.indexed else " (v1, unindexed)"))
    print(f"pending:  {len(pending)}")
    if pending:
        print("resume with: pstl-campaign resume " + str(args.dir))
    return 0


def _print_wall_time(outcome, entries, slowest: int = 3) -> None:
    """Summarize real executor wall-time from the journal's ``wall_ms``."""
    timed = [e for e in entries if e.get("wall_ms") is not None]
    if not timed:
        return
    tasks = {t.task_id: t for t in outcome.plan.tasks}
    total = sum(e["wall_ms"] for e in timed)
    print(f"wall:     {total:.1f} ms executed across {len(timed)} task(s)")
    for entry in sorted(timed, key=lambda e: e["wall_ms"], reverse=True)[:slowest]:
        task = tasks.get(entry["task_id"])
        if task is None:  # journal from an older plan; still show the id
            label = entry["task_id"][:12]
        else:
            p = task.point
            label = (f"{p.case}<{p.backend}>@Mach{p.machine}"
                     f"/{p.threads}t/n=2^{p.size_exp}")
        print(f"  slowest {entry['wall_ms']:8.1f} ms  {label} ({entry['status']})")


def _cmd_query(args) -> int:
    """``pstl-campaign query``: filtered rows through the reporters."""
    outcome = load_campaign(args.dir)
    pairs = filter_results(
        outcome, machine=args.machine, backend=args.backend,
        case=args.case, status=args.status,
    )
    if args.format == "csv":
        print(csv_report(bench_rows(pairs)), end="")
        return 0
    if args.format == "json":
        print(json_report(bench_rows(pairs)))
        return 0
    for task, result in pairs:
        p = task.point
        label = f"{p.case}<{p.backend}>@Mach{p.machine}/{p.threads}t/n=2^{p.size_exp}"
        if result.status == "done":
            print(f"{label}: {result.seconds:.6g} s"
                  + (" (cached)" if result.cached else ""))
        else:
            print(f"{label}: {result.status.upper()} ({result.error})")
    if not pairs:
        print("no stored results match", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "status": _cmd_status,
        "query": _cmd_query,
        "verify": _cmd_verify,
        "compact": _cmd_compact,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
