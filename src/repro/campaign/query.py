"""Query layer: stored campaign results back into experiment shapes.

A campaign outcome is a flat bag of point results; the paper's artifacts
are grids and curves derived from it. This module does those
derivations -- speedup grids (Table 5), efficiency-threshold grids
(Table 6), filtered row listings for the CLI -- and converts points into
the existing :class:`~repro.bench.state.BenchResult` shape so the
console/CSV/JSON reporters work on campaign output unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bench.state import BenchResult
from repro.campaign.executor import CampaignOutcome
from repro.campaign.plan import MEASURE, PointTask
from repro.campaign.store import DONE, PointResult, ResultStore
from repro.errors import CampaignError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.speedup import ScalingCurve

__all__ = [
    "grid_key",
    "speedup_grid",
    "efficiency_grid",
    "filter_results",
    "bench_rows",
    "store_query",
    "CellCurve",
]


def grid_key(task: PointTask) -> str:
    """The experiments' grid-cell key: ``backend/case/machine``."""
    p = task.point
    return f"{p.backend}/{p.case}/{p.machine}"


def _baseline_seconds(outcome: CampaignOutcome, task: PointTask) -> float | None:
    """The shared sequential denominator of a measure task."""
    if task.baseline_id is None:
        return None
    return outcome.seconds(task.baseline_id)


def speedup_grid(outcome: CampaignOutcome) -> dict[str, float | None]:
    """Speedup vs the shared baseline per cell; ``None`` renders as N/A.

    Expects one measure point per cell (the Table 5 shape: a single
    (size, threads) configuration); with several, the last planned one
    wins.
    """
    grid: dict[str, float | None] = {}
    for task in outcome.plan.measures:
        seconds = outcome.seconds(task.task_id)
        base = _baseline_seconds(outcome, task)
        value = None
        if seconds is not None and base is not None and seconds > 0:
            value = base / seconds
        grid[grid_key(task)] = value
    return grid


@dataclass(frozen=True)
class CellCurve:
    """One cell's strong-scaling series, assembled from stored points."""

    key: str
    threads: tuple[int, ...]
    seconds: tuple[float, ...]
    baseline_seconds: float | None

    def scaling_curve(self) -> "ScalingCurve":
        """As the analysis layer's :class:`ScalingCurve`."""
        # Imported here: repro.analysis pulls in repro.experiments, whose
        # drivers import this module -- a cycle at module-import time.
        from repro.analysis.speedup import ScalingCurve

        assert self.baseline_seconds is not None
        return ScalingCurve(
            label=self.key,
            threads=self.threads,
            seconds=self.seconds,
            baseline_seconds=self.baseline_seconds,
        )


def cell_curves(outcome: CampaignOutcome) -> dict[str, CellCurve]:
    """Group a thread-sweep campaign's points into per-cell curves."""
    series: dict[str, dict[int, float]] = {}
    baselines: dict[str, float | None] = {}
    for task in outcome.plan.measures:
        key = grid_key(task)
        series.setdefault(key, {})
        if key not in baselines:
            baselines[key] = _baseline_seconds(outcome, task)
        seconds = outcome.seconds(task.task_id)
        if seconds is not None:
            series[key][task.point.threads] = seconds
    out: dict[str, CellCurve] = {}
    for key, points in series.items():
        threads = tuple(sorted(points))
        out[key] = CellCurve(
            key=key,
            threads=threads,
            seconds=tuple(points[t] for t in threads),
            baseline_seconds=baselines.get(key),
        )
    return out


def efficiency_grid(
    outcome: CampaignOutcome, threshold: float = 0.70
) -> dict[str, int | None]:
    """Max thread count per cell with parallel efficiency >= threshold.

    The Table 6 derivation: each cell's thread sweep becomes a
    :class:`ScalingCurve` against the shared sequential baseline;
    cells with no supported points (or no baseline) are ``None``.
    """
    from repro.analysis.speedup import max_threads_above_efficiency

    grid: dict[str, int | None] = {}
    for key, curve in cell_curves(outcome).items():
        if not curve.threads or curve.baseline_seconds is None:
            grid[key] = None
            continue
        grid[key] = max_threads_above_efficiency(curve.scaling_curve(), threshold)
    return grid


def filter_results(
    outcome: CampaignOutcome,
    machine: str | None = None,
    backend: str | None = None,
    case: str | None = None,
    status: str | None = None,
    kind: str | None = MEASURE,
) -> list[tuple[PointTask, PointResult]]:
    """Stored (task, result) pairs matching the given filters.

    Filters compare case-insensitively; ``kind=None`` includes the
    shared baselines alongside the measures.
    """
    def match(value: str, wanted: str | None) -> bool:
        return wanted is None or value.lower() == wanted.lower()

    out = []
    for task in outcome.plan.tasks:
        result = outcome.results.get(task.task_id)
        if result is None:
            continue
        if kind is not None and task.kind != kind:
            continue
        p = task.point
        if not (match(p.machine, machine) and match(p.backend, backend)
                and match(p.case, case)):
            continue
        if status is not None and result.status != status:
            continue
        out.append((task, result))
    return out


def store_query(
    store: ResultStore,
    machine: str | None = None,
    backend: str | None = None,
    case: str | None = None,
    status: str | None = None,
) -> list[dict]:
    """Filter a store's *persistent index* without opening object files.

    The campaign-level :func:`filter_results` replays the plan and loads
    each point's record -- O(campaign). This query walks the sharded
    index instead, so it is O(result rows) over the *whole* store, which
    is the shape the service's dashboards need at millions of cached
    points. Each hit is a dict with ``key``, ``point``, ``status``,
    ``seconds``, ``wall_ms`` and the relative object ``path``; rows come
    back in (shard, key) order for determinism. Raises
    :class:`CampaignError` on unindexed (in-memory or v1 flat) stores.
    """
    if store.index is None:
        raise CampaignError(
            "store has no persistent index (in-memory, or v1 layout; "
            "run tools/migrate_store.py to upgrade a flat store)")

    def match(value, wanted: str | None) -> bool:
        return wanted is None or (
            isinstance(value, str) and value.lower() == wanted.lower())

    out: list[dict] = []
    for key, row in store.index.rows():
        point = row.get("point")
        point = dict(point) if isinstance(point, dict) else {}
        if not (match(point.get("machine"), machine)
                and match(point.get("backend"), backend)
                and match(point.get("case"), case)
                and match(row.get("status"), status)):
            continue
        out.append({
            "key": key,
            "point": point,
            "status": row.get("status"),
            "seconds": row.get("seconds"),
            "wall_ms": row.get("wall_ms"),
            "path": row.get("path"),
        })
    return out


def bench_rows(pairs: list[tuple[PointTask, PointResult]]) -> list[BenchResult]:
    """Done points as reporter-ready :class:`BenchResult` rows.

    Rows carry the run_case-style label ``case<BACKEND>/n@Mach/threads``
    and the point's simulated seconds; N/A and failed points have no
    measured value and are omitted (list them via
    :func:`filter_results` with a status filter instead).
    """
    rows = []
    for task, result in pairs:
        if result.status != DONE or result.seconds is None:
            continue
        p = task.point
        rows.append(BenchResult(
            name=f"{p.case}<{p.backend}>/{p.n}@Mach{p.machine}/{p.threads}t",
            iterations=1,
            total_time=result.seconds,
            mean_time=result.seconds,
        ))
    return rows
