"""Exception hierarchy for the pSTL-Bench reproduction.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type at an API boundary. Subclasses mirror the major subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied (bad thread count, size...)."""


class MachineError(ReproError):
    """A machine model is inconsistent or an unknown machine was requested."""


class UnknownMachineError(MachineError):
    """Lookup of a machine preset by name failed."""


class BackendError(ReproError):
    """A backend model is inconsistent or an unknown backend was requested."""


class UnknownBackendError(BackendError):
    """Lookup of a backend by name failed."""


class UnsupportedOperationError(BackendError):
    """The backend does not provide a parallel implementation of an algorithm.

    Mirrors the paper's capability gaps: GNU's parallel-mode library has no
    ``inclusive_scan``, and NVC-OMP silently falls back to sequential for
    scans. Whether a gap raises or falls back is a backend capability.
    """


class AllocationError(ReproError):
    """Memory-model allocation failed (e.g., exceeding modeled capacity)."""


class PlacementError(ReproError):
    """Page or thread placement was requested that the topology cannot hold."""


class SimulationError(ReproError):
    """The cost engine was driven with an inconsistent work profile."""


class CounterError(ReproError):
    """Misuse of the hardware-counter APIs (unbalanced start/stop, etc.)."""


class BenchmarkError(ReproError):
    """Benchmark harness misuse (duplicate registration, bad ranges...)."""


class TraceError(ReproError):
    """Tracer misuse (unbalanced begin/end, negative durations...)."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class CampaignError(ReproError):
    """A benchmark campaign was mis-specified or its on-disk state is bad."""


class FidelityError(ReproError):
    """Paper-fidelity reference data is malformed or a check was misused."""


class ScenarioError(ReproError):
    """A scenario spec is malformed or references unknown registry entries."""


class ServiceError(ReproError):
    """The campaign service was misconfigured or a request failed."""


class QuotaExceededError(ServiceError):
    """A submission was rejected by admission control (HTTP 429).

    Carries the server's suggested ``retry_after`` seconds so clients
    (and the load generator) can implement honest backoff.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        """Wrap the rejection ``message`` with its ``retry_after`` hint."""
        super().__init__(message)
        self.retry_after = retry_after


class RemoteError(ReproError):
    """The multi-host result-shipping protocol hit an unrecoverable state."""


class LeaseError(RemoteError):
    """A lease could not be acquired, renewed or released."""


class LeaseExpiredError(LeaseError):
    """The holder's lease lapsed before the guarded operation ran.

    Raised when an executor tries to act on a lease whose TTL has
    passed: the coordinator may already have reassigned the work, so
    the only safe move is to re-acquire (bumping the epoch) and redo.
    """


class StaleWriterError(LeaseError):
    """An epoch-fenced write was attempted by a superseded lease holder.

    The on-disk lease names a different (holder, epoch) than the writer
    presented -- a takeover happened. The write is rejected *before* any
    bytes land, so a zombie executor can never corrupt a segment that a
    new holder now owns.
    """


class SegmentError(RemoteError):
    """A shipped journal segment failed verification against its manifest."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (bad rate, unknown site...)."""


class InjectedFaultError(ReproError):
    """A deterministic fault fired inside a campaign worker.

    Raised only by :mod:`repro.faults` injection wrappers, never by the
    model itself, so its presence in a journal/error string is an
    unambiguous marker that a failure was injected rather than organic.
    """
