"""Prefix sums: ``inclusive_scan`` / ``exclusive_scan`` (+``transform_``
variants). Paper Section 5.4.

Parallel structure (the standard three-step scan):

1. each thread reduces its chunk (read pass);
2. chunk totals are exclusive-scanned on one thread (tiny);
3. each thread re-scans its chunk adding its offset (read+write pass).

That extra read pass is why scan's speedup ceiling is well below the
STREAM ratio (~4.5-4.7 on the paper's machines), and the offset-carry
structure is why the custom allocator *hurts* (Fig. 1: -19 %), encoded as
``SCAN_SPREAD_PENALTY``.

Capability gaps reproduced here:

* GNU parallel mode has no scan at all -- calling it raises
  :class:`~repro.errors.UnsupportedOperationError` (the paper's "N/A");
* NVC-OMP falls back to its sequential implementation, whose codegen is
  slightly worse than GCC's (Table 5 row ~0.9).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    require_support,
    sequential_phase,
)
from repro.algorithms._ops import PLUS, BinaryOp, ElementOp
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = [
    "inclusive_scan",
    "exclusive_scan",
    "transform_inclusive_scan",
    "transform_exclusive_scan",
    "SCAN_SPREAD_PENALTY",
]

#: Fig. 1: custom allocator slows inclusive_scan by ~19 % on Mach A.
SCAN_SPREAD_PENALTY = 1.50
#: Loop/store bookkeeping per element of the scan pass.
_SCAN_LOOP_INSTR = 1.0


def inclusive_scan(
    ctx: ExecutionContext,
    arr: SimArray,
    out: SimArray | None = None,
    op: BinaryOp = PLUS,
) -> AlgoResult:
    """Inclusive prefix combine of ``arr`` into ``out`` (default in-place)."""
    return _scan_impl(ctx, arr, out, op, exclusive=False, init=0.0, transform=None)


def exclusive_scan(
    ctx: ExecutionContext,
    arr: SimArray,
    init: float = 0.0,
    out: SimArray | None = None,
    op: BinaryOp = PLUS,
) -> AlgoResult:
    """Exclusive prefix combine with initial value ``init``."""
    return _scan_impl(ctx, arr, out, op, exclusive=True, init=init, transform=None)


def transform_inclusive_scan(
    ctx: ExecutionContext,
    arr: SimArray,
    transform: ElementOp,
    out: SimArray | None = None,
    op: BinaryOp = PLUS,
) -> AlgoResult:
    """Inclusive scan of ``transform(x)``."""
    return _scan_impl(
        ctx, arr, out, op, exclusive=False, init=0.0, transform=transform
    )


def transform_exclusive_scan(
    ctx: ExecutionContext,
    arr: SimArray,
    transform: ElementOp,
    init: float = 0.0,
    out: SimArray | None = None,
    op: BinaryOp = PLUS,
) -> AlgoResult:
    """Exclusive scan of ``transform(x)``."""
    return _scan_impl(
        ctx, arr, out, op, exclusive=True, init=init, transform=transform
    )


def _alg_name(exclusive: bool, transform: ElementOp | None) -> str:
    base = "exclusive_scan" if exclusive else "inclusive_scan"
    return f"transform_{base}" if transform is not None else base


def _scan_impl(
    ctx: ExecutionContext,
    arr: SimArray,
    out: SimArray | None,
    op: BinaryOp,
    exclusive: bool,
    init: float,
    transform: ElementOp | None,
) -> AlgoResult:
    alg = _alg_name(exclusive, transform)
    require_support(ctx, alg)
    n = arr.n
    es = arr.elem.size
    dest = out if out is not None else arr
    if dest.n < n:
        raise ConfigurationError("output array too small for scan")

    t_instr = transform.instr_per_elem if transform is not None else 0.0
    t_fp = transform.fp_per_elem if transform is not None else 0.0
    working_set = float(n * es) * (2.0 if out is not None else 1.0)
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        in_placement = blend_placement([(arr, 1.0)])
        rw_placement = blend_placement([(arr, 1.0), (dest, 1.0)])
        phases = [
            parallel_phase(
                "chunk-reduce",
                partition,
                PerElem(instr=op.instr_per_elem + t_instr, fp=op.fp_per_elem + t_fp, read=es),
                in_placement,
                working_set,
                spread_penalty=SCAN_SPREAD_PENALTY,
            ),
            sequential_phase(
                "carry-scan",
                elems=float(partition.num_chunks),
                per_elem=PerElem(instr=3.0, fp=op.fp_per_elem),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
            parallel_phase(
                "rescan",
                partition,
                PerElem(
                    instr=op.instr_per_elem + t_instr + _SCAN_LOOP_INSTR,
                    fp=op.fp_per_elem + t_fp,
                    read=es,
                    write=es,
                ),
                rw_placement,
                working_set,
                spread_penalty=SCAN_SPREAD_PENALTY,
            ),
        ]
        regions = 2  # two fork/joins around the serial carry step
    else:
        phases = [
            sequential_phase(
                "scan",
                float(n),
                PerElem(
                    instr=op.instr_per_elem + t_instr + _SCAN_LOOP_INSTR,
                    fp=op.fp_per_elem + t_fp,
                    read=es,
                    write=es,
                ),
                blend_placement([(arr, 1.0), (dest, 1.0)]),
                working_set,
            )
        ]
        regions = 1

    value = None
    if arr.materialized and dest.materialized:
        src = arr.view()
        values = transform(src) if transform is not None else src
        if parallel:
            # Step 1: chunk totals.
            totals = [op.reduce(values[c.start : c.stop]) for c in partition.chunks]
            # Step 2: exclusive scan of totals (carries).
            carries = []
            acc = init if exclusive else op.identity
            for total in totals:
                carries.append(acc)
                acc = op.combine(acc, total)
            # Step 3: rescan chunks with carry offsets.
            result = dest.view()
            for chunk, carry in zip(partition.chunks, carries):
                seg = values[chunk.start : chunk.stop]
                if len(seg) == 0:
                    continue
                prefix = op.accumulate(seg)
                if exclusive:
                    shifted = np.empty_like(prefix)
                    shifted[0] = carry
                    if len(prefix) > 1:
                        shifted[1:] = op.reduce_ufunc(prefix[:-1], carry)
                    result[chunk.start : chunk.stop] = shifted
                else:
                    result[chunk.start : chunk.stop] = op.reduce_ufunc(prefix, carry)
        else:
            prefix = op.accumulate(values)
            result = dest.view()
            if exclusive:
                result[0] = init
                if n > 1:
                    result[1:n] = op.reduce_ufunc(prefix[:-1], init)
            else:
                result[:n] = prefix
        value = float(result[n - 1])

    profile = make_profile(
        ctx, alg, n, arr.elem, phases, parallel, regions=regions
    )
    return AlgoResult(
        value=value, report=ctx.simulate(profile, (arr, dest)), profile=profile
    )
