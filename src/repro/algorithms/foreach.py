"""``for_each`` / ``for_each_n``: the map benchmark (paper Section 5.2).

The benchmark kernel (Listing 1) stores its iteration count in a volatile,
loops ``k_it`` times incrementing an accumulator, and writes the result to
the element -- so the functional result of ``for_each`` with that kernel
is every element becoming ``k_it``, while the cost scales with ``k_it``.
Any :class:`~repro.algorithms._ops.ElementOp` works here; the Listing-1
kernel lives in ``repro.suite.kernels``.
"""

from __future__ import annotations

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._ops import ElementOp
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["for_each", "for_each_n", "FOR_EACH_LOOP_INSTR"]

#: Iterator/loop bookkeeping instructions for_each itself adds per element.
FOR_EACH_LOOP_INSTR = 2.0


def for_each(ctx: ExecutionContext, arr: SimArray, op: ElementOp) -> AlgoResult:
    """Apply ``op`` to every element of ``arr`` in place.

    Returns ``None`` as the value (like ``std::for_each`` with a mutating
    body); the array's contents are updated in run mode.
    """
    return for_each_n(ctx, arr, arr.n, op)


def for_each_n(
    ctx: ExecutionContext, arr: SimArray, n: int, op: ElementOp
) -> AlgoResult:
    """Apply ``op`` to the first ``n`` elements of ``arr``."""
    if not 0 < n <= arr.n:
        raise ConfigurationError(f"n must be in [1, {arr.n}], got {n}")
    alg = "for_each"
    es = arr.elem.size
    per_elem = PerElem(
        instr=op.instr_per_elem + FOR_EACH_LOOP_INSTR,
        fp=op.fp_per_elem,
        read=es,
        write=es,
    )
    working_set = float(n * es)
    placement = blend_placement([(arr, 1.0)])
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase(
                "map", partition, per_elem, placement, working_set
            )
        ]
    else:
        phases = [
            sequential_phase("map", float(n), per_elem, placement, working_set)
        ]

    # Run mode: actually apply the kernel chunk by chunk.
    if arr.materialized:
        data = arr.view()
        if parallel:
            for chunk in partition.chunks:
                data[chunk.start : chunk.stop] = op(data[chunk.start : chunk.stop])
        else:
            data[:n] = op(data[:n])

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (arr,)), profile=profile)
