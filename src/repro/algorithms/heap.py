"""Heap-property checks: ``is_heap`` and ``is_heap_until``.

A max-heap over [0, n) satisfies ``a[(i-1)//2] >= a[i]`` for all i >= 1.
Both checks are early-exit scans (find-family cost); ``is_heap_until``
returns the length of the longest heap prefix.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.algorithms.find import _scan_fractions
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["is_heap", "is_heap_until"]


def _first_violation(data: np.ndarray) -> int | None:
    """Smallest i whose parent is smaller (max-heap violation)."""
    n = len(data)
    if n <= 1:
        return None
    idx = np.arange(1, n)
    bad = np.nonzero(data[(idx - 1) // 2] < data[idx])[0]
    return int(bad[0]) + 1 if len(bad) else None


def is_heap_until(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Length of the longest prefix that is a max-heap."""
    n = arr.n
    es = arr.elem.size
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel("find", n)

    violation: int | None = None
    if arr.materialized:
        violation = _first_violation(arr.view())

    # Each check loads the element and its parent: ~2 reads, 2 instr.
    per_elem = PerElem(instr=2.0, read=2 * es)
    if parallel:
        part = ctx.backend.make_partition(n, ctx.threads)
        fractions = _scan_fractions(part, violation, n, exact=arr.materialized)
        phases = [
            parallel_phase(
                "heap-check",
                part,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=part.num_chunks,
            )
        ]
    else:
        scanned = float(n if violation is None else violation + 1)
        phases = [sequential_phase("heap-check", scanned, per_elem, placement, working_set)]

    value = None
    if arr.materialized:
        value = n if violation is None else violation

    profile = make_profile(ctx, "find", n, arr.elem, phases, parallel)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def is_heap(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Whether the whole range is a max-heap."""
    inner = is_heap_until(ctx, arr)
    value = None
    if arr.materialized:
        value = inner.value == arr.n
    return AlgoResult(value=value, report=inner.report, profile=inner.profile)
