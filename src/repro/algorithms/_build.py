"""Shared profile-construction helpers for the algorithm implementations.

Algorithms describe their work as per-element costs over a partition; the
helpers here turn that into :class:`~repro.sim.work.WorkProfile` phases in
a uniform way, so run mode and model mode provably build identical
profiles for deterministic algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import UnsupportedOperationError
from repro.execution.context import ExecutionContext
from repro.execution.partition import Partition
from repro.memory.array import SimArray
from repro.memory.layout import PagePlacement
from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile

__all__ = [
    "PerElem",
    "blend_placement",
    "parallel_phase",
    "sequential_phase",
    "make_profile",
    "require_support",
]


@dataclass(frozen=True)
class PerElem:
    """Intrinsic per-element cost of one pass of an algorithm."""

    instr: float
    fp: float = 0.0
    read: float = 0.0
    write: float = 0.0

    def scaled(self, factor: float) -> "PerElem":
        """All components multiplied by ``factor``."""
        return PerElem(
            instr=self.instr * factor,
            fp=self.fp * factor,
            read=self.read * factor,
            write=self.write * factor,
        )


def blend_placement(
    arrays: Sequence[tuple[SimArray, float]],
) -> PagePlacement | None:
    """Traffic-weighted blend of several arrays' placements.

    A phase that reads array A and writes array B sees a mix of both
    placements; weights are the bytes moved per array.
    """
    items = [(a, w) for a, w in arrays if w > 0]
    if not items:
        return None
    nnodes = max(a.placement.num_nodes for a, _ in items)
    total = sum(w for _, w in items)
    fractions = [0.0] * nnodes
    for arr, weight in items:
        for node, frac in enumerate(arr.placement.node_fractions):
            fractions[node] += frac * weight / total
    policies = {a.placement.policy for a, _ in items}
    policy = items[0][0].placement.policy if len(policies) > 1 else policies.pop()
    return PagePlacement(node_fractions=tuple(fractions), policy=policy)


def parallel_phase(
    name: str,
    partition: Partition,
    per_elem: PerElem,
    placement: PagePlacement | None,
    working_set: float,
    scan_fractions: Sequence[float] | None = None,
    sync_points: int = 0,
    spread_penalty: float = 1.0,
    apply_instr_overhead: bool = True,
    vectorizable: bool = True,
) -> Phase:
    """Build a parallel phase from a partition and per-element costs.

    ``scan_fractions`` (one entry per chunk) scales each chunk's work, for
    early-exit algorithms where a chunk only processes a prefix.
    """
    chunks = []
    for i, chunk in enumerate(partition.chunks):
        elems = float(len(chunk))
        if scan_fractions is not None:
            elems *= scan_fractions[i]
        if elems <= 0 and len(partition.chunks) > 1:
            continue
        chunks.append(
            ChunkWork(
                thread=chunk.thread,
                elems=elems,
                instr=elems * per_elem.instr,
                fp_ops=elems * per_elem.fp,
                bytes_read=elems * per_elem.read,
                bytes_written=elems * per_elem.write,
            )
        )
    if not chunks:
        chunks = [ChunkWork(thread=0, elems=0.0, instr=0.0)]
    return Phase(
        name=name,
        kind=PhaseKind.PARALLEL,
        chunks=tuple(chunks),
        placement=placement,
        working_set=working_set,
        sched_chunks=partition.num_chunks,
        sync_points=sync_points,
        spread_penalty=spread_penalty,
        apply_instr_overhead=apply_instr_overhead,
        vectorizable=vectorizable,
    )


def sequential_phase(
    name: str,
    elems: float,
    per_elem: PerElem,
    placement: PagePlacement | None,
    working_set: float,
    spread_penalty: float = 1.0,
    apply_instr_overhead: bool = False,
    vectorizable: bool = True,
) -> Phase:
    """Build a single-thread phase (sequential runs, fix-ups, combines)."""
    chunk = ChunkWork(
        thread=0,
        elems=elems,
        instr=elems * per_elem.instr,
        fp_ops=elems * per_elem.fp,
        bytes_read=elems * per_elem.read,
        bytes_written=elems * per_elem.write,
    )
    return Phase(
        name=name,
        kind=PhaseKind.SEQUENTIAL,
        chunks=(chunk,),
        placement=placement,
        working_set=working_set,
        spread_penalty=spread_penalty,
        apply_instr_overhead=apply_instr_overhead,
        vectorizable=vectorizable,
    )


def make_profile(
    ctx: ExecutionContext,
    alg: str,
    n: int,
    elem,
    phases: Sequence[Phase],
    parallel: bool,
    regions: int = 1,
    notes: Sequence[str] = (),
) -> WorkProfile:
    """Assemble the final profile for one invocation."""
    return WorkProfile(
        alg=alg,
        n=n,
        elem=elem,
        threads=ctx.threads if parallel else 1,
        policy=ctx.policy,
        phases=tuple(phases),
        regions=regions if parallel else 0,
        notes=tuple(notes),
    )


def require_support(ctx: ExecutionContext, alg: str) -> None:
    """Raise if the backend lacks the algorithm entirely.

    GNU's parallel-mode library has no ``inclusive_scan`` (Section 5.4);
    requesting it raises, which experiments surface as the paper's "N/A"
    cells.
    """
    from repro.backends.base import Support

    if ctx.backend.support(alg) is Support.UNSUPPORTED:
        raise UnsupportedOperationError(
            f"{ctx.backend.name} does not implement {alg}"
        )
