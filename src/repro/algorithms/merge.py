"""``merge``: combine two sorted ranges (parallelised by co-ranking).

Parallel merge splits the output into p equal pieces and finds the
matching split points in both inputs by binary search (co-ranking), so
every thread merges independently -- the same structure GNU's multiway
merge uses internally.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray
from repro.algorithms.sort import merge_sorted_arrays

__all__ = ["merge"]


def merge(
    ctx: ExecutionContext, a: SimArray, b: SimArray, dst: SimArray
) -> AlgoResult:
    """Merge sorted ``a`` and ``b`` into ``dst``."""
    n = a.n + b.n
    if dst.n < n:
        raise ConfigurationError("destination too small for merge")
    alg = "merge"
    es = a.elem.size
    per_elem = PerElem(instr=2.0, read=es, write=dst.elem.size)
    placement = blend_placement([(a, 1.0), (b, 1.0), (dst, 1.0)])
    working_set = float(n * es * 2)
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            # Co-ranking: log-cost split search per chunk, then the merge.
            sequential_phase(
                "corank",
                elems=float(partition.num_chunks),
                per_elem=PerElem(instr=2.0 * np.log2(max(2, n))),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
            parallel_phase("merge", partition, per_elem, placement, working_set),
        ]
    else:
        phases = [sequential_phase("merge", float(n), per_elem, placement, working_set)]

    if a.materialized and b.materialized and dst.materialized:
        merged = merge_sorted_arrays(a.view(), b.view())
        dst.view()[:n] = merged

    profile = make_profile(ctx, alg, n, a.elem, phases, parallel)
    return AlgoResult(
        value=None, report=ctx.simulate(profile, (a, b, dst)), profile=profile
    )
