"""Parallel STL algorithms over the simulator (the pSTL surface).

Every function takes an :class:`~repro.execution.context.ExecutionContext`
first, mirroring the C++ execution-policy argument, and returns an
:class:`~repro.algorithms._result.AlgoResult`.
"""

from repro.algorithms._ops import (
    IDENTITY,
    MAXIMUM,
    MINIMUM,
    MULTIPLIES,
    NEGATE,
    PLUS,
    SQUARE,
    BinaryOp,
    ElementOp,
    Predicate,
    always_true,
    equals,
    greater_than,
    less_than,
)
from repro.algorithms._result import AlgoResult
from repro.algorithms.adjacent import adjacent_difference, adjacent_find
from repro.algorithms.compare import equal, lexicographical_compare, mismatch
from repro.algorithms.copyfill import (
    copy,
    copy_if,
    copy_n,
    fill,
    fill_n,
    generate,
    generate_n,
    move,
)
from repro.algorithms.find import (
    all_of,
    any_of,
    count,
    count_if,
    find,
    find_if,
    find_if_not,
    none_of,
)
from repro.algorithms.foreach import for_each, for_each_n
from repro.algorithms.merge import merge
from repro.algorithms.minmax import max_element, min_element, minmax_element
from repro.algorithms.reduce import reduce, transform_reduce
from repro.algorithms.reverse import reverse, swap_ranges
from repro.algorithms.scan import (
    exclusive_scan,
    inclusive_scan,
    transform_exclusive_scan,
    transform_inclusive_scan,
)
from repro.algorithms.heap import is_heap, is_heap_until
from repro.algorithms.mutation import (
    remove,
    remove_copy,
    remove_if,
    replace,
    replace_copy,
    replace_if,
    reverse_copy,
    rotate,
    rotate_copy,
    unique,
    unique_copy,
)
from repro.algorithms.partitioning import (
    is_partitioned,
    partition,
    partition_copy,
    partition_point,
    stable_partition,
)
from repro.algorithms.search import find_end, find_first_of, search, search_n
from repro.algorithms.selection import (
    inplace_merge,
    nth_element,
    partial_sort,
    partial_sort_copy,
)
from repro.algorithms.setops import (
    includes,
    set_difference,
    set_intersection,
    set_symmetric_difference,
    set_union,
)
from repro.algorithms.sort import (
    is_sorted,
    is_sorted_until,
    merge_sorted_arrays,
    sort,
    stable_sort,
)
from repro.algorithms.transform import transform, transform_binary

__all__ = [
    "IDENTITY",
    "MAXIMUM",
    "MINIMUM",
    "MULTIPLIES",
    "NEGATE",
    "PLUS",
    "SQUARE",
    "BinaryOp",
    "ElementOp",
    "Predicate",
    "always_true",
    "equals",
    "greater_than",
    "less_than",
    "AlgoResult",
    "adjacent_difference",
    "adjacent_find",
    "equal",
    "lexicographical_compare",
    "mismatch",
    "copy",
    "copy_if",
    "copy_n",
    "fill",
    "fill_n",
    "generate",
    "generate_n",
    "move",
    "all_of",
    "any_of",
    "count",
    "count_if",
    "find",
    "find_if",
    "find_if_not",
    "none_of",
    "for_each",
    "for_each_n",
    "merge",
    "max_element",
    "min_element",
    "minmax_element",
    "reduce",
    "transform_reduce",
    "reverse",
    "swap_ranges",
    "exclusive_scan",
    "inclusive_scan",
    "transform_exclusive_scan",
    "transform_inclusive_scan",
    "is_sorted",
    "is_sorted_until",
    "merge_sorted_arrays",
    "sort",
    "stable_sort",
    "transform",
    "transform_binary",
    "is_heap",
    "is_heap_until",
    "remove",
    "remove_copy",
    "remove_if",
    "replace",
    "replace_copy",
    "replace_if",
    "reverse_copy",
    "rotate",
    "rotate_copy",
    "unique",
    "unique_copy",
    "is_partitioned",
    "partition",
    "partition_copy",
    "partition_point",
    "stable_partition",
    "find_end",
    "find_first_of",
    "search",
    "search_n",
    "inplace_merge",
    "nth_element",
    "partial_sort",
    "partial_sort_copy",
    "includes",
    "set_difference",
    "set_intersection",
    "set_symmetric_difference",
    "set_union",
]
