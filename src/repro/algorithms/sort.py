"""``sort`` / ``stable_sort`` / ``is_sorted`` (paper Section 5.6).

Each backend's sort has a different parallel structure (Backend.sort_strategy):

* **parallel quicksort** (TBB): a partition *tree* whose top levels expose
  little parallelism -- level d has only 2^d concurrent tasks -- followed
  by fully parallel local sorts. The tree's span is ~2n(1-1/p) partition
  steps, which is the Amdahl term that caps TBB's sort speedup near 10
  regardless of core count (Table 5).
* **multiway mergesort** (GNU): each thread sorts its chunk, then one
  cooperative p-way merge pass. Only ~2 DRAM round trips and NUMA-friendly
  -- why GNU reaches speedups of 25-67 where everyone else gets ~10.
* **task quicksort** (HPX): the quicksort structure plus HPX's task
  overheads.
* **serial-partition quicksort** (NVC-OMP): the top-level partition passes
  are fully serial, capping speedup near 6-7.

Run mode actually sorts: chunk-local ``np.sort`` plus a real stable
two-way merge (searchsorted-based), so correctness tests exercise genuine
parallel-merge logic rather than a re-sort.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.backends.base import SortStrategy
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["sort", "stable_sort", "is_sorted", "is_sorted_until", "merge_sorted_arrays"]

#: Compare/swap instructions per element per quicksort/mergesort level.
SORT_INSTR_PER_LEVEL = 2.5
#: Instructions per element per binary-merge level (loser-tree step).
MERGE_INSTR_PER_LEVEL = 1.5
#: Extra serialisation of NVC-OMP's top-level partitioning.
SERIAL_PARTITION_FACTOR = 3.5


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


def _sort_phases(ctx: ExecutionContext, arr: SimArray, stable: bool):
    """Build the per-strategy phase list for one sort invocation."""
    n = arr.n
    es = arr.elem.size
    p = ctx.threads
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    strategy = ctx.backend.sort_strategy
    instr_scale = 1.1 if stable else 1.0
    c = SORT_INSTR_PER_LEVEL * instr_scale

    seq = [
        sequential_phase(
            "introsort",
            float(n),
            PerElem(instr=c * _log2(n), read=2 * es, write=2 * es),
            placement,
            working_set,
            vectorizable=False,
        )
    ]
    if strategy is SortStrategy.SEQUENTIAL or p <= 1:
        return seq, False

    partition = ctx.backend.make_partition(n, p)
    local_levels = _log2(n / p)

    if strategy is SortStrategy.MULTIWAY_MERGESORT:
        phases = [
            parallel_phase(
                "local-sort",
                partition,
                PerElem(instr=c * local_levels, read=2 * es, write=2 * es),
                placement,
                working_set,
                vectorizable=False,
            ),
            parallel_phase(
                "multiway-merge",
                partition,
                PerElem(
                    instr=MERGE_INSTR_PER_LEVEL * instr_scale * _log2(p),
                    read=es,
                    write=es,
                ),
                placement,
                working_set,
                sync_points=p,
                vectorizable=False,
            ),
        ]
        return phases, True

    # Quicksort family: a partition tree with limited parallelism on top.
    if strategy is SortStrategy.SERIAL_PARTITION_QUICKSORT:
        tree_span = SERIAL_PARTITION_FACTOR  # per element, serialised harder
    else:
        tree_span = 2.0 * (1.0 - 1.0 / p)
    # The tree's *span* is tree_span * n partition steps; expressing it as
    # a parallel phase over p threads needs per-element instructions of
    # tree_span * p (each thread holds n/p elements). Counters therefore
    # reflect span, not total work -- acceptable, as no paper table counts
    # sort instructions.
    phases = [
        parallel_phase(
            "partition-tree",
            partition,
            PerElem(instr=c * tree_span * p, read=es, write=es),
            placement,
            working_set,
            sync_points=2 * p,
            vectorizable=False,
        ),
        parallel_phase(
            "local-sort",
            partition,
            PerElem(instr=c * local_levels, read=2 * es, write=2 * es),
            placement,
            working_set,
            vectorizable=False,
        ),
    ]
    return phases, True


def merge_sorted_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable O(n) merge of two sorted arrays (run-mode building block).

    Elements of ``b`` are placed after equal elements of ``a``, matching a
    stable mergesort where ``a`` precedes ``b``.
    """
    out = np.empty(len(a) + len(b), dtype=a.dtype)
    positions = np.searchsorted(a, b, side="right") + np.arange(len(b))
    mask = np.ones(len(out), dtype=bool)
    mask[positions] = False
    out[positions] = b
    out[mask] = a
    return out


def _run_parallel_sort(arr: SimArray, partition) -> None:
    """Execute a real chunked mergesort on the backing buffer."""
    data = arr.view()
    runs = [np.sort(data[c.start : c.stop], kind="stable") for c in partition.chunks]
    runs = [r for r in runs if len(r)]
    while len(runs) > 1:
        merged = []
        for i in range(0, len(runs) - 1, 2):
            merged.append(merge_sorted_arrays(runs[i], runs[i + 1]))
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    if runs:
        data[:] = runs[0]


def _sort_impl(ctx: ExecutionContext, arr: SimArray, stable: bool) -> AlgoResult:
    alg = "sort"
    n = arr.n
    parallel = ctx.runs_parallel(alg, n)
    if parallel:
        phases, parallel = _sort_phases(ctx, arr, stable)
    else:
        phases, _ = _sort_phases(ctx.with_(threads=1), arr, stable)

    if arr.materialized:
        if parallel:
            _run_parallel_sort(arr, ctx.backend.make_partition(n, ctx.threads))
        else:
            arr.view()[:] = np.sort(arr.view(), kind="stable")

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel, regions=2)
    return AlgoResult(value=None, report=ctx.simulate(profile, (arr,)), profile=profile)


def sort(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Sort ``arr`` ascending in place."""
    return _sort_impl(ctx, arr, stable=False)


def stable_sort(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Stable sort (modeled ~10 % more expensive per level)."""
    return _sort_impl(ctx, arr, stable=True)


def is_sorted(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Whether ``arr`` is ascending (full scan when it is)."""
    inner = is_sorted_until(ctx, arr)
    value = None
    if arr.materialized:
        value = inner.value == arr.n
    return AlgoResult(value=value, report=inner.report, profile=inner.profile)


def is_sorted_until(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Length of the sorted prefix (n when fully sorted)."""
    alg = "find"  # early-exit scan family
    n = arr.n
    es = arr.elem.size
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel(alg, n)

    violation: int | None = None
    if arr.materialized:
        data = arr.view()
        bad = np.nonzero(data[1:] < data[:-1])[0]
        violation = int(bad[0]) + 1 if len(bad) else None

    per_elem = PerElem(instr=1.5, read=es)
    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        from repro.algorithms.find import _scan_fractions

        fractions = _scan_fractions(partition, violation, n, exact=arr.materialized)
        phases = [
            parallel_phase(
                "adjacent-scan",
                partition,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=partition.num_chunks,
            )
        ]
    else:
        scanned = float(n if violation is None else violation + 1)
        phases = [sequential_phase("adjacent-scan", scanned, per_elem, placement, working_set)]

    value = None
    if arr.materialized:
        value = n if violation is None else violation

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)
