"""Result type returned by every algorithm invocation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.report import SimReport
from repro.sim.work import WorkProfile

__all__ = ["AlgoResult"]


@dataclass(frozen=True)
class AlgoResult:
    """Outcome of one parallel-STL call.

    Attributes
    ----------
    value:
        The algorithm's functional result (run mode), or ``None``/an
        expectation in model mode (documented per algorithm).
    report:
        Simulated timing and counters.
    profile:
        The work profile that produced the report (useful for tests and
        for the counter tables).
    """

    value: Any
    report: SimReport
    profile: WorkProfile

    @property
    def seconds(self) -> float:
        """Simulated wall time of the call."""
        return self.report.seconds
