"""Range comparisons: ``equal`` / ``mismatch`` / ``lexicographical_compare``.

All are early-exit dual-range scans (find-family cost structure): equal
ranges scan everything; a mismatch at position h stops the team there.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["equal", "mismatch", "lexicographical_compare"]


def _first_mismatch(a: SimArray, b: SimArray) -> int | None:
    av, bv = a.view(), b.view()
    n = min(len(av), len(bv))
    diff = np.nonzero(av[:n] != bv[:n])[0]
    return int(diff[0]) if len(diff) else None


def _dual_scan(
    ctx: ExecutionContext, a: SimArray, b: SimArray, label: str, hit: int | None
) -> tuple:
    """Shared profile construction for dual-range early-exit scans."""
    n = min(a.n, b.n)
    es = a.elem.size
    per_elem = PerElem(instr=1.5, read=2 * es)
    placement = blend_placement([(a, 1.0), (b, 1.0)])
    working_set = float(n * es * 2)
    parallel = ctx.runs_parallel("find", n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        from repro.algorithms.find import _scan_fractions

        exact = a.materialized and b.materialized
        fractions = _scan_fractions(partition, hit, n, exact=exact)
        phases = [
            parallel_phase(
                label,
                partition,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=partition.num_chunks,
            )
        ]
    else:
        scanned = float(n if hit is None else hit + 1)
        phases = [sequential_phase(label, scanned, per_elem, placement, working_set)]

    profile = make_profile(ctx, "find", n, a.elem, phases, parallel)
    return profile


def equal(ctx: ExecutionContext, a: SimArray, b: SimArray) -> AlgoResult:
    """Whether the ranges are element-wise equal."""
    if a.n != b.n:
        raise ConfigurationError("equal requires same-length ranges")
    hit = _first_mismatch(a, b) if (a.materialized and b.materialized) else None
    profile = _dual_scan(ctx, a, b, "equal-scan", hit)
    value = None
    if a.materialized and b.materialized:
        value = hit is None
    return AlgoResult(value=value, report=ctx.simulate(profile, (a, b)), profile=profile)


def mismatch(ctx: ExecutionContext, a: SimArray, b: SimArray) -> AlgoResult:
    """Index of the first mismatch (or ``None`` if equal)."""
    hit = _first_mismatch(a, b) if (a.materialized and b.materialized) else None
    profile = _dual_scan(ctx, a, b, "mismatch-scan", hit)
    return AlgoResult(value=hit, report=ctx.simulate(profile, (a, b)), profile=profile)


def lexicographical_compare(
    ctx: ExecutionContext, a: SimArray, b: SimArray
) -> AlgoResult:
    """Whether ``a`` precedes ``b`` lexicographically."""
    hit = None
    value = None
    if a.materialized and b.materialized:
        hit = _first_mismatch(a, b)
        if hit is not None:
            value = bool(a.view()[hit] < b.view()[hit])
        else:
            value = a.n < b.n
    profile = _dual_scan(ctx, a, b, "lex-scan", hit)
    return AlgoResult(value=value, report=ctx.simulate(profile, (a, b)), profile=profile)
