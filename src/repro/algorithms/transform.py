"""``transform`` (unary and binary): map into a destination range."""

from __future__ import annotations

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._ops import BinaryOp, ElementOp
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["transform", "transform_binary"]


def transform(
    ctx: ExecutionContext, src: SimArray, dst: SimArray, op: ElementOp
) -> AlgoResult:
    """``dst[i] = op(src[i])`` for all i."""
    if dst.n < src.n:
        raise ConfigurationError("destination too small for transform")
    alg = "transform"
    n = src.n
    es = src.elem.size
    per_elem = PerElem(
        instr=op.instr_per_elem + 1.0,
        fp=op.fp_per_elem,
        read=es,
        write=dst.elem.size,
    )
    placement = blend_placement([(src, 1.0), (dst, 1.0)])
    working_set = float(n * (es + dst.elem.size))
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [parallel_phase("map", partition, per_elem, placement, working_set)]
    else:
        phases = [sequential_phase("map", float(n), per_elem, placement, working_set)]

    if src.materialized and dst.materialized:
        sview, dview = src.view(), dst.view()
        if parallel:
            for c in partition.chunks:
                dview[c.start : c.stop] = op(sview[c.start : c.stop])
        else:
            dview[:n] = op(sview[:n])

    profile = make_profile(ctx, alg, n, src.elem, phases, parallel)
    return AlgoResult(
        value=None, report=ctx.simulate(profile, (src, dst)), profile=profile
    )


def transform_binary(
    ctx: ExecutionContext,
    a: SimArray,
    b: SimArray,
    dst: SimArray,
    op: BinaryOp,
) -> AlgoResult:
    """``dst[i] = op(a[i], b[i])`` for all i."""
    if a.n != b.n:
        raise ConfigurationError("binary transform inputs must match in size")
    if dst.n < a.n:
        raise ConfigurationError("destination too small for transform")
    alg = "transform"
    n = a.n
    es = a.elem.size
    per_elem = PerElem(
        instr=op.instr_per_elem + 1.0,
        fp=op.fp_per_elem,
        read=2 * es,
        write=dst.elem.size,
    )
    placement = blend_placement([(a, 1.0), (b, 1.0), (dst, 1.0)])
    working_set = float(n * (2 * es + dst.elem.size))
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [parallel_phase("zip-map", partition, per_elem, placement, working_set)]
    else:
        phases = [sequential_phase("zip-map", float(n), per_elem, placement, working_set)]

    if a.materialized and b.materialized and dst.materialized:
        if op.reduce_ufunc is None:
            raise ConfigurationError(f"op {op.name!r} has no runnable form")
        av, bv, dv = a.view(), b.view(), dst.view()
        if parallel:
            for c in partition.chunks:
                dv[c.start : c.stop] = op.reduce_ufunc(
                    av[c.start : c.stop], bv[c.start : c.stop]
                )
        else:
            dv[:n] = op.reduce_ufunc(av[:n], bv[:n])

    profile = make_profile(ctx, alg, n, a.elem, phases, parallel)
    return AlgoResult(
        value=None, report=ctx.simulate(profile, (a, b, dst)), profile=profile
    )
