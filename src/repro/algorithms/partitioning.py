"""Partitioning algorithms: ``is_partitioned``, ``partition``,
``stable_partition``, ``partition_copy``, ``partition_point``.

Parallel (stable) partition is scan-structured: a counting pass
establishes each chunk's output offsets, then a scatter pass writes --
the same two-pass shape as ``inclusive_scan``, which is how it is costed.
``is_partitioned`` is an early-exit scan.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._ops import Predicate
from repro.algorithms._result import AlgoResult
from repro.algorithms.find import _scan_fractions
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = [
    "is_partitioned",
    "partition",
    "stable_partition",
    "partition_copy",
    "partition_point",
]


def _two_pass_profile(
    ctx: ExecutionContext,
    arrays,
    n: int,
    es: int,
    pred: Predicate,
    label: str,
):
    """Count pass + scatter pass, scan-style."""
    placement = blend_placement(arrays)
    working_set = float(sum(a.n * a.elem.size for a, _ in arrays))
    parallel = ctx.runs_parallel("inclusive_scan", n) and ctx.runs_parallel(
        "transform", n
    )
    if parallel:
        part = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase(
                f"{label}-count",
                part,
                PerElem(instr=pred.instr_per_elem + 0.5, fp=pred.fp_per_elem, read=es),
                placement,
                working_set,
            ),
            sequential_phase(
                "offsets",
                elems=float(part.num_chunks),
                per_elem=PerElem(instr=3.0),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
            parallel_phase(
                f"{label}-scatter",
                part,
                PerElem(
                    instr=pred.instr_per_elem + 1.5,
                    fp=pred.fp_per_elem,
                    read=es,
                    write=es,
                ),
                placement,
                working_set,
            ),
        ]
        regions = 2
    else:
        phases = [
            sequential_phase(
                label,
                float(n),
                PerElem(
                    instr=pred.instr_per_elem + 2.0,
                    fp=pred.fp_per_elem,
                    read=es,
                    write=es,
                ),
                placement,
                working_set,
            )
        ]
        regions = 1
    return phases, parallel, regions


def stable_partition(
    ctx: ExecutionContext, arr: SimArray, pred: Predicate
) -> AlgoResult:
    """Reorder so pred-true elements precede pred-false, order preserved.

    Value is the partition point (count of true elements).
    """
    n = arr.n
    es = arr.elem.size
    phases, parallel, regions = _two_pass_profile(
        ctx, [(arr, 1.0)], n, es, pred, "stable-partition"
    )
    value = None
    if arr.materialized:
        data = arr.view()
        mask = pred(data)
        true_part = data[mask]
        false_part = data[~mask]
        data[: len(true_part)] = true_part
        data[len(true_part) :] = false_part
        value = int(len(true_part))
    profile = make_profile(ctx, "inclusive_scan", n, arr.elem, phases, parallel, regions=regions)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def partition(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """Unstable partition; same cost family, same return convention.

    The run-mode implementation is the stable one (a valid unstable
    partition); the model charges the same two passes.
    """
    return stable_partition(ctx, arr, pred)


def partition_copy(
    ctx: ExecutionContext,
    src: SimArray,
    dst_true: SimArray,
    dst_false: SimArray,
    pred: Predicate,
) -> AlgoResult:
    """Split ``src`` into two outputs; value is (n_true, n_false)."""
    if dst_true.n < src.n or dst_false.n < src.n:
        raise ConfigurationError("partition_copy outputs may each need n slots")
    n = src.n
    es = src.elem.size
    arrays = [(src, 1.0), (dst_true, 0.5), (dst_false, 0.5)]
    phases, parallel, regions = _two_pass_profile(ctx, arrays, n, es, pred, "partition-copy")
    value = None
    if src.materialized and dst_true.materialized and dst_false.materialized:
        data = src.view()
        mask = pred(data)
        t, f = data[mask], data[~mask]
        dst_true.view()[: len(t)] = t
        dst_false.view()[: len(f)] = f
        value = (int(len(t)), int(len(f)))
    profile = make_profile(
        ctx, "inclusive_scan", n, src.elem, phases, parallel, regions=regions
    )
    return AlgoResult(
        value=value,
        report=ctx.simulate(profile, (src, dst_true, dst_false)),
        profile=profile,
    )


def is_partitioned(
    ctx: ExecutionContext, arr: SimArray, pred: Predicate
) -> AlgoResult:
    """Whether all pred-true elements precede all pred-false ones."""
    n = arr.n
    es = arr.elem.size
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel("find", n)

    violation: int | None = None
    value = None
    if arr.materialized:
        mask = pred(arr.view())
        falses = np.nonzero(~mask)[0]
        if len(falses):
            later_true = np.nonzero(mask[falses[0] :])[0]
            violation = int(falses[0] + later_true[0]) if len(later_true) else None
        value = violation is None

    per_elem = PerElem(instr=pred.instr_per_elem + 0.5, fp=pred.fp_per_elem, read=es)
    if parallel:
        part = ctx.backend.make_partition(n, ctx.threads)
        fractions = _scan_fractions(part, violation, n, exact=arr.materialized)
        phases = [
            parallel_phase(
                "partition-check",
                part,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=part.num_chunks,
            )
        ]
    else:
        scanned = float(n if violation is None else violation + 1)
        phases = [sequential_phase("partition-check", scanned, per_elem, placement, working_set)]
    profile = make_profile(ctx, "find", n, arr.elem, phases, parallel)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def partition_point(
    ctx: ExecutionContext, arr: SimArray, pred: Predicate
) -> AlgoResult:
    """First pred-false index of a partitioned range (binary search).

    O(log n) probes -- negligible work, never parallelised (as in the STL).
    """
    n = arr.n
    es = arr.elem.size
    probes = float(np.ceil(np.log2(max(2, n))))
    phases = [
        sequential_phase(
            "binary-search",
            probes,
            PerElem(instr=pred.instr_per_elem + 4.0, fp=pred.fp_per_elem, read=es),
            blend_placement([(arr, 1.0)]),
            working_set=float(n * es),
        )
    ]
    value = None
    if arr.materialized:
        mask = pred(arr.view())
        falses = np.nonzero(~mask)[0]
        value = int(falses[0]) if len(falses) else n
    profile = make_profile(ctx, "find", n, arr.elem, phases, parallel=False)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)
