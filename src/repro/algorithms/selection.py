"""Selection algorithms: ``nth_element``, ``partial_sort``,
``partial_sort_copy``, ``inplace_merge``.

``nth_element`` is quickselect: the expected work is a geometric series of
partition passes (~2n touched elements total), with the same limited
top-level parallelism as quicksort. ``partial_sort`` keeps a k-heap while
streaming the range (n log k compares). ``inplace_merge`` is a merge pass
with buffer traffic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.algorithms.sort import SORT_INSTR_PER_LEVEL, merge_sorted_arrays
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["nth_element", "partial_sort", "partial_sort_copy", "inplace_merge"]


def nth_element(ctx: ExecutionContext, arr: SimArray, nth: int) -> AlgoResult:
    """Place the nth-smallest element at index ``nth``; partition around it.

    Value is that element (run mode). Cost: quickselect's expected ~2n
    partition steps, parallel below the top levels like quicksort.
    """
    n = arr.n
    if not 0 <= nth < n:
        raise ConfigurationError(f"nth must be in [0, {n}), got {nth}")
    es = arr.elem.size
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel("sort", n)
    c = SORT_INSTR_PER_LEVEL
    p = ctx.threads if parallel else 1

    if parallel:
        part = ctx.backend.make_partition(n, p)
        # Expected quickselect work ~2n; the first partition pass (n of
        # those 2n) has the quicksort tree's limited parallelism.
        phases = [
            parallel_phase(
                "select-tree",
                part,
                PerElem(instr=c * (1.0 - 1.0 / p) * p, read=es, write=0.3 * es),
                placement,
                working_set,
                sync_points=p,
                vectorizable=False,
            ),
            parallel_phase(
                "select-local",
                part,
                PerElem(instr=c, read=es, write=0.3 * es),
                placement,
                working_set,
                vectorizable=False,
            ),
        ]
    else:
        phases = [
            sequential_phase(
                "quickselect",
                float(2 * n),
                PerElem(instr=c, read=es, write=0.3 * es),
                placement,
                working_set,
                vectorizable=False,
            )
        ]

    value = None
    if arr.materialized:
        data = arr.view()
        data[:] = np.partition(data, nth)
        value = float(data[nth])

    profile = make_profile(ctx, "sort", n, arr.elem, phases, parallel, regions=2)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def _partial_sort_phases(ctx, arr_in, n, k, es, placement, working_set, writes_out):
    parallel = ctx.runs_parallel("sort", n)
    heap_instr = SORT_INSTR_PER_LEVEL * math.log2(max(2, k))
    if parallel:
        part = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase(
                "heap-scan",
                part,
                PerElem(instr=heap_instr, read=es),
                placement,
                working_set,
                vectorizable=False,
            ),
            sequential_phase(
                "merge-heaps",
                elems=float(k * max(1, min(ctx.threads, 16))),
                per_elem=PerElem(instr=SORT_INSTR_PER_LEVEL, read=es, write=es),
                placement=placement,
                working_set=float(k * es),
                vectorizable=False,
            ),
        ]
    else:
        phases = [
            sequential_phase(
                "heap-scan",
                float(n),
                PerElem(instr=heap_instr, read=es, write=writes_out * es * k / n),
                placement,
                working_set,
                vectorizable=False,
            )
        ]
    return phases, parallel


def partial_sort(ctx: ExecutionContext, arr: SimArray, middle: int) -> AlgoResult:
    """Sort the smallest ``middle`` elements into the range's front."""
    n = arr.n
    if not 0 < middle <= n:
        raise ConfigurationError(f"middle must be in (0, {n}], got {middle}")
    es = arr.elem.size
    placement = blend_placement([(arr, 1.0)])
    phases, parallel = _partial_sort_phases(
        ctx, arr, n, middle, es, placement, float(n * es), writes_out=1.0
    )
    if arr.materialized:
        data = arr.view()
        smallest = np.sort(np.partition(data, middle - 1)[:middle], kind="stable")
        rest = np.partition(data, middle - 1)[middle:]
        data[:middle] = smallest
        data[middle:] = rest
    profile = make_profile(ctx, "sort", n, arr.elem, phases, parallel, regions=2)
    return AlgoResult(value=None, report=ctx.simulate(profile, (arr,)), profile=profile)


def partial_sort_copy(
    ctx: ExecutionContext, src: SimArray, dst: SimArray
) -> AlgoResult:
    """Copy the smallest ``dst.n`` elements of ``src`` into ``dst``, sorted."""
    n, k = src.n, dst.n
    if k > n:
        raise ConfigurationError("destination larger than source")
    es = src.elem.size
    placement = blend_placement([(src, 1.0), (dst, 0.2)])
    phases, parallel = _partial_sort_phases(
        ctx, src, n, k, es, placement, float(n * es), writes_out=1.0
    )
    if src.materialized and dst.materialized:
        dst.view()[:] = np.sort(np.partition(src.view(), k - 1)[:k], kind="stable")
    profile = make_profile(ctx, "sort", n, src.elem, phases, parallel, regions=2)
    return AlgoResult(
        value=None, report=ctx.simulate(profile, (src, dst)), profile=profile
    )


def inplace_merge(ctx: ExecutionContext, arr: SimArray, middle: int) -> AlgoResult:
    """Merge the sorted halves ``[0, middle)`` and ``[middle, n)`` in place.

    Costed as a merge with an extra buffer round trip (libstdc++ uses a
    temporary buffer when available).
    """
    n = arr.n
    if not 0 < middle < n:
        raise ConfigurationError("middle must split the range")
    es = arr.elem.size
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    per_elem = PerElem(instr=2.0, read=1.5 * es, write=1.5 * es)
    parallel = ctx.runs_parallel("merge", n)
    if parallel:
        part = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            sequential_phase(
                "corank",
                elems=float(part.num_chunks),
                per_elem=PerElem(instr=2.0 * math.log2(max(2, n))),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
            parallel_phase("inplace-merge", part, per_elem, placement, working_set),
        ]
    else:
        phases = [
            sequential_phase("inplace-merge", float(n), per_elem, placement, working_set)
        ]
    if arr.materialized:
        data = arr.view()
        data[:] = merge_sorted_arrays(data[:middle].copy(), data[middle:].copy())
    profile = make_profile(ctx, "merge", n, arr.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (arr,)), profile=profile)
