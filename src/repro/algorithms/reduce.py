"""``reduce`` / ``transform_reduce``: parallel reductions (Section 5.5).

Structure: each thread reduces its chunks locally, then partial results
are combined on one thread -- a log-depth combine modeled as a small
sequential phase. GNU's library has no ``reduce``; the paper substitutes
``accumulate``, which we mirror by treating reduce as supported there but
carrying GNU's accumulate overhead in its backend model.
"""

from __future__ import annotations

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._ops import PLUS, BinaryOp, ElementOp
from repro.algorithms._result import AlgoResult
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["reduce", "transform_reduce", "COMBINE_INSTR_PER_PARTIAL"]

#: Instructions to merge one partial result into the accumulator.
COMBINE_INSTR_PER_PARTIAL = 4.0


def reduce(
    ctx: ExecutionContext,
    arr: SimArray,
    op: BinaryOp = PLUS,
    init: float = 0.0,
) -> AlgoResult:
    """Reduce ``arr`` with ``op``; value is the reduction in run mode."""
    return _reduce_impl(ctx, arr, op, init, transform=None)


def transform_reduce(
    ctx: ExecutionContext,
    arr: SimArray,
    transform: ElementOp,
    op: BinaryOp = PLUS,
    init: float = 0.0,
) -> AlgoResult:
    """Apply ``transform`` to each element, then reduce with ``op``."""
    return _reduce_impl(ctx, arr, op, init, transform=transform)


def _reduce_impl(
    ctx: ExecutionContext,
    arr: SimArray,
    op: BinaryOp,
    init: float,
    transform: ElementOp | None,
) -> AlgoResult:
    alg = "reduce" if transform is None else "transform_reduce"
    n = arr.n
    es = arr.elem.size
    instr = op.instr_per_elem
    fp = op.fp_per_elem
    if transform is not None:
        instr += transform.instr_per_elem
        fp += transform.fp_per_elem
    per_elem = PerElem(instr=instr, fp=fp, read=es)
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase("chunk-reduce", partition, per_elem, placement, working_set),
            sequential_phase(
                "combine",
                elems=float(partition.num_chunks),
                per_elem=PerElem(instr=COMBINE_INSTR_PER_PARTIAL, fp=op.fp_per_elem),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
        ]
    else:
        phases = [
            sequential_phase("reduce", float(n), per_elem, placement, working_set)
        ]

    value = None
    if arr.materialized:
        data = arr.view()
        if transform is not None:
            transformed = transform(data)
        else:
            transformed = data
        if parallel:
            partials = [
                op.reduce(transformed[c.start : c.stop]) for c in partition.chunks
            ]
            acc = init
            for partial in partials:
                acc = op.combine(acc, partial)
            value = acc
        else:
            value = op.combine(init, op.reduce(transformed))

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)
