"""Set operations on sorted ranges: ``includes``, ``set_union``,
``set_intersection``, ``set_difference``, ``set_symmetric_difference``.

STL set operations have *multiset* semantics (duplicates are matched by
count); run mode implements them via unique/count merges so the results
match libstdc++ exactly. Cost-wise they are merge-family algorithms: one
co-ranked parallel pass over both inputs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = [
    "includes",
    "set_union",
    "set_intersection",
    "set_difference",
    "set_symmetric_difference",
]


def _multiset_counts(values: np.ndarray):
    uniq, counts = np.unique(values, return_counts=True)
    return uniq, counts


def _combine(
    a: np.ndarray, b: np.ndarray, combine: Callable[[int, int], int]
) -> np.ndarray:
    """Merge two sorted multisets with a per-value count combiner."""
    ua, ca = _multiset_counts(a)
    ub, cb = _multiset_counts(b)
    all_values = np.union1d(ua, ub)
    ia = np.searchsorted(ua, all_values)
    ib = np.searchsorted(ub, all_values)
    counts = []
    for v, pa, pb in zip(all_values, ia, ib):
        na = int(ca[pa]) if pa < len(ua) and ua[pa] == v else 0
        nb = int(cb[pb]) if pb < len(ub) and ub[pb] == v else 0
        counts.append(combine(na, nb))
    return np.repeat(all_values, counts)


def _setop_impl(
    ctx: ExecutionContext,
    a: SimArray,
    b: SimArray,
    dst: SimArray | None,
    label: str,
    combine: Callable[[int, int], int] | None,
    out_factor: float,
) -> AlgoResult:
    """Shared profile skeleton: one merge-style pass over both inputs."""
    n = a.n + b.n
    es = a.elem.size
    arrays = [(a, 1.0), (b, 1.0)] + ([(dst, out_factor)] if dst is not None else [])
    placement = blend_placement(arrays)
    working_set = float(n * es * (1.0 + out_factor))
    per_elem = PerElem(instr=2.5, read=es, write=es * out_factor)
    parallel = ctx.runs_parallel("merge", n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            sequential_phase(
                "corank",
                elems=float(partition.num_chunks),
                per_elem=PerElem(instr=2.0 * np.log2(max(2, n))),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
            parallel_phase(label, partition, per_elem, placement, working_set),
        ]
    else:
        phases = [sequential_phase(label, float(n), per_elem, placement, working_set)]

    value = None
    if a.materialized and b.materialized and combine is not None:
        merged = _combine(a.view(), b.view(), combine)
        if dst is not None and dst.materialized:
            if dst.n < len(merged):
                raise ConfigurationError("destination too small for set result")
            dst.view()[: len(merged)] = merged
        value = int(len(merged))

    touched = tuple(x for x, _ in arrays)
    profile = make_profile(ctx, "merge", n, a.elem, phases, parallel)
    return AlgoResult(value=value, report=ctx.simulate(profile, touched), profile=profile)


def includes(ctx: ExecutionContext, a: SimArray, b: SimArray) -> AlgoResult:
    """Whether sorted ``a`` contains every element of sorted ``b`` (by count)."""
    result = _setop_impl(ctx, a, b, None, "includes", None, out_factor=0.0)
    value = None
    if a.materialized and b.materialized:
        missing = _combine(a.view(), b.view(), lambda na, nb: max(0, nb - na))
        value = len(missing) == 0
    return AlgoResult(value=value, report=result.report, profile=result.profile)


def set_union(
    ctx: ExecutionContext, a: SimArray, b: SimArray, dst: SimArray
) -> AlgoResult:
    """Multiset union (per-value max count); value = output length."""
    return _setop_impl(ctx, a, b, dst, "set-union", max, out_factor=1.0)


def set_intersection(
    ctx: ExecutionContext, a: SimArray, b: SimArray, dst: SimArray
) -> AlgoResult:
    """Multiset intersection (per-value min count); value = output length."""
    return _setop_impl(ctx, a, b, dst, "set-intersection", min, out_factor=0.5)


def set_difference(
    ctx: ExecutionContext, a: SimArray, b: SimArray, dst: SimArray
) -> AlgoResult:
    """Elements of ``a`` not matched in ``b`` (count-wise)."""
    return _setop_impl(
        ctx, a, b, dst, "set-difference", lambda na, nb: max(0, na - nb), out_factor=0.5
    )


def set_symmetric_difference(
    ctx: ExecutionContext, a: SimArray, b: SimArray, dst: SimArray
) -> AlgoResult:
    """Elements in exactly one of the two multisets (count-wise)."""
    return _setop_impl(
        ctx,
        a,
        b,
        dst,
        "set-symmetric-difference",
        lambda na, nb: abs(na - nb),
        out_factor=0.75,
    )
