"""Mutating/compacting algorithms: ``replace``/``replace_if``/
``replace_copy``, ``remove``/``remove_if``/``remove_copy``, ``unique``/
``unique_copy``, ``rotate``/``rotate_copy``, ``reverse_copy``.

Replace is a pure map; the compaction family (remove/unique) is
scan-structured like ``copy_if`` (stable output offsets need prefix
counts); rotate is two block moves.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._ops import Predicate, equals
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = [
    "replace",
    "replace_if",
    "replace_copy",
    "remove",
    "remove_if",
    "remove_copy",
    "unique",
    "unique_copy",
    "rotate",
    "rotate_copy",
    "reverse_copy",
]


def _map_profile(ctx, arrays, n, per_elem, label):
    placement = blend_placement(arrays)
    working_set = float(sum(a.n * a.elem.size for a, _ in arrays))
    parallel = ctx.runs_parallel("transform", n)
    if parallel:
        part = ctx.backend.make_partition(n, ctx.threads)
        phases = [parallel_phase(label, part, per_elem, placement, working_set)]
    else:
        part = None
        phases = [sequential_phase(label, float(n), per_elem, placement, working_set)]
    return phases, parallel, part


# --- replace family ----------------------------------------------------------------


def replace_if(
    ctx: ExecutionContext, arr: SimArray, pred: Predicate, new_value: float
) -> AlgoResult:
    """Overwrite pred-matching elements with ``new_value`` in place."""
    n = arr.n
    es = arr.elem.size
    per_elem = PerElem(
        instr=pred.instr_per_elem + 1.0,
        fp=pred.fp_per_elem,
        read=es,
        write=es * max(0.25, pred.selectivity),
    )
    phases, parallel, part = _map_profile(ctx, [(arr, 1.0)], n, per_elem, "replace")
    if arr.materialized:
        data = arr.view()
        data[pred(data)] = new_value
    profile = make_profile(ctx, "transform", n, arr.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (arr,)), profile=profile)


def replace(
    ctx: ExecutionContext, arr: SimArray, old_value: float, new_value: float
) -> AlgoResult:
    """Overwrite every ``old_value`` with ``new_value``."""
    return replace_if(ctx, arr, equals(old_value, selectivity=0.01), new_value)


def replace_copy(
    ctx: ExecutionContext,
    src: SimArray,
    dst: SimArray,
    old_value: float,
    new_value: float,
) -> AlgoResult:
    """Copy with ``old_value`` replaced by ``new_value``."""
    if dst.n < src.n:
        raise ConfigurationError("destination too small")
    n = src.n
    es = src.elem.size
    per_elem = PerElem(instr=2.0, read=es, write=es)
    phases, parallel, part = _map_profile(
        ctx, [(src, 1.0), (dst, 1.0)], n, per_elem, "replace-copy"
    )
    if src.materialized and dst.materialized:
        out = src.view().copy()
        out[out == old_value] = new_value
        dst.view()[:n] = out
    profile = make_profile(ctx, "transform", n, src.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (src, dst)), profile=profile)


# --- compaction family (scan-structured) --------------------------------------------


def _compact_profile(ctx, arrays, n, es, probe_instr, label):
    """Count pass + stable scatter pass (cf. partition/copy_if)."""
    placement = blend_placement(arrays)
    working_set = float(sum(a.n * a.elem.size for a, _ in arrays))
    parallel = ctx.runs_parallel("inclusive_scan", n) and ctx.runs_parallel(
        "transform", n
    )
    if parallel:
        part = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase(
                f"{label}-count",
                part,
                PerElem(instr=probe_instr, read=es),
                placement,
                working_set,
            ),
            sequential_phase(
                "offsets",
                elems=float(part.num_chunks),
                per_elem=PerElem(instr=3.0),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
            parallel_phase(
                f"{label}-compact",
                part,
                PerElem(instr=probe_instr + 1.0, read=es, write=0.75 * es),
                placement,
                working_set,
            ),
        ]
        regions = 2
    else:
        phases = [
            sequential_phase(
                label,
                float(n),
                PerElem(instr=probe_instr + 1.0, read=es, write=0.75 * es),
                placement,
                working_set,
            )
        ]
        regions = 1
    return phases, parallel, regions


def remove_if(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """Stable-compact away pred-matching elements; value = new length."""
    n = arr.n
    phases, parallel, regions = _compact_profile(
        ctx, [(arr, 1.0)], n, arr.elem.size, pred.instr_per_elem + 0.5, "remove"
    )
    value = None
    if arr.materialized:
        data = arr.view()
        kept = data[~pred(data)]
        data[: len(kept)] = kept
        value = int(len(kept))
    profile = make_profile(
        ctx, "inclusive_scan", n, arr.elem, phases, parallel, regions=regions
    )
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def remove(ctx: ExecutionContext, arr: SimArray, value: float) -> AlgoResult:
    """Stable-compact away elements equal to ``value``; value = new length."""
    return remove_if(ctx, arr, equals(value, selectivity=0.01))


def remove_copy(
    ctx: ExecutionContext, src: SimArray, dst: SimArray, value: float
) -> AlgoResult:
    """Copy all elements not equal to ``value``; value = output length."""
    if dst.n < src.n:
        raise ConfigurationError("destination may need up to n slots")
    n = src.n
    phases, parallel, regions = _compact_profile(
        ctx, [(src, 1.0), (dst, 0.75)], n, src.elem.size, 1.5, "remove-copy"
    )
    out_len = None
    if src.materialized and dst.materialized:
        kept = src.view()[src.view() != value]
        dst.view()[: len(kept)] = kept
        out_len = int(len(kept))
    profile = make_profile(
        ctx, "inclusive_scan", n, src.elem, phases, parallel, regions=regions
    )
    return AlgoResult(
        value=out_len, report=ctx.simulate(profile, (src, dst)), profile=profile
    )


def unique(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Compact consecutive duplicates; value = new length."""
    n = arr.n
    phases, parallel, regions = _compact_profile(
        ctx, [(arr, 1.0)], n, arr.elem.size, 1.5, "unique"
    )
    value = None
    if arr.materialized:
        data = arr.view()
        if n == 1:
            value = 1
        else:
            keep = np.concatenate(([True], data[1:] != data[:-1]))
            kept = data[keep]
            data[: len(kept)] = kept
            value = int(len(kept))
    profile = make_profile(
        ctx, "inclusive_scan", n, arr.elem, phases, parallel, regions=regions
    )
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def unique_copy(ctx: ExecutionContext, src: SimArray, dst: SimArray) -> AlgoResult:
    """Copy with consecutive duplicates collapsed; value = output length."""
    if dst.n < src.n:
        raise ConfigurationError("destination may need up to n slots")
    n = src.n
    phases, parallel, regions = _compact_profile(
        ctx, [(src, 1.0), (dst, 0.75)], n, src.elem.size, 1.5, "unique-copy"
    )
    out_len = None
    if src.materialized and dst.materialized:
        data = src.view()
        keep = (
            np.ones(1, dtype=bool)
            if n == 1
            else np.concatenate(([True], data[1:] != data[:-1]))
        )
        kept = data[keep]
        dst.view()[: len(kept)] = kept
        out_len = int(len(kept))
    profile = make_profile(
        ctx, "inclusive_scan", n, src.elem, phases, parallel, regions=regions
    )
    return AlgoResult(
        value=out_len, report=ctx.simulate(profile, (src, dst)), profile=profile
    )


# --- rotations -----------------------------------------------------------------------


def rotate(ctx: ExecutionContext, arr: SimArray, middle: int) -> AlgoResult:
    """Left-rotate so that ``arr[middle]`` becomes the first element."""
    n = arr.n
    if not 0 <= middle <= n:
        raise ConfigurationError("middle out of range")
    es = arr.elem.size
    per_elem = PerElem(instr=1.0, read=es, write=es)
    phases, parallel, part = _map_profile(ctx, [(arr, 1.0)], n, per_elem, "rotate")
    if arr.materialized:
        arr.view()[:] = np.roll(arr.view(), -middle)
    profile = make_profile(ctx, "transform", n, arr.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (arr,)), profile=profile)


def rotate_copy(
    ctx: ExecutionContext, src: SimArray, dst: SimArray, middle: int
) -> AlgoResult:
    """Rotated copy of ``src`` into ``dst``."""
    if dst.n < src.n:
        raise ConfigurationError("destination too small")
    if not 0 <= middle <= src.n:
        raise ConfigurationError("middle out of range")
    n = src.n
    es = src.elem.size
    per_elem = PerElem(instr=1.0, read=es, write=es)
    phases, parallel, part = _map_profile(
        ctx, [(src, 1.0), (dst, 1.0)], n, per_elem, "rotate-copy"
    )
    if src.materialized and dst.materialized:
        dst.view()[:n] = np.roll(src.view(), -middle)
    profile = make_profile(ctx, "transform", n, src.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (src, dst)), profile=profile)


def reverse_copy(ctx: ExecutionContext, src: SimArray, dst: SimArray) -> AlgoResult:
    """Reversed copy of ``src`` into ``dst``."""
    if dst.n < src.n:
        raise ConfigurationError("destination too small")
    n = src.n
    es = src.elem.size
    per_elem = PerElem(instr=1.0, read=es, write=es)
    phases, parallel, part = _map_profile(
        ctx, [(src, 1.0), (dst, 1.0)], n, per_elem, "reverse-copy"
    )
    if src.materialized and dst.materialized:
        dst.view()[:n] = src.view()[::-1]
    profile = make_profile(ctx, "transform", n, src.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (src, dst)), profile=profile)
