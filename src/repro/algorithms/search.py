"""Subsequence searches: ``search``, ``search_n``, ``find_end``,
``find_first_of``.

All are find-family algorithms (early-exit scans with cancellation);
their per-element cost carries the extra inner-probe work of matching a
pattern rather than a single value.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.algorithms.find import _scan_fractions
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["search", "search_n", "find_end", "find_first_of"]


def _pattern_starts(hay: np.ndarray, needle: np.ndarray) -> np.ndarray:
    """Indices where ``needle`` occurs in ``hay`` (run-mode primitive)."""
    m = len(needle)
    if m == 0 or m > len(hay):
        return np.array([], dtype=int)
    candidates = np.nonzero(hay[: len(hay) - m + 1] == needle[0])[0]
    hits = [
        int(c) for c in candidates if np.array_equal(hay[c : c + m], needle)
    ]
    return np.array(hits, dtype=int)


def _scan_search(
    ctx: ExecutionContext,
    arr: SimArray,
    probe_instr: float,
    hit: int | None,
    exact: bool,
    label: str,
    tail_slack: int = 0,
) -> tuple:
    """Shared cost construction for the subsequence-search family."""
    n = arr.n
    es = arr.elem.size
    per_elem = PerElem(instr=probe_instr, read=es)
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel("find", n)
    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        fractions = _scan_fractions(partition, hit, n, exact=exact)
        phases = [
            parallel_phase(
                label,
                partition,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=partition.num_chunks,
            )
        ]
    else:
        scanned = float(n if hit is None else min(n, hit + 1 + tail_slack))
        phases = [sequential_phase(label, scanned, per_elem, placement, working_set)]
    return make_profile(ctx, "find", n, arr.elem, phases, parallel)


def search(
    ctx: ExecutionContext, haystack: SimArray, needle: np.ndarray
) -> AlgoResult:
    """First start index of ``needle`` in ``haystack`` (or ``None``).

    Model mode assumes a needle that does not occur (the conservative full
    scan), matching a benchmark searching for a random pattern.
    """
    needle = np.asarray(needle, dtype=haystack.elem.dtype)
    if len(needle) == 0:
        raise ConfigurationError("needle must be non-empty")
    exact = haystack.materialized
    hit: int | None = None
    if exact:
        starts = _pattern_starts(haystack.view(), needle)
        hit = int(starts[0]) if len(starts) else None
    # Probe cost: one compare per element plus expected extra probes on
    # first-character matches (geometric tail, bounded by needle length).
    probe = 1.0 + min(2.0, 0.1 * len(needle))
    profile = _scan_search(
        ctx, haystack, probe, hit, exact, "search", tail_slack=len(needle)
    )
    return AlgoResult(
        value=hit, report=ctx.simulate(profile, (haystack,)), profile=profile
    )


def find_end(
    ctx: ExecutionContext, haystack: SimArray, needle: np.ndarray
) -> AlgoResult:
    """*Last* start index of ``needle`` in ``haystack`` (or ``None``).

    Unlike ``search``, the scan cannot stop at the first hit -- the whole
    range is always examined (``hit=None`` for the cost model).
    """
    needle = np.asarray(needle, dtype=haystack.elem.dtype)
    if len(needle) == 0:
        raise ConfigurationError("needle must be non-empty")
    value: int | None = None
    if haystack.materialized:
        starts = _pattern_starts(haystack.view(), needle)
        value = int(starts[-1]) if len(starts) else None
    probe = 1.0 + min(2.0, 0.1 * len(needle))
    profile = _scan_search(
        ctx, haystack, probe, None, haystack.materialized, "find-end"
    )
    return AlgoResult(
        value=value, report=ctx.simulate(profile, (haystack,)), profile=profile
    )


def find_first_of(
    ctx: ExecutionContext, haystack: SimArray, candidates: np.ndarray
) -> AlgoResult:
    """First index whose value is in ``candidates`` (or ``None``).

    Model mode assumes a hit density of ``len(candidates) / n`` over the
    increment input (each candidate value occurs once).
    """
    candidates = np.asarray(candidates, dtype=haystack.elem.dtype)
    if len(candidates) == 0:
        raise ConfigurationError("candidate set must be non-empty")
    exact = haystack.materialized
    if exact:
        mask = np.isin(haystack.view(), candidates)
        idx = np.nonzero(mask)[0]
        hit: int | None = int(idx[0]) if len(idx) else None
    else:
        hit = min(haystack.n - 1, max(1, haystack.n // (len(candidates) + 1)))
    probe = 1.0 + np.log2(max(2, len(candidates)))  # binary probe of the set
    profile = _scan_search(ctx, haystack, float(probe), hit, exact, "find-first-of")
    return AlgoResult(
        value=hit, report=ctx.simulate(profile, (haystack,)), profile=profile
    )


def search_n(
    ctx: ExecutionContext, arr: SimArray, count: int, value: float
) -> AlgoResult:
    """First index of a run of ``count`` consecutive ``value``s (or ``None``)."""
    if count <= 0:
        raise ConfigurationError("count must be positive")
    exact = arr.materialized
    hit: int | None = None
    if exact and count <= arr.n:
        mask = arr.view() == value
        run = 0
        for i, m in enumerate(mask):
            run = run + 1 if m else 0
            if run == count:
                hit = i - count + 1
                break
    profile = _scan_search(
        ctx, arr, 1.25, hit, exact, "search-n", tail_slack=count
    )
    return AlgoResult(value=hit, report=ctx.simulate(profile, (arr,)), profile=profile)
