"""Data-movement algorithms: copy/copy_n/copy_if/move, fill/fill_n,
generate/generate_n. All map-family profiles with different traffic mixes."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._ops import Predicate
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["copy", "copy_n", "move", "copy_if", "fill", "fill_n", "generate", "generate_n"]


def _map_move(
    ctx: ExecutionContext,
    alg: str,
    n: int,
    src: SimArray | None,
    dst: SimArray,
    per_elem: PerElem,
    run: Callable | None,
) -> AlgoResult:
    """Common skeleton for the data-movement family."""
    arrays = [(a, 1.0) for a in (src, dst) if a is not None]
    placement = blend_placement(arrays)
    working_set = float(sum(a.n * a.elem.size for a, _ in arrays))
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [parallel_phase(alg, partition, per_elem, placement, working_set)]
    else:
        partition = None
        phases = [sequential_phase(alg, float(n), per_elem, placement, working_set)]

    value = None
    if run is not None and dst.materialized and (src is None or src.materialized):
        value = run(partition)

    profile = make_profile(ctx, alg, n, dst.elem, phases, parallel)
    touched = tuple(a for a, _ in arrays)
    return AlgoResult(value=value, report=ctx.simulate(profile, touched), profile=profile)


def copy(ctx: ExecutionContext, src: SimArray, dst: SimArray) -> AlgoResult:
    """Copy ``src`` into ``dst``."""
    return copy_n(ctx, src, src.n, dst)


def copy_n(ctx: ExecutionContext, src: SimArray, n: int, dst: SimArray) -> AlgoResult:
    """Copy the first ``n`` elements of ``src`` into ``dst``."""
    if not 0 < n <= src.n or dst.n < n:
        raise ConfigurationError("invalid copy_n bounds")
    es = src.elem.size

    def run(partition):
        s, d = src.view(), dst.view()
        if partition is not None:
            for c in partition.chunks:
                d[c.start : c.stop] = s[c.start : c.stop]
        else:
            d[:n] = s[:n]
        return None

    per_elem = PerElem(instr=1.0, read=es, write=dst.elem.size)
    return _map_move(ctx, "copy", n, src, dst, per_elem, run)


def move(ctx: ExecutionContext, src: SimArray, dst: SimArray) -> AlgoResult:
    """Move ``src`` into ``dst`` (trivially-copyable: same cost as copy)."""
    return copy(ctx, src, dst)


def copy_if(
    ctx: ExecutionContext, src: SimArray, dst: SimArray, pred: Predicate
) -> AlgoResult:
    """Copy elements satisfying ``pred``; value is the count copied.

    Parallel copy_if is scan-structured (offsets need a prefix count), so
    it pays an extra pass over the predicate results.
    """
    if dst.n < src.n:
        raise ConfigurationError("destination may need up to n slots")
    alg = "copy"
    n = src.n
    es = src.elem.size
    per_elem = PerElem(
        instr=pred.instr_per_elem + 2.0,
        fp=pred.fp_per_elem,
        read=es,
        write=es * pred.selectivity,
    )

    def run(partition):
        s, d = src.view(), dst.view()
        if partition is not None:
            written = 0
            for c in partition.chunks:
                seg = s[c.start : c.stop]
                kept = seg[pred(seg)]
                d[written : written + len(kept)] = kept
                written += len(kept)
            return written
        kept = s[pred(s)]
        d[: len(kept)] = kept
        return int(len(kept))

    return _map_move(ctx, alg, n, src, dst, per_elem, run)


def fill(ctx: ExecutionContext, arr: SimArray, value: float) -> AlgoResult:
    """Set every element to ``value``."""
    return fill_n(ctx, arr, arr.n, value)


def fill_n(ctx: ExecutionContext, arr: SimArray, n: int, value: float) -> AlgoResult:
    """Set the first ``n`` elements to ``value``."""
    if not 0 < n <= arr.n:
        raise ConfigurationError("invalid fill_n bounds")

    def run(partition):
        d = arr.view()
        if partition is not None:
            for c in partition.chunks:
                d[c.start : c.stop] = value
        else:
            d[:n] = value
        return None

    per_elem = PerElem(instr=0.5, write=arr.elem.size)
    return _map_move(ctx, "fill", n, None, arr, per_elem, run)


def generate(
    ctx: ExecutionContext,
    arr: SimArray,
    gen: Callable[[int, int], np.ndarray],
    instr_per_elem: float = 2.0,
) -> AlgoResult:
    """Fill ``arr`` with ``gen(start, stop)`` values per chunk."""
    return generate_n(ctx, arr, arr.n, gen, instr_per_elem)


def generate_n(
    ctx: ExecutionContext,
    arr: SimArray,
    n: int,
    gen: Callable[[int, int], np.ndarray],
    instr_per_elem: float = 2.0,
) -> AlgoResult:
    """Fill the first ``n`` elements from the generator."""
    if not 0 < n <= arr.n:
        raise ConfigurationError("invalid generate_n bounds")

    def run(partition):
        d = arr.view()
        if partition is not None:
            for c in partition.chunks:
                d[c.start : c.stop] = gen(c.start, c.stop)
        else:
            d[:n] = gen(0, n)
        return None

    per_elem = PerElem(instr=instr_per_elem, write=arr.elem.size)
    return _map_move(ctx, "generate", n, None, arr, per_elem, run)
