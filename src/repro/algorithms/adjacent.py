"""``adjacent_difference`` and ``adjacent_find``.

``adjacent_difference`` is a map over (x[i], x[i-1]) pairs -- trivially
parallel because the input is read-only. ``adjacent_find`` is an
early-exit search over adjacent pairs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["adjacent_difference", "adjacent_find"]


def adjacent_difference(
    ctx: ExecutionContext, src: SimArray, dst: SimArray
) -> AlgoResult:
    """``dst[0] = src[0]; dst[i] = src[i] - src[i-1]``."""
    if dst.n < src.n:
        raise ConfigurationError("destination too small")
    alg = "transform"
    n = src.n
    es = src.elem.size
    per_elem = PerElem(instr=1.5, fp=1.0, read=es, write=dst.elem.size)
    placement = blend_placement([(src, 1.0), (dst, 1.0)])
    working_set = float(n * es * 2)
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase("adjacent-diff", partition, per_elem, placement, working_set)
        ]
    else:
        phases = [
            sequential_phase("adjacent-diff", float(n), per_elem, placement, working_set)
        ]

    if src.materialized and dst.materialized:
        s, d = src.view(), dst.view()
        d[0] = s[0]
        if n > 1:
            d[1:n] = s[1:n] - s[: n - 1]

    profile = make_profile(ctx, alg, n, src.elem, phases, parallel)
    return AlgoResult(
        value=None, report=ctx.simulate(profile, (src, dst)), profile=profile
    )


def adjacent_find(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """First index i with ``arr[i] == arr[i+1]`` (or ``None``)."""
    alg = "find"
    n = arr.n
    es = arr.elem.size
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel(alg, n)

    hit: int | None = None
    if arr.materialized:
        data = arr.view()
        eq = np.nonzero(data[:-1] == data[1:])[0]
        hit = int(eq[0]) if len(eq) else None
    else:
        hit = None  # increments never repeat in the suite's inputs

    per_elem = PerElem(instr=1.5, read=es)
    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        from repro.algorithms.find import _scan_fractions

        fractions = _scan_fractions(partition, hit, n, exact=arr.materialized)
        phases = [
            parallel_phase(
                "pair-scan",
                partition,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=partition.num_chunks,
            )
        ]
    else:
        scanned = float(n if hit is None else hit + 2)
        phases = [sequential_phase("pair-scan", scanned, per_elem, placement, working_set)]

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    return AlgoResult(value=hit, report=ctx.simulate(profile, (arr,)), profile=profile)
