"""``min_element`` / ``max_element`` / ``minmax_element``: index-returning
reductions. Reduce-family profiles; run mode computes real argmin/argmax."""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["min_element", "max_element", "minmax_element"]


def _extreme_impl(
    ctx: ExecutionContext, arr: SimArray, alg_label: str, both: bool
) -> AlgoResult:
    alg = "reduce"  # cost family
    n = arr.n
    es = arr.elem.size
    per_elem = PerElem(instr=1.0 + (1.0 if both else 0.0), fp=1.0, read=es)
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase(alg_label, partition, per_elem, placement, working_set),
            sequential_phase(
                "combine",
                elems=float(partition.num_chunks),
                per_elem=PerElem(instr=3.0),
                placement=None,
                working_set=0.0,
                vectorizable=False,
            ),
        ]
    else:
        phases = [sequential_phase(alg_label, float(n), per_elem, placement, working_set)]

    value = None
    if arr.materialized:
        data = arr.view()
        imin = int(np.argmin(data))
        imax = int(np.argmax(data))
        if both:
            value = (imin, imax)
        elif alg_label == "min_element":
            value = imin
        else:
            value = imax

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def min_element(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Index of the smallest element."""
    return _extreme_impl(ctx, arr, "min_element", both=False)


def max_element(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Index of the largest element."""
    return _extreme_impl(ctx, arr, "max_element", both=False)


def minmax_element(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """(argmin, argmax) in one pass."""
    return _extreme_impl(ctx, arr, "minmax_element", both=True)
