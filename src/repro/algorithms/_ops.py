"""Element operations, predicates and binary ops with declared costs.

The C++ benchmarks pass lambdas whose cost the hardware sees directly; in
the reproduction an operation carries both an executable NumPy form (run
mode) and its intrinsic per-element cost (both modes). Standard operations
used by the suite are provided as module-level instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ElementOp",
    "BinaryOp",
    "Predicate",
    "IDENTITY",
    "NEGATE",
    "SQUARE",
    "PLUS",
    "MULTIPLIES",
    "MINIMUM",
    "MAXIMUM",
    "always_true",
    "less_than",
    "greater_than",
    "equals",
]


@dataclass(frozen=True)
class ElementOp:
    """A unary element transformation with declared cost.

    Attributes
    ----------
    instr_per_elem / fp_per_elem:
        Intrinsic non-FP instructions and FP operations per element.
    apply:
        Vectorised NumPy implementation (run mode); ``None`` makes the op
        model-only.
    """

    name: str
    instr_per_elem: float
    fp_per_elem: float
    apply: Callable[[np.ndarray], np.ndarray] | None = None

    def __post_init__(self) -> None:
        if self.instr_per_elem < 0 or self.fp_per_elem < 0:
            raise ConfigurationError("operation costs must be non-negative")

    def __call__(self, values: np.ndarray) -> np.ndarray:
        if self.apply is None:
            raise ConfigurationError(f"op {self.name!r} has no runnable form")
        return self.apply(values)


@dataclass(frozen=True)
class BinaryOp:
    """A binary combination (reduction/merge operator) with declared cost.

    ``reduce_ufunc`` gives the associated NumPy reduction (e.g. ``np.add``)
    so run mode can execute whole chunks at native speed; ``combine``
    merges two partial results.
    """

    name: str
    instr_per_elem: float
    fp_per_elem: float
    reduce_ufunc: np.ufunc | None = None
    identity: float = 0.0

    def __post_init__(self) -> None:
        if self.instr_per_elem < 0 or self.fp_per_elem < 0:
            raise ConfigurationError("operation costs must be non-negative")

    def reduce(self, values: np.ndarray) -> float:
        """Reduce a chunk with the native ufunc."""
        if self.reduce_ufunc is None:
            raise ConfigurationError(f"op {self.name!r} has no runnable form")
        if len(values) == 0:
            return self.identity
        return float(self.reduce_ufunc.reduce(values))

    def accumulate(self, values: np.ndarray) -> np.ndarray:
        """Prefix-combine a chunk (for scans)."""
        if self.reduce_ufunc is None:
            raise ConfigurationError(f"op {self.name!r} has no runnable form")
        return self.reduce_ufunc.accumulate(values)

    def combine(self, a: float, b: float) -> float:
        """Combine two partial results."""
        if self.reduce_ufunc is None:
            raise ConfigurationError(f"op {self.name!r} has no runnable form")
        return float(self.reduce_ufunc(a, b))


@dataclass(frozen=True)
class Predicate:
    """A unary predicate with declared cost and model-mode selectivity.

    ``selectivity`` is the expected fraction of elements satisfying the
    predicate; model-mode profiles of ``count_if``/``copy_if``/``find_if``
    use it where run mode observes the true value.
    """

    name: str
    instr_per_elem: float
    fp_per_elem: float = 0.0
    apply: Callable[[np.ndarray], np.ndarray] | None = None
    selectivity: float = 0.5

    def __post_init__(self) -> None:
        if self.instr_per_elem < 0 or self.fp_per_elem < 0:
            raise ConfigurationError("predicate costs must be non-negative")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ConfigurationError("selectivity must be in [0, 1]")

    def __call__(self, values: np.ndarray) -> np.ndarray:
        if self.apply is None:
            raise ConfigurationError(f"predicate {self.name!r} has no runnable form")
        return self.apply(values)


IDENTITY = ElementOp("identity", instr_per_elem=1.0, fp_per_elem=0.0, apply=lambda v: v)
NEGATE = ElementOp("negate", instr_per_elem=1.0, fp_per_elem=1.0, apply=lambda v: -v)
SQUARE = ElementOp("square", instr_per_elem=1.0, fp_per_elem=1.0, apply=lambda v: v * v)

PLUS = BinaryOp("plus", instr_per_elem=0.75, fp_per_elem=1.0, reduce_ufunc=np.add, identity=0.0)
MULTIPLIES = BinaryOp(
    "multiplies", instr_per_elem=0.75, fp_per_elem=1.0, reduce_ufunc=np.multiply, identity=1.0
)
MINIMUM = BinaryOp("min", instr_per_elem=1.0, fp_per_elem=1.0, reduce_ufunc=np.minimum, identity=float("inf"))
MAXIMUM = BinaryOp("max", instr_per_elem=1.0, fp_per_elem=1.0, reduce_ufunc=np.maximum, identity=float("-inf"))


def always_true() -> Predicate:
    """Predicate matching everything (selectivity 1)."""
    return Predicate(
        "true", instr_per_elem=1.0, apply=lambda v: np.ones(len(v), dtype=bool), selectivity=1.0
    )


def less_than(threshold: float, selectivity: float = 0.5) -> Predicate:
    """``x < threshold``."""
    return Predicate(
        f"lt({threshold})",
        instr_per_elem=1.0,
        apply=lambda v: v < threshold,
        selectivity=selectivity,
    )


def greater_than(threshold: float, selectivity: float = 0.5) -> Predicate:
    """``x > threshold``."""
    return Predicate(
        f"gt({threshold})",
        instr_per_elem=1.0,
        apply=lambda v: v > threshold,
        selectivity=selectivity,
    )


def equals(value: float, selectivity: float = 0.0) -> Predicate:
    """``x == value`` (selectivity defaults to rare)."""
    return Predicate(
        f"eq({value})",
        instr_per_elem=1.0,
        apply=lambda v: v == value,
        selectivity=selectivity,
    )
