"""In-place rearrangements: ``reverse`` and ``swap_ranges``.

Both are perfectly parallel swap passes over half/full the range.
"""

from __future__ import annotations

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = ["reverse", "swap_ranges"]


def reverse(ctx: ExecutionContext, arr: SimArray) -> AlgoResult:
    """Reverse ``arr`` in place (n/2 swaps, each touching two elements)."""
    alg = "transform"
    n = arr.n
    es = arr.elem.size
    half = max(1, n // 2)
    per_elem = PerElem(instr=2.0, read=2 * es, write=2 * es)
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * es)
    parallel = ctx.runs_parallel(alg, half)

    if parallel:
        partition = ctx.backend.make_partition(half, ctx.threads)
        phases = [parallel_phase("swap", partition, per_elem, placement, working_set)]
    else:
        phases = [sequential_phase("swap", float(half), per_elem, placement, working_set)]

    if arr.materialized:
        arr.view()[:] = arr.view()[::-1].copy()

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (arr,)), profile=profile)


def swap_ranges(ctx: ExecutionContext, a: SimArray, b: SimArray) -> AlgoResult:
    """Exchange the contents of two equal-length ranges."""
    if a.n != b.n:
        raise ConfigurationError("swap_ranges requires same-length ranges")
    alg = "transform"
    n = a.n
    es = a.elem.size
    per_elem = PerElem(instr=2.0, read=2 * es, write=2 * es)
    placement = blend_placement([(a, 1.0), (b, 1.0)])
    working_set = float(2 * n * es)
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [parallel_phase("swap", partition, per_elem, placement, working_set)]
    else:
        phases = [sequential_phase("swap", float(n), per_elem, placement, working_set)]

    if a.materialized and b.materialized:
        av, bv = a.view(), b.view()
        tmp = av.copy()
        av[:] = bv
        bv[:] = tmp

    profile = make_profile(ctx, alg, n, a.elem, phases, parallel)
    return AlgoResult(value=None, report=ctx.simulate(profile, (a, b)), profile=profile)
