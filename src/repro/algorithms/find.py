"""The search family: ``find`` and friends (paper Section 5.3).

Parallel structure: every thread scans its chunks concurrently and polls a
shared cancellation flag; when any thread finds a match the others stop.
With the target at global position ``h`` in a static partition, the owning
thread scans to its local offset and every other thread scans about the
same number of elements before observing the cancellation -- so the
parallel scan moves roughly the same total bytes as a sequential scan to
``h``, but spread across all memory controllers. That is why ``find``'s
speedup is capped by the STREAM bandwidth ratio (~6 on Mach B).

``find`` is also one of the two algorithms the custom allocator *hurts*
(Fig. 1, -24 %): the cancellation protocol is latency-sensitive and the
scanned prefix stops being dense on one node. This is encoded as the
phase's ``spread_penalty``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._build import (
    PerElem,
    blend_placement,
    make_profile,
    parallel_phase,
    sequential_phase,
)
from repro.algorithms._ops import Predicate
from repro.algorithms._result import AlgoResult
from repro.errors import ConfigurationError
from repro.execution.context import ExecutionContext
from repro.memory.array import SimArray

__all__ = [
    "find",
    "find_if",
    "find_if_not",
    "any_of",
    "all_of",
    "none_of",
    "count",
    "count_if",
    "FIND_SPREAD_PENALTY",
    "COMPARE_INSTR",
]

#: Fig. 1 reports the custom allocator slowing find by ~24 % on Mach A;
#: the penalty is calibrated jointly with Table 5's find row (see
#: EXPERIMENTS.md on the tension between those two artifacts).
FIND_SPREAD_PENALTY = 1.45
#: Unrolled compare+branch cost per element of a value search.
COMPARE_INSTR = 1.0


def _scan_fractions(
    partition, hit: int | None, n: int, exact: bool = False
) -> list[float]:
    """Fraction of each chunk scanned given the first hit position.

    ``hit=None`` means no match: every chunk is fully scanned. Otherwise
    every thread walks its chunks in order until the cancellation flag
    stops it, which happens once the owning thread reaches the hit.

    With ``exact=True`` (run mode) the cancellation budget is the owning
    thread's exact scan distance: the lengths of its chunks preceding the
    owner plus the local offset. With ``exact=False`` (model mode) the
    budget is the *expectation* for a target uniform around ``hit``:
    averaging over candidate owning chunks of (owner-thread prefix + half
    that chunk). Both reduce to "everyone scans about as much data as the
    finder" (Section 5.3's bandwidth argument); for a static partition the
    expectation is chunk/2 = n/(2p) per thread.
    """
    if hit is None:
        return [1.0] * len(partition.chunks)

    if exact:
        owner = None
        for chunk in partition.chunks:
            if chunk.start <= hit < chunk.stop:
                owner = chunk
                break
        if owner is None:  # hit beyond the partition: treat as full scan
            return [1.0] * len(partition.chunks)
        budget = float(hit - owner.start + 1)
        for chunk in partition.chunks:
            if chunk.thread == owner.thread and chunk.index < owner.index:
                budget += len(chunk)
    else:
        # Candidate owners: chunks intersecting [0, 2*hit + 1) -- the
        # support of a uniform target with mean ~hit -- weighted by their
        # coverage of that range.
        limit = min(n, 2 * hit + 1)
        prefixes = {t: 0.0 for t in range(partition.threads)}
        weighted = 0.0
        total_weight = 0.0
        for chunk in partition.chunks:
            if len(chunk) == 0:
                continue
            if chunk.start < limit:
                covered = min(chunk.stop, limit) - chunk.start
                weighted += covered * (prefixes[chunk.thread] + covered / 2.0)
                total_weight += covered
            prefixes[chunk.thread] += len(chunk)
        budget = (weighted / total_weight + 1.0) if total_weight else float(n)

    remaining = {t: budget for t in range(partition.threads)}
    fractions = []
    for chunk in partition.chunks:
        if len(chunk) == 0:
            fractions.append(0.0)
            continue
        take = min(float(len(chunk)), max(0.0, remaining[chunk.thread]))
        remaining[chunk.thread] -= take
        fractions.append(take / len(chunk))
    return fractions


def _search_impl(
    ctx: ExecutionContext,
    arr: SimArray,
    alg: str,
    per_elem: PerElem,
    hit_run,
    hit_model: int | None,
) -> tuple[AlgoResult, int | None]:
    """Common early-exit search skeleton.

    ``hit_run`` is a callable(data, lo, hi) -> local hit index or None,
    evaluated chunk-wise in run mode; ``hit_model`` is the expected global
    hit position for model mode (``None`` = full scan).
    """
    n = arr.n
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * arr.elem.size)
    parallel = ctx.runs_parallel(alg, n)

    # Determine the actual hit position.
    exact = arr.materialized
    if exact:
        data = arr.view()
        hit: int | None = None
        for lo in range(0, n, 1 << 20):
            hi = min(n, lo + (1 << 20))
            local = hit_run(data, lo, hi)
            if local is not None:
                hit = lo + local
                break
    else:
        hit = hit_model

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        fractions = _scan_fractions(partition, hit, n, exact=exact)
        phases = [
            parallel_phase(
                "scan",
                partition,
                per_elem,
                placement,
                working_set,
                scan_fractions=fractions,
                sync_points=partition.num_chunks,
                spread_penalty=FIND_SPREAD_PENALTY,
            )
        ]
    else:
        scanned = float(n if hit is None else hit + 1)
        phases = [
            sequential_phase("scan", scanned, per_elem, placement, working_set)
        ]

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    result = AlgoResult(
        value=hit, report=ctx.simulate(profile, (arr,)), profile=profile
    )
    return result, hit


def find(
    ctx: ExecutionContext,
    arr: SimArray,
    value: float,
    expected_position: int | None = None,
) -> AlgoResult:
    """First index of ``value`` in ``arr`` (or ``None`` if absent).

    ``expected_position`` feeds model mode; it defaults to ``n // 2``, the
    expectation for the paper's uniformly random target.
    """
    per_elem = PerElem(instr=COMPARE_INSTR, read=arr.elem.size)
    hit_model = expected_position if expected_position is not None else arr.n // 2
    if not 0 <= hit_model < arr.n:
        raise ConfigurationError("expected_position out of range")

    def hit_run(data, lo, hi):
        idx = np.nonzero(data[lo:hi] == value)[0]
        return int(idx[0]) if len(idx) else None

    result, _ = _search_impl(ctx, arr, "find", per_elem, hit_run, hit_model)
    return result


def find_if(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """First index satisfying ``pred``."""
    return _find_pred(ctx, arr, pred, negate=False, alg="find")


def find_if_not(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """First index *not* satisfying ``pred``."""
    return _find_pred(ctx, arr, pred, negate=True, alg="find")


def _expected_hit(n: int, selectivity: float) -> int | None:
    """Expected first-hit position for a predicate of given selectivity.

    Always either ``None`` (no expected match: empty input or selectivity
    zero) or a valid index in ``[0, n)``. The edges need care: ``n <= 0``
    must not produce ``min(n - 1, ...) = -1``; a selectivity small enough
    that ``1/s`` overflows to inf must clamp to the last index rather
    than raise; and a predicate matching everything hits index 0.
    """
    if n <= 0 or selectivity <= 0.0:
        return None
    if selectivity >= 1.0:
        return 0
    expected = 1.0 / selectivity
    if expected >= n:  # also covers inf from denormal selectivity
        return n - 1
    return min(n - 1, max(0, int(round(expected))))


def _find_pred(
    ctx: ExecutionContext, arr: SimArray, pred: Predicate, negate: bool, alg: str
) -> AlgoResult:
    per_elem = PerElem(
        instr=pred.instr_per_elem, fp=pred.fp_per_elem, read=arr.elem.size
    )
    sel = (1.0 - pred.selectivity) if negate else pred.selectivity
    hit_model = _expected_hit(arr.n, sel)

    def hit_run(data, lo, hi):
        mask = pred(data[lo:hi])
        if negate:
            mask = ~mask
        idx = np.nonzero(mask)[0]
        return int(idx[0]) if len(idx) else None

    result, _ = _search_impl(ctx, arr, alg, per_elem, hit_run, hit_model)
    return result


def any_of(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """Whether any element satisfies ``pred`` (early exit on first hit)."""
    inner = _find_pred(ctx, arr, pred, negate=False, alg="find")
    value = None if not arr.materialized else inner.value is not None
    return AlgoResult(value=value, report=inner.report, profile=inner.profile)


def none_of(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """Whether no element satisfies ``pred``."""
    inner = _find_pred(ctx, arr, pred, negate=False, alg="find")
    value = None if not arr.materialized else inner.value is None
    return AlgoResult(value=value, report=inner.report, profile=inner.profile)


def all_of(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """Whether all elements satisfy ``pred`` (early exit on a violation)."""
    inner = _find_pred(ctx, arr, pred, negate=True, alg="find")
    value = None if not arr.materialized else inner.value is None
    return AlgoResult(value=value, report=inner.report, profile=inner.profile)


def _count_impl(
    ctx: ExecutionContext, arr: SimArray, per_elem: PerElem, counter
) -> AlgoResult:
    """Full-pass counting skeleton (no early exit)."""
    alg = "count"
    n = arr.n
    placement = blend_placement([(arr, 1.0)])
    working_set = float(n * arr.elem.size)
    parallel = ctx.runs_parallel(alg, n)

    if parallel:
        partition = ctx.backend.make_partition(n, ctx.threads)
        phases = [
            parallel_phase("count", partition, per_elem, placement, working_set)
        ]
    else:
        phases = [sequential_phase("count", float(n), per_elem, placement, working_set)]

    value = None
    if arr.materialized:
        data = arr.view()
        if parallel:
            value = int(
                sum(counter(data[c.start : c.stop]) for c in partition.chunks)
            )
        else:
            value = int(counter(data))

    profile = make_profile(ctx, alg, n, arr.elem, phases, parallel)
    return AlgoResult(value=value, report=ctx.simulate(profile, (arr,)), profile=profile)


def count(ctx: ExecutionContext, arr: SimArray, value: float) -> AlgoResult:
    """Number of elements equal to ``value``."""
    per_elem = PerElem(instr=COMPARE_INSTR + 0.25, read=arr.elem.size)
    return _count_impl(ctx, arr, per_elem, lambda v: np.count_nonzero(v == value))


def count_if(ctx: ExecutionContext, arr: SimArray, pred: Predicate) -> AlgoResult:
    """Number of elements satisfying ``pred``."""
    per_elem = PerElem(
        instr=pred.instr_per_elem + 0.25, fp=pred.fp_per_elem, read=arr.elem.size
    )
    return _count_impl(ctx, arr, per_elem, lambda v: np.count_nonzero(pred(v)))
