"""Socket/NUMA/core topology of the modeled machines.

The paper's machines span 2 sockets with 2 or 8 NUMA nodes (Table 2); the
allocator study (Fig. 1) and the 70 %-efficiency table (Table 6) are driven
entirely by where pages and threads land relative to this topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError, PlacementError

__all__ = ["NumaNode", "Topology"]


@dataclass(frozen=True)
class NumaNode:
    """One NUMA domain: a set of cores plus locally attached memory."""

    node_id: int
    cores: tuple[int, ...]
    memory_bytes: int

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise MachineError("node_id must be non-negative")
        if not self.cores:
            raise MachineError(f"NUMA node {self.node_id} has no cores")
        if self.memory_bytes <= 0:
            raise MachineError(f"NUMA node {self.node_id} has no memory")


@dataclass(frozen=True)
class Topology:
    """Full CPU topology: sockets, NUMA nodes and cores.

    Core ids are globally unique and dense in ``[0, total_cores)``.
    """

    sockets: int
    nodes: tuple[NumaNode, ...]
    smt: int = 1

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise MachineError("need at least one socket")
        if not self.nodes:
            raise MachineError("need at least one NUMA node")
        if self.smt < 1:
            raise MachineError("smt must be >= 1")
        if len(self.nodes) % self.sockets != 0:
            raise MachineError("NUMA nodes must divide evenly across sockets")
        ids = [n.node_id for n in self.nodes]
        if ids != list(range(len(self.nodes))):
            raise MachineError("NUMA node ids must be dense and ordered")
        all_cores = [c for n in self.nodes for c in n.cores]
        if sorted(all_cores) != list(range(len(all_cores))):
            raise MachineError("core ids must be dense, unique and ordered")

    @property
    def num_nodes(self) -> int:
        """Number of NUMA nodes."""
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        """Total physical cores."""
        return sum(len(n.cores) for n in self.nodes)

    @property
    def cores_per_node(self) -> int:
        """Cores per NUMA node (uniform across nodes by construction)."""
        return self.total_cores // self.num_nodes

    @property
    def total_memory(self) -> int:
        """Total bytes of DRAM across all nodes."""
        return sum(n.memory_bytes for n in self.nodes)

    def node_of_core(self, core: int) -> int:
        """NUMA node id owning physical core ``core``."""
        for n in self.nodes:
            if core in n.cores:
                return n.node_id
        raise PlacementError(f"core {core} not in topology (0..{self.total_cores - 1})")

    def nodes_in_socket(self, socket: int) -> tuple[NumaNode, ...]:
        """The NUMA nodes belonging to ``socket``."""
        if not 0 <= socket < self.sockets:
            raise PlacementError(f"socket {socket} out of range")
        per = self.num_nodes // self.sockets
        return self.nodes[socket * per : (socket + 1) * per]

    @classmethod
    def uniform(
        cls,
        sockets: int,
        nodes_per_socket: int,
        cores_per_node: int,
        memory_per_node: int,
        smt: int = 1,
    ) -> "Topology":
        """Build the common symmetric topology shape used by all presets."""
        nodes = []
        core = 0
        for node_id in range(sockets * nodes_per_socket):
            cores = tuple(range(core, core + cores_per_node))
            core += cores_per_node
            nodes.append(
                NumaNode(node_id=node_id, cores=cores, memory_bytes=memory_per_node)
            )
        return cls(sockets=sockets, nodes=tuple(nodes), smt=smt)
