"""Machine extensions beyond the paper: an ARM server preset.

The paper's future work names "other architectures, such as ARM
processors" (Section 6). This module models an Ampere Altra Q80-30 --
a single-socket, 80-core Neoverse-N1 part with a *monolithic* mesh (one
NUMA node), which makes it an interesting counterpoint to the paper's
NUMA-heavy Zen machines: the allocator effects of Fig. 1 should vanish.

Constants follow Ampere's published specs and public STREAM results
(~36 GB/s single-core, ~175 GB/s across 8 DDR4-3200 channels).
"""

from __future__ import annotations

from repro.machines.cache import CacheHierarchy, CacheLevel
from repro.machines.cpu import CpuMachine
from repro.machines.registry import register_machine
from repro.machines.topology import Topology
from repro.util.units import GIB

__all__ = ["mach_arm"]


def mach_arm() -> CpuMachine:
    """Mach ARM (extension): Ampere Altra Q80-30, 80 cores, 1 NUMA node."""
    return CpuMachine(
        name="Mach ARM",
        arch="Neoverse-N1",
        frequency_hz=3.0e9,
        ipc=2.0,
        simd_width_bits=128,  # 2x NEON pipes, modeled at native width
        topology=Topology.uniform(
            sockets=1, nodes_per_socket=1, cores_per_node=80, memory_per_node=256 * GIB
        ),
        caches=CacheHierarchy(
            (
                CacheLevel(1, 64 * 1024, 1, 150e9),
                CacheLevel(2, 1024 * 1024, 1, 70e9),
                CacheLevel(3, 32 * 1024 * 1024, 80, 35e9),
            )
        ),
        stream_bw_1core=36.0e9,
        stream_bw_allcores=175.0e9,
        interconnect_bw=100e9,  # on-die mesh; effectively never binding
        remote_bw_factor=0.9,
        seq_turbo_factor=1.0,  # Altra runs a fixed 3.0 GHz, no turbo
        node_bw_boost=1.0,  # single node: boost is meaningless
        description="Ampere Altra Q80-30 (extension beyond the paper)",
    )


register_machine(mach_arm, "arm", "altra", "mach-arm")
