"""Cache-hierarchy description used by the cost model.

The paper reasons about caches at the granularity of "does the working set
fit in aggregate L2 / last-level cache" (Section 5.4 explains the
``inclusive_scan`` crossover on Mach C via its L2 and LLC capacities). The
model therefore tracks per-level capacity, sharing, and a bandwidth figure
used when a phase's working set is cache-resident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError

__all__ = ["CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    Attributes
    ----------
    level:
        1, 2 or 3.
    size_per_instance:
        Capacity in bytes of one cache instance.
    cores_per_instance:
        How many cores share one instance (1 for private caches).
    bandwidth_per_core:
        Sustainable bytes/s a single core can draw from this level.
    """

    level: int
    size_per_instance: int
    cores_per_instance: int
    bandwidth_per_core: float

    def __post_init__(self) -> None:
        if self.level not in (1, 2, 3):
            raise MachineError(f"cache level must be 1..3, got {self.level}")
        if self.size_per_instance <= 0:
            raise MachineError("cache size must be positive")
        if self.cores_per_instance <= 0:
            raise MachineError("cores_per_instance must be positive")
        if self.bandwidth_per_core <= 0:
            raise MachineError("cache bandwidth must be positive")

    def total_size(self, total_cores: int) -> int:
        """Aggregate capacity of this level across ``total_cores`` cores."""
        if total_cores <= 0:
            raise MachineError("total_cores must be positive")
        instances = max(1, total_cores // self.cores_per_instance)
        return instances * self.size_per_instance


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered (L1 -> L3) collection of :class:`CacheLevel`."""

    levels: tuple[CacheLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise MachineError("cache hierarchy needs at least one level")
        nums = [lvl.level for lvl in self.levels]
        if nums != sorted(nums) or len(set(nums)) != len(nums):
            raise MachineError("cache levels must be strictly increasing")

    def level(self, n: int) -> CacheLevel:
        """Return the level-``n`` cache."""
        for lvl in self.levels:
            if lvl.level == n:
                return lvl
        raise MachineError(f"no L{n} in hierarchy")

    @property
    def llc(self) -> CacheLevel:
        """The last-level cache."""
        return self.levels[-1]

    def fitting_level(self, working_set: int, total_cores: int) -> CacheLevel | None:
        """Smallest level whose *aggregate* capacity holds ``working_set``.

        Aggregate capacity is the right notion for data-parallel kernels:
        each thread only needs its own chunk resident. Returns ``None`` when
        the working set spills to DRAM.
        """
        if working_set < 0:
            raise MachineError("working set must be non-negative")
        for lvl in self.levels:
            if working_set <= lvl.total_size(total_cores):
                return lvl
        return None
