"""Machine models: CPU/GPU presets for the paper's Mach A-E (Table 2)."""

from repro.machines.cache import CacheHierarchy, CacheLevel
from repro.machines.cpu import CpuMachine
from repro.machines.gpu import GpuMachine
from repro.machines.topology import NumaNode, Topology
from repro.machines.registry import get_machine, machine_names, register_machine
from repro.machines.stream import stream_bandwidth, stream_scaling_curve

# Extensions beyond the paper (registers "arm"/"altra"; see the module doc).
from repro.machines import extensions as _extensions  # noqa: F401

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CpuMachine",
    "GpuMachine",
    "NumaNode",
    "Topology",
    "get_machine",
    "machine_names",
    "register_machine",
    "stream_bandwidth",
    "stream_scaling_curve",
]
