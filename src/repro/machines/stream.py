"""STREAM-style bandwidth model and calibration checks.

Section 5.3 of the paper uses STREAM to bound memory-bound speedups ("a
speedup of approximately 7 can be expected" on Mach B). This module exposes
the bandwidth-vs-threads curve the cost engine uses, anchored at the two
published STREAM points (1 core, all cores) of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.machines.cpu import CpuMachine

__all__ = ["StreamResult", "stream_bandwidth", "stream_scaling_curve", "threads_per_node"]


def threads_per_node(machine: CpuMachine, threads: int, scatter: bool = True) -> list[int]:
    """Distribute ``threads`` over NUMA nodes.

    ``scatter`` (the default) round-robins threads across nodes, which is
    what an unpinned OpenMP/TBB run effectively converges to on an otherwise
    idle node; ``compact`` fills node 0 first.
    """
    if not 1 <= threads <= machine.total_cores:
        raise ConfigurationError(
            f"threads must be in [1, {machine.total_cores}], got {threads}"
        )
    nodes = machine.topology.num_nodes
    per = [0] * nodes
    if scatter:
        for t in range(threads):
            per[t % nodes] += 1
    else:
        cap = machine.topology.cores_per_node
        remaining = threads
        for node in range(nodes):
            take = min(cap, remaining)
            per[node] = take
            remaining -= take
    return per


def stream_bandwidth(
    machine: CpuMachine, threads: int, scatter: bool = True
) -> float:
    """Aggregate DRAM bandwidth (bytes/s) with ``threads`` streaming locally.

    Per node, throughput is ``min(t_node * bw_single, bw_node * boost)``:
    each thread draws at most the single-core STREAM rate, one node's
    controllers cap the sum (with the concentrated-traffic boost, see
    ``CpuMachine.node_bw_boost``), and the machine-wide STREAM figure caps
    the total. The curve hits the published anchors exactly: 1 thread ->
    Table 2 single-core figure; all cores -> Table 2 all-core figure.
    """
    per = threads_per_node(machine, threads, scatter=scatter)
    node_cap = machine.node_bandwidth * machine.node_bw_boost
    total = sum(
        min(t * machine.stream_bw_1core, node_cap) for t in per if t > 0
    )
    return min(total, machine.stream_bw_allcores)


def stream_scaling_curve(
    machine: CpuMachine, thread_counts: Sequence[int] | None = None
) -> list[tuple[int, float]]:
    """(threads, bandwidth) samples at 1, 2, 4, ... #cores, like the paper."""
    if thread_counts is None:
        counts = []
        t = 1
        while t < machine.total_cores:
            counts.append(t)
            t *= 2
        counts.append(machine.total_cores)
        thread_counts = counts
    return [(t, stream_bandwidth(machine, t)) for t in thread_counts]


@dataclass(frozen=True)
class StreamResult:
    """Result of a modeled STREAM run (one kernel)."""

    kernel: str
    threads: int
    bytes_moved: int
    seconds: float

    @property
    def bandwidth(self) -> float:
        """Achieved bytes/s."""
        if self.seconds <= 0:
            raise ConfigurationError("seconds must be positive")
        return self.bytes_moved / self.seconds


# Bytes moved per element for the four STREAM kernels (read + write traffic,
# counting the write-allocate read the way STREAM's official counts do not --
# we follow STREAM's convention: copy/scale 16 B, add/triad 24 B for doubles).
STREAM_KERNEL_BYTES_PER_ELEM = {
    "copy": 16,
    "scale": 16,
    "add": 24,
    "triad": 24,
}


def run_stream_kernel(
    machine: CpuMachine, kernel: str, n: int, threads: int
) -> StreamResult:
    """Model one STREAM kernel execution of ``n`` doubles."""
    if kernel not in STREAM_KERNEL_BYTES_PER_ELEM:
        raise ConfigurationError(
            f"unknown STREAM kernel {kernel!r}; known: {sorted(STREAM_KERNEL_BYTES_PER_ELEM)}"
        )
    if n <= 0:
        raise ConfigurationError("n must be positive")
    nbytes = n * STREAM_KERNEL_BYTES_PER_ELEM[kernel]
    bw = stream_bandwidth(machine, threads)
    return StreamResult(kernel=kernel, threads=threads, bytes_moved=nbytes, seconds=nbytes / bw)
