"""Name-based lookup of machine presets (``"A"``, ``"mach-b"``, ``"zen3"``...)."""

from __future__ import annotations

from typing import Callable, Union

from repro.errors import UnknownMachineError
from repro.machines.cpu import CpuMachine
from repro.machines.gpu import GpuMachine
from repro.machines import presets

__all__ = ["get_machine", "machine_names", "register_machine"]

Machine = Union[CpuMachine, GpuMachine]

_FACTORIES: dict[str, Callable[[], Machine]] = {}


def register_machine(factory: Callable[[], Machine], *names: str) -> None:
    """Register a machine factory under one or more lookup names."""
    if not names:
        raise ValueError("at least one name is required")
    for name in names:
        key = _normalize(name)
        if key in _FACTORIES:
            raise ValueError(f"machine name {name!r} already registered")
        _FACTORIES[key] = factory


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def get_machine(name: str) -> Machine:
    """Return a fresh machine model for ``name``.

    Accepts the single-letter ids used in the paper ("A".."E"), the
    "mach-a" style, and architecture nicknames ("skylake", "zen3"...).
    """
    key = _normalize(name)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise UnknownMachineError(
            f"unknown machine {name!r}; known: {machine_names()}"
        ) from None
    return factory()


def machine_names() -> list[str]:
    """Sorted list of all registered lookup names."""
    return sorted(_FACTORIES)


register_machine(presets.mach_a, "a", "mach-a", "skylake")
register_machine(presets.mach_b, "b", "mach-b", "zen-1", "zen1")
register_machine(presets.mach_c, "c", "mach-c", "zen-3", "zen3")
register_machine(presets.mach_d, "d", "mach-d", "tesla", "t4")
register_machine(presets.mach_e, "e", "mach-e", "ampere", "a2")
register_machine(presets.gpu_host_cpu, "gpu-host", "host")
