"""GPU machine model for the CUDA-backend experiments (Sections 5.8, Figs 8/9).

The paper's GPU findings hinge on three quantities: kernel-launch cost,
host<->device transfer bandwidth under CUDA Unified Memory, and on-device
compute/memory throughput. The model carries exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.util.validation import check_positive

__all__ = ["GpuMachine"]


@dataclass(frozen=True)
class GpuMachine:
    """A modeled CUDA-capable GPU.

    Attributes
    ----------
    cuda_cores, frequency_hz:
        From Table 2 (e.g., Tesla T4: 2560 cores at 1.11 GHz).
    mem_bytes:
        Device memory capacity.
    mem_bandwidth:
        Device DRAM bandwidth in bytes/s (the Table 2 STREAM figure).
    pcie_bandwidth:
        Effective host<->device bandwidth for unified-memory page migration.
    kernel_launch_latency:
        Seconds to launch one kernel (includes UM bookkeeping).
    flops_per_core_per_cycle:
        FP32 throughput per CUDA core per cycle (1.0 = one FMA issue port
        counted as a single op; FP64 is derated via ``fp64_ratio``).
    fp64_ratio:
        FP64 throughput as a fraction of FP32 (1/32 on both modeled parts).
    page_size:
        Unified-memory migration granularity.
    """

    name: str
    arch: str
    cuda_cores: int
    frequency_hz: float
    mem_bytes: int
    mem_bandwidth: float
    pcie_bandwidth: float
    kernel_launch_latency: float
    flops_per_core_per_cycle: float = 1.0
    fp64_ratio: float = 1.0 / 32.0
    page_size: int = 2 * 1024 * 1024
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_positive(self.cuda_cores, "cuda_cores")
        check_positive(self.frequency_hz, "frequency_hz")
        check_positive(self.mem_bytes, "mem_bytes")
        check_positive(self.mem_bandwidth, "mem_bandwidth")
        check_positive(self.pcie_bandwidth, "pcie_bandwidth")
        check_positive(self.kernel_launch_latency, "kernel_launch_latency")
        check_positive(self.page_size, "page_size")
        if not 0.0 < self.fp64_ratio <= 1.0:
            raise MachineError("fp64_ratio must be in (0, 1]")

    def compute_rate(self, elem_size: int) -> float:
        """Aggregate simple-op throughput (ops/s) for the element width.

        32-bit types run at full rate; 64-bit floats are derated by
        ``fp64_ratio``, matching the paper's observation that GPUs favour
        ``float`` (Section 5.8 reruns the GPU study in 32-bit).
        """
        if elem_size <= 0:
            raise MachineError("elem_size must be positive")
        rate = self.cuda_cores * self.frequency_hz * self.flops_per_core_per_cycle
        if elem_size >= 8:
            rate *= self.fp64_ratio
        return rate

    @property
    def total_cores(self) -> int:
        """CUDA core count; named like the CPU property for uniform reporting."""
        return self.cuda_cores
