"""CPU machine model: topology + cache hierarchy + calibrated rates.

Constants that appear in the paper (Table 2) are taken verbatim: core
frequency, core counts, sockets/NUMA nodes, per-node memory and the STREAM
single-core / all-core bandwidths that anchor the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machines.cache import CacheHierarchy
from repro.machines.topology import Topology
from repro.util.validation import check_positive

__all__ = ["CpuMachine"]


@dataclass(frozen=True)
class CpuMachine:
    """A modeled shared-memory multi-core machine.

    Attributes
    ----------
    name, arch:
        Identification ("Mach A", "Skylake").
    frequency_hz:
        Core clock (Table 2).
    ipc:
        Sustained scalar instructions per cycle for the benchmark kernels.
    simd_width_bits:
        Widest vector unit (drives packed-FP accounting for backends that
        vectorise, cf. Table 4 where HPX/ICC emit 256-bit packed ops).
    topology, caches:
        See :class:`Topology` and :class:`CacheHierarchy`.
    stream_bw_1core / stream_bw_allcores:
        STREAM triad bandwidth in bytes/s with one core and with all cores
        (Table 2's "STREAM BW 1 | all" row).
    interconnect_bw:
        Total bytes/s the cross-node interconnect sustains.
    remote_bw_factor:
        Multiplier (< 1) on a single stream's bandwidth when the page is on
        a remote node.
    seq_turbo_factor:
        Clock multiplier enjoyed by a run using a single thread (turbo
        headroom). This is why the paper's 128-core speedups against the
        sequential GCC baseline cap near ~100-107 (Table 5): the baseline
        runs at boost clock while the full-machine run does not.
    node_bw_boost:
        How much more than ``stream_bw_allcores / nodes`` one node's memory
        controllers sustain when traffic is concentrated on it. The global
        all-core STREAM figure still caps aggregate bandwidth; the boost
        calibrates the default-allocator penalty of Fig. 1 (observed ~1.6x,
        not the naive 2x of splitting the STREAM figure per node).
    """

    name: str
    arch: str
    frequency_hz: float
    ipc: float
    simd_width_bits: int
    topology: Topology
    caches: CacheHierarchy
    stream_bw_1core: float
    stream_bw_allcores: float
    interconnect_bw: float
    remote_bw_factor: float = 0.6
    seq_turbo_factor: float = 1.0
    node_bw_boost: float = 1.2
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_positive(self.frequency_hz, "frequency_hz")
        check_positive(self.ipc, "ipc")
        check_positive(self.stream_bw_1core, "stream_bw_1core")
        check_positive(self.stream_bw_allcores, "stream_bw_allcores")
        check_positive(self.interconnect_bw, "interconnect_bw")
        if self.simd_width_bits not in (128, 256, 512):
            raise MachineError(
                f"simd_width_bits must be 128/256/512, got {self.simd_width_bits}"
            )
        if not 0.0 < self.remote_bw_factor <= 1.0:
            raise MachineError("remote_bw_factor must be in (0, 1]")
        if self.stream_bw_allcores < self.stream_bw_1core:
            raise MachineError("all-core bandwidth below single-core bandwidth")
        if self.seq_turbo_factor < 1.0:
            raise MachineError("seq_turbo_factor must be >= 1")
        if self.node_bw_boost < 1.0:
            raise MachineError("node_bw_boost must be >= 1")

    @property
    def total_cores(self) -> int:
        """Physical core count (the paper's maximum thread count)."""
        return self.topology.total_cores

    @property
    def num_numa_nodes(self) -> int:
        """Number of NUMA nodes."""
        return self.topology.num_nodes

    @property
    def node_bandwidth(self) -> float:
        """DRAM bandwidth of one NUMA node's controllers (bytes/s)."""
        return self.stream_bw_allcores / self.topology.num_nodes

    @property
    def scalar_instr_rate(self) -> float:
        """Sustained scalar instructions/s of a single core."""
        return self.frequency_hz * self.ipc

    def simd_lanes(self, elem_size: int) -> int:
        """Vector lanes for elements of ``elem_size`` bytes."""
        if elem_size <= 0:
            raise MachineError("elem_size must be positive")
        return max(1, self.simd_width_bits // (8 * elem_size))

    def ideal_bandwidth_speedup(self) -> float:
        """STREAM-predicted speedup ceiling for memory-bound kernels.

        Section 5.3 uses exactly this figure: on Mach B, STREAM predicts a
        ~7x speedup (204/26), and ``X::find`` tops out around 6.
        """
        return self.stream_bw_allcores / self.stream_bw_1core
