"""Machine presets Mach A-E, mirroring Table 2 of the paper.

Hardware constants (frequency, core counts, sockets/NUMA split, per-core
memory, STREAM bandwidths) are Table 2 values. Quantities the paper does
not publish (cache bandwidths, interconnect bandwidth, sustained IPC, GPU
transfer rates) are calibrated so the reproduced figures keep the paper's
shapes; each is documented at its definition.
"""

from __future__ import annotations

from repro.machines.cache import CacheHierarchy, CacheLevel
from repro.machines.cpu import CpuMachine
from repro.machines.gpu import GpuMachine
from repro.machines.topology import Topology
from repro.util.units import GIB

__all__ = [
    "mach_a",
    "mach_b",
    "mach_c",
    "mach_d",
    "mach_e",
    "gpu_host_cpu",
    "ALL_CPU_MACHINES",
    "ALL_GPU_MACHINES",
]

_GB = 1e9  # STREAM bandwidths in Table 2 are decimal GB/s


def mach_a() -> CpuMachine:
    """Mach A (Skylake): 2x Intel Xeon 6130F, 32 cores, 2 NUMA nodes."""
    return CpuMachine(
        name="Mach A",
        arch="Skylake",
        frequency_hz=2.10e9,
        ipc=2.0,  # sustained scalar IPC for the pointer-light bench kernels
        simd_width_bits=512,
        topology=Topology.uniform(
            sockets=2, nodes_per_socket=1, cores_per_node=16, memory_per_node=24 * GIB
        ),
        caches=CacheHierarchy(
            (
                CacheLevel(1, 32 * 1024, 1, 150e9),
                CacheLevel(2, 1024 * 1024, 1, 75e9),
                CacheLevel(3, 22 * 1024 * 1024, 16, 35e9),
            )
        ),
        stream_bw_1core=11.7 * _GB,
        stream_bw_allcores=135.0 * _GB,
        interconnect_bw=50e9,  # UPI-class cross-socket link (calibrated)
        remote_bw_factor=0.6,
        seq_turbo_factor=1.0,  # 6130F: little headroom above the 2.1 GHz base
        node_bw_boost=1.22,
        description="Intel Xeon 6130F, 2 sockets / 2 NUMA nodes, 48 GiB",
    )


def mach_b() -> CpuMachine:
    """Mach B (Zen 1): 2x AMD EPYC 7551, 64 cores, 8 NUMA nodes."""
    return CpuMachine(
        name="Mach B",
        arch="Zen 1",
        frequency_hz=2.00e9,
        ipc=1.8,  # Zen 1 sustains slightly lower IPC on these kernels
        simd_width_bits=256,  # Zen 1 splits 256-bit ops, modeled at AVX2 width
        topology=Topology.uniform(
            sockets=2, nodes_per_socket=4, cores_per_node=8, memory_per_node=4 * GIB
        ),
        caches=CacheHierarchy(
            (
                CacheLevel(1, 32 * 1024, 1, 120e9),
                CacheLevel(2, 512 * 1024, 1, 60e9),
                CacheLevel(3, 8 * 1024 * 1024, 4, 30e9),
            )
        ),
        stream_bw_1core=26.0 * _GB,
        stream_bw_allcores=204.0 * _GB,
        interconnect_bw=25e9,  # IF cross-node for scattered writes (calibrated)
        remote_bw_factor=0.55,
        seq_turbo_factor=1.17,  # EPYC 7551: 2.0 base / ~2.55 single-core boost
        node_bw_boost=1.5,
        description="AMD EPYC 7551, 2 sockets / 8 NUMA nodes, 32 GiB",
    )


def mach_c() -> CpuMachine:
    """Mach C (Zen 3): 2x AMD EPYC 7713, 128 cores, 8 NUMA nodes (SMT off)."""
    return CpuMachine(
        name="Mach C",
        arch="Zen 3",
        frequency_hz=2.00e9,
        ipc=2.2,
        simd_width_bits=256,
        topology=Topology.uniform(
            sockets=2, nodes_per_socket=4, cores_per_node=16, memory_per_node=64 * GIB
        ),
        caches=CacheHierarchy(
            (
                CacheLevel(1, 32 * 1024, 1, 180e9),
                CacheLevel(2, 512 * 1024, 1, 90e9),
                CacheLevel(3, 32 * 1024 * 1024, 8, 45e9),
            )
        ),
        stream_bw_1core=42.6 * _GB,
        stream_bw_allcores=249.0 * _GB,
        interconnect_bw=25e9,
        remote_bw_factor=0.55,
        seq_turbo_factor=1.27,  # EPYC 7713: 2.0 base / ~3.67 boost, derated
        node_bw_boost=1.5,
        description="AMD EPYC 7713, 2 sockets / 8 NUMA nodes, 512 GiB",
    )


def mach_d() -> GpuMachine:
    """Mach D (Tesla): NVIDIA Tesla T4, 2560 CUDA cores, 16 GiB."""
    return GpuMachine(
        name="Mach D",
        arch="Turing",
        cuda_cores=2560,
        frequency_hz=1.11e9,
        mem_bytes=16 * GIB,
        mem_bandwidth=264.0 * _GB,  # Table 2 STREAM (all) figure
        pcie_bandwidth=6.0e9,  # effective UM page-migration rate (calibrated)
        kernel_launch_latency=20e-6,
        flops_per_core_per_cycle=0.70,  # sustained simple-kernel rate (calibrated)
        fp64_ratio=1.0 / 32.0,
        description="NVIDIA Tesla T4, CUDA 11.8",
    )


def mach_e() -> GpuMachine:
    """Mach E (Ampere): NVIDIA A2, 1280 CUDA cores, 8 GiB."""
    return GpuMachine(
        name="Mach E",
        arch="Ampere",
        cuda_cores=1280,
        frequency_hz=1.77e9,
        mem_bytes=8 * GIB,
        mem_bandwidth=172.0 * _GB,
        pcie_bandwidth=5.0e9,  # PCIe4 x8 part, UM-effective (calibrated)
        kernel_launch_latency=20e-6,
        flops_per_core_per_cycle=0.50,
        fp64_ratio=1.0 / 32.0,
        description="NVIDIA Ampere A2, CUDA 12.2",
    )


def gpu_host_cpu() -> CpuMachine:
    """Host CPU used as the parallel-CPU reference in the GPU figures.

    The paper does not publish the GPU hosts' CPU specs (Table 2 marks the
    CPU rows N/A); Figures 8 and 9 nevertheless plot host-CPU sequential and
    parallel curves. We model a modest 16-core single-socket host, which is
    what the reported 23.5x / 13.3x GPU-vs-CPU ratios are consistent with.
    """
    return CpuMachine(
        name="GPU host",
        arch="host",
        frequency_hz=2.40e9,
        ipc=2.0,
        simd_width_bits=256,
        topology=Topology.uniform(
            sockets=1, nodes_per_socket=1, cores_per_node=16, memory_per_node=64 * GIB
        ),
        caches=CacheHierarchy(
            (
                CacheLevel(1, 32 * 1024, 1, 150e9),
                CacheLevel(2, 1024 * 1024, 1, 75e9),
                CacheLevel(3, 22 * 1024 * 1024, 16, 35e9),
            )
        ),
        stream_bw_1core=12.0 * _GB,
        stream_bw_allcores=80.0 * _GB,
        interconnect_bw=50e9,
        description="Modeled host CPU for Mach D / Mach E GPU nodes",
    )


ALL_CPU_MACHINES = ("A", "B", "C")
ALL_GPU_MACHINES = ("D", "E")
