"""Common scalar/element types used across the suite.

The paper benchmarks with 64-bit floats by default and 32-bit floats on GPUs
(Section 5.8). ``ElemType`` captures the element types pSTL-Bench supports
and the properties the cost model needs (size, FLOP accounting, whether the
NVC GPU ``volatile`` elision quirk applies — see ``repro.suite.kernels``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["ElemKind", "ElemType", "FLOAT32", "FLOAT64", "INT32", "INT64", "elem_type"]


class ElemKind(enum.Enum):
    """Classification of an element type as integer or floating point."""

    INT = "int"
    FLOAT = "float"


@dataclass(frozen=True)
class ElemType:
    """An element type usable in benchmarks.

    Attributes
    ----------
    name:
        Human-readable C-style name (``"double"``, ``"float"``...).
    dtype:
        The backing NumPy dtype used by run-mode execution.
    size:
        Size in bytes of one element.
    kind:
        Integer or floating point; drives FP-counter accounting.
    """

    name: str
    dtype: np.dtype
    size: int
    kind: ElemKind

    @property
    def is_float(self) -> bool:
        """Whether arithmetic on this type counts as floating-point ops."""
        return self.kind is ElemKind.FLOAT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


FLOAT64 = ElemType("double", np.dtype(np.float64), 8, ElemKind.FLOAT)
FLOAT32 = ElemType("float", np.dtype(np.float32), 4, ElemKind.FLOAT)
INT64 = ElemType("int64_t", np.dtype(np.int64), 8, ElemKind.INT)
INT32 = ElemType("int", np.dtype(np.int32), 4, ElemKind.INT)

_BY_NAME = {t.name: t for t in (FLOAT64, FLOAT32, INT64, INT32)}
_ALIASES = {
    "double": FLOAT64,
    "float64": FLOAT64,
    "f64": FLOAT64,
    "float": FLOAT32,
    "float32": FLOAT32,
    "f32": FLOAT32,
    "int": INT32,
    "int32": INT32,
    "i32": INT32,
    "int64": INT64,
    "i64": INT64,
    "size_t": INT64,
}


def elem_type(name: str) -> ElemType:
    """Look up an :class:`ElemType` by name or common alias.

    Raises
    ------
    KeyError
        If the name is unknown.
    """
    key = name.strip().lower()
    if key in _ALIASES:
        return _ALIASES[key]
    raise KeyError(f"unknown element type {name!r}; known: {sorted(_ALIASES)}")
