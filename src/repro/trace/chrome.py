"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

Converts :class:`~repro.trace.core.SpanRecord` timelines into the JSON
trace-event format both viewers load: one complete (``"ph": "X"``) event
per span with microsecond timestamps, plus metadata events that name and
order the tracks. Each tracer track becomes one ``tid`` row, so the
viewer shows the call/bench structure ("main"), the engine's phase
sequence ("phases") and one lane per simulated thread, exactly as the
cost model scheduled them.

Simulated seconds map to trace microseconds (the format's native unit);
a 2 ms simulated ``for_each`` renders as a 2 ms slice.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.trace.core import MAIN_TRACK, PHASE_TRACK, SpanRecord, Tracer

__all__ = ["chrome_trace_events", "to_chrome_trace", "write_chrome_trace"]

#: Synthetic process id for the whole simulation (one process, many tracks).
TRACE_PID = 1

_SECONDS_TO_US = 1e6


def _coerce_spans(source: Tracer | Iterable[SpanRecord]) -> tuple[SpanRecord, ...]:
    """Accept either a tracer or an iterable of spans."""
    if isinstance(source, Tracer):
        return source.spans
    return tuple(source)


def _track_order(spans: Sequence[SpanRecord]) -> list[str]:
    """Stable track ordering: main, phases, thread lanes by id, rest by appearance."""
    seen: list[str] = []
    for span in spans:
        if span.track not in seen:
            seen.append(span.track)
    fixed = [t for t in (MAIN_TRACK, PHASE_TRACK) if t in seen]
    threads = sorted(
        (t for t in seen if t.startswith("thread ")),
        key=lambda t: (len(t), t),
    )
    rest = [t for t in seen if t not in fixed and t not in threads]
    return fixed + threads + rest


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into JSON-encodable shapes."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def chrome_trace_events(source: Tracer | Iterable[SpanRecord]) -> list[dict]:
    """The ``traceEvents`` list: metadata events then one ``X`` event per span."""
    spans = _coerce_spans(source)
    tids = {track: tid for tid, track in enumerate(_track_order(spans))}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro simulator"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "pid": TRACE_PID,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.category or "span",
                "ts": span.start * _SECONDS_TO_US,
                "dur": span.duration * _SECONDS_TO_US,
                "args": {k: _jsonable(v) for k, v in span.attributes.items()},
            }
        )
    return events


def to_chrome_trace(source: Tracer | Iterable[SpanRecord]) -> dict:
    """The full trace document (JSON-object form Perfetto accepts)."""
    return {
        "traceEvents": chrome_trace_events(source),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated seconds", "producer": "repro.trace"},
    }


def write_chrome_trace(
    source: Tracer | Iterable[SpanRecord], path: str
) -> int:
    """Write the trace to ``path``; returns the number of span events.

    Open the result at https://ui.perfetto.dev or ``chrome://tracing``.
    """
    document = to_chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return sum(1 for e in document["traceEvents"] if e["ph"] == "X")
