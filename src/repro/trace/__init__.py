"""Execution tracing and metrics for the simulated pipeline.

Observability layer over the four execution layers (see
``docs/OBSERVABILITY.md`` for the full walkthrough):

* the **cost engine** emits one span per costed :class:`Phase` plus one
  lane span per simulated thread (instruction time vs memory time, and
  which bound won);
* the **execution context** wraps every algorithm call in a root span
  carrying machine/backend/threads/mode attributes;
* the **bench harness** brackets warmup and the min-time measurement
  loop and records iteration counts;
* the **suite CLI** captures all of it with ``pstl-bench --trace out.json``.

Exports go to Chrome trace-event JSON (:func:`write_chrome_trace`, open
in Perfetto) or a flat metrics table (:func:`metrics_rows`,
:func:`aggregate_phases`) consumable by ``repro.analysis.breakdown``.
Tracing is off by default and free when off (:data:`NULL_TRACER`).
"""

from repro.trace.chrome import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.trace.core import (
    MAIN_TRACK,
    NULL_TRACER,
    PHASE_TRACK,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    thread_track,
    use_tracer,
)
from repro.trace.metrics import aggregate_phases, metrics_csv, metrics_rows

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MAIN_TRACK",
    "PHASE_TRACK",
    "thread_track",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "metrics_rows",
    "metrics_csv",
    "aggregate_phases",
]
