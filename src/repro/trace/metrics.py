"""Flat metrics views over a trace: rows, CSV, and phase aggregation.

The Chrome-trace export (``repro.trace.chrome``) answers "show me the
timeline"; this module answers "give me the numbers". It flattens spans
into plain dict rows (one per span, attributes inlined) suitable for CSV
or a dataframe, and aggregates phase/overhead spans into the
:class:`~repro.analysis.breakdown.PhaseShare` shape so a whole traced
session -- many iterations, many calls -- can be summarised by the same
where-did-the-time-go table that ``repro.analysis.breakdown`` renders
for a single :class:`~repro.sim.report.SimReport`.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable

from repro.trace.core import SpanRecord, Tracer

__all__ = ["metrics_rows", "metrics_csv", "aggregate_phases"]

#: Fixed leading columns of every metrics row; attributes follow.
BASE_COLUMNS = ("name", "category", "track", "start", "duration", "depth")


def _coerce_spans(source: Tracer | Iterable[SpanRecord]) -> tuple[SpanRecord, ...]:
    """Accept either a tracer or an iterable of spans."""
    if isinstance(source, Tracer):
        return source.spans
    return tuple(source)


def metrics_rows(
    source: Tracer | Iterable[SpanRecord], category: str | None = None
) -> list[dict]:
    """One flat dict per span: base columns plus inlined attributes.

    Attribute keys that collide with a base column are prefixed with
    ``attr_``. Filter with ``category`` (e.g. ``"phase"`` for the
    engine-phase rows that mirror Table 3/4's per-phase counters).
    """
    rows: list[dict] = []
    for span in _coerce_spans(source):
        if category is not None and span.category != category:
            continue
        row = {
            "name": span.name,
            "category": span.category,
            "track": span.track,
            "start": span.start,
            "duration": span.duration,
            "depth": span.depth,
        }
        for key, value in span.attributes.items():
            row[f"attr_{key}" if key in BASE_COLUMNS else key] = value
        rows.append(row)
    return rows


def metrics_csv(
    source: Tracer | Iterable[SpanRecord], category: str | None = None
) -> str:
    """The metrics rows as CSV text (union of all columns, base first)."""
    rows = metrics_rows(source, category=category)
    columns = list(BASE_COLUMNS)
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=columns, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()


def aggregate_phases(
    source: Tracer | Iterable[SpanRecord],
) -> list["PhaseShare"]:
    """Aggregate phase/overhead spans into breakdown rows.

    Groups ``"phase"`` and ``"overhead"`` spans by name across *all*
    traced invocations, sums their simulated seconds, and returns
    :class:`~repro.analysis.breakdown.PhaseShare` rows whose shares are
    relative to the grouped total -- the traced-session analogue of
    :func:`repro.analysis.breakdown.breakdown`. The dominant bound of a
    group is the bound of the majority of its seconds.
    """
    from repro.analysis.breakdown import PhaseShare

    seconds: dict[str, float] = {}
    bound_seconds: dict[str, dict[str, float]] = {}
    for span in _coerce_spans(source):
        if span.category not in ("phase", "overhead"):
            continue
        seconds[span.name] = seconds.get(span.name, 0.0) + span.duration
        bound = span.attributes.get("bound", "overhead")
        per = bound_seconds.setdefault(span.name, {})
        per[bound] = per.get(bound, 0.0) + span.duration
    total = sum(seconds.values())
    shares: list[PhaseShare] = []
    for name, secs in seconds.items():
        dominant = max(bound_seconds[name], key=bound_seconds[name].get)
        shares.append(
            PhaseShare(
                name=name,
                seconds=secs,
                share=secs / total if total > 0 else 0.0,
                bound_by=dominant,
            )
        )
    return shares
