"""Span-based tracing over the *simulated* timeline.

The simulator has no useful wall clock: every interesting duration is a
*simulated* quantity produced by the cost engine. The tracer therefore
keeps its own clock in simulated seconds, advanced explicitly by the
instrumented layers (the CPU/GPU cost engines advance it by each phase's
cost; everything above them inherits the resulting timeline). Spans come
in two flavours:

* **enclosing spans** (:meth:`Tracer.span` / :meth:`Tracer.begin` +
  :meth:`Tracer.end`) bracket a region of execution -- an algorithm call,
  a benchmark's measurement loop -- and take their duration from how far
  the clock moved while they were open;
* **leaf spans** (:meth:`Tracer.record`) carry an explicit duration --
  one engine phase, one thread's lane within a phase, a fork/join gap.

Spans live on named **tracks** ("main" for calls and harness structure,
"phases" for the engine's phase sequence, ``"thread 3"`` for simulated
thread 3's lane). The Chrome-trace exporter maps each track to its own
row in Perfetto / ``chrome://tracing``.

The process-global tracer defaults to :data:`NULL_TRACER`, whose methods
do nothing and allocate nothing; instrumented hot paths additionally
guard on :attr:`Tracer.enabled` so that building span names/attributes is
skipped entirely when tracing is off. Enable tracing either with
:func:`use_tracer` (scoped) or :func:`set_tracer` (manual).

Typical use::

    from repro.trace import Tracer, use_tracer, write_chrome_trace

    with use_tracer(Tracer()) as tracer:
        pstl.reduce(ctx, arr)          # all layers emit spans
    write_chrome_trace(tracer, "reduce.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import TraceError

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MAIN_TRACK",
    "PHASE_TRACK",
    "thread_track",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

#: Track for algorithm calls and harness structure (root spans).
MAIN_TRACK = "main"
#: Track for the engine's phase sequence (one span per costed phase).
PHASE_TRACK = "phases"


def thread_track(thread: int) -> str:
    """The track name for simulated thread ``thread``'s lane spans."""
    return f"thread {thread}"


@dataclass(frozen=True)
class SpanRecord:
    """One finished span on the simulated timeline.

    Attributes
    ----------
    name:
        Display name ("for_each", "main-loop", "fork/join"...).
    category:
        Coarse type used for filtering/export: ``"call"`` (one algorithm
        invocation), ``"phase"`` (one engine phase), ``"lane"`` (one
        thread's share of a phase), ``"overhead"`` (fork/join, launches,
        migrations), ``"bench"`` (harness structure).
    start:
        Start time in simulated seconds since the tracer was created.
    duration:
        Span length in simulated seconds (0 is legal: untimed setup).
    track:
        Timeline row this span renders on (see module docstring).
    depth:
        Nesting depth at emission (0 = top level); purely informational.
    attributes:
        Free-form key/value payload; exported as Chrome-trace ``args``.
    """

    name: str
    category: str
    start: float
    duration: float
    track: str
    depth: int
    attributes: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Span end time in simulated seconds."""
        return self.start + self.duration


class _OpenSpan:
    """Handle for a span begun but not yet ended (mutable attributes)."""

    __slots__ = ("name", "category", "track", "start", "depth", "attributes")

    def __init__(
        self, name: str, category: str, track: str, start: float, depth: int,
        attributes: dict,
    ) -> None:
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.depth = depth
        self.attributes = attributes

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the span before it closes."""
        self.attributes[key] = value


class Tracer:
    """Collects spans against a simulated-seconds clock.

    Not thread-safe by design: the simulator itself is single-threaded
    (simulated threads are data, not OS threads), so one tracer observes
    one deterministic timeline.
    """

    #: Instrumented code guards span construction on this flag, so a
    #: disabled tracer costs one attribute read per potential span.
    enabled: bool = True

    def __init__(self) -> None:
        self._clock: float = 0.0
        self._spans: list[SpanRecord] = []
        self._stack: list[_OpenSpan] = []

    # --- clock -------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Current simulated time in seconds (monotonically advanced)."""
        return self._clock

    def advance(self, seconds: float) -> None:
        """Move the simulated clock forward by ``seconds`` (>= 0)."""
        if seconds < 0:
            raise TraceError("cannot advance the trace clock backwards")
        self._clock += seconds

    # --- enclosing spans ---------------------------------------------------
    def begin(
        self, name: str, *, category: str = "", track: str = MAIN_TRACK,
        **attributes: Any,
    ) -> _OpenSpan:
        """Open an enclosing span at the current clock; pair with :meth:`end`."""
        span = _OpenSpan(
            name, category, track, self._clock, len(self._stack), dict(attributes)
        )
        self._stack.append(span)
        return span

    def end(self, **attributes: Any) -> SpanRecord:
        """Close the innermost open span; duration = clock movement since begin."""
        if not self._stack:
            raise TraceError("end() with no open span")
        open_span = self._stack.pop()
        open_span.attributes.update(attributes)
        record = SpanRecord(
            name=open_span.name,
            category=open_span.category,
            start=open_span.start,
            duration=self._clock - open_span.start,
            track=open_span.track,
            depth=open_span.depth,
            attributes=open_span.attributes,
        )
        self._spans.append(record)
        return record

    @contextmanager
    def span(
        self, name: str, *, category: str = "", track: str = MAIN_TRACK,
        **attributes: Any,
    ) -> Iterator[_OpenSpan]:
        """Context-manager form of :meth:`begin`/:meth:`end`.

        Yields the open span so the body can ``set_attribute`` results
        that are only known at the end (iteration counts, seconds).
        """
        handle = self.begin(name, category=category, track=track, **attributes)
        try:
            yield handle
        finally:
            self.end()

    # --- leaf spans --------------------------------------------------------
    def record(
        self,
        name: str,
        duration: float,
        *,
        category: str = "",
        track: str = MAIN_TRACK,
        start: float | None = None,
        **attributes: Any,
    ) -> SpanRecord:
        """Record a completed span with an explicit ``duration``.

        ``start`` defaults to the current clock; the clock is *not*
        advanced (callers advance it once per timeline step so that
        overlapping lanes share one phase's start).
        """
        if duration < 0:
            raise TraceError("span duration must be non-negative")
        record = SpanRecord(
            name=name,
            category=category,
            start=self._clock if start is None else start,
            duration=duration,
            track=track,
            depth=len(self._stack),
            attributes=dict(attributes) if attributes else {},
        )
        self._spans.append(record)
        return record

    # --- results -----------------------------------------------------------
    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """All finished spans, in completion order."""
        return tuple(self._spans)

    @property
    def open_spans(self) -> int:
        """Number of spans begun but not yet ended."""
        return len(self._stack)

    def clear(self) -> None:
        """Drop all finished spans and reset the clock (open spans too)."""
        self._spans.clear()
        self._stack.clear()
        self._clock = 0.0


class _NullSpan:
    """Shared do-nothing open-span handle (also its own context manager)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        """Discard the attribute (tracing disabled)."""


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is installed by
    default; its ``span``/``record`` return shared singletons so the
    disabled path never allocates span state. Hot loops should still
    guard on :attr:`enabled` to skip building names and attributes.
    """

    enabled = False

    def advance(self, seconds: float) -> None:
        """No-op (clock stays at 0)."""

    def begin(self, name: str, **kwargs: Any) -> _NullSpan:  # type: ignore[override]
        """Return the shared null handle; nothing is recorded."""
        return _NULL_SPAN

    def end(self, **attributes: Any) -> None:  # type: ignore[override]
        """No-op."""

    def span(self, name: str, **kwargs: Any) -> _NullSpan:  # type: ignore[override]
        """Return the shared null context manager; nothing is recorded."""
        return _NULL_SPAN

    def record(self, name: str, duration: float, **kwargs: Any) -> None:  # type: ignore[override]
        """No-op."""


#: The process-default tracer (disabled).
NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (:data:`NULL_TRACER` unless enabled)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (``None`` = disable); returns the previous one."""
    global _active
    previous = _active
    _active = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scoped tracing: install ``tracer`` (a fresh one if ``None``), restore after.

    ::

        with use_tracer() as tracer:
            pstl.for_each(ctx, arr, kernel)
        print(len(tracer.spans))
    """
    active = Tracer() if tracer is None else tracer
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
