"""Declarative scenario registry: every paper artifact as data.

``repro.scenarios`` turns the paper's figures and tables -- and any
user-defined sweep -- into JSON/dict *specs* instead of bespoke driver
code. A spec names its axes (machines, backends, cases, sizes, threads,
k values, allocators), binds an *analysis kind* that knows how to turn
those axes into measured cells/curves, and optionally a fidelity
artifact its claims check against.

Layers:

* :mod:`repro.scenarios.schema` -- the typed :class:`ScenarioSpec` and
  its two-stage validation (structural + registry-backed).
* :mod:`repro.scenarios.resolve` -- the one resolver for
  machine/backend/case/allocator names, shared with the legacy drivers.
* :mod:`repro.scenarios.analyses` -- the data-driven kind runners
  (allocator-grid, problem-panels, ..., campaign-grid).
* :mod:`repro.scenarios.registry` -- the built-in fig1-fig9 and
  table3-table7 specs.
* :mod:`repro.scenarios.runner` -- execution (:func:`run_scenario`) and
  the service bridge (:func:`campaign_payload`).
* :mod:`repro.scenarios.cli` -- the ``pstl-scenario`` entry point.

The legacy drivers in :mod:`repro.experiments` stay as the pinned
reference implementation; ``tools/scenario_equiv.py`` (and
``pytest -m scenario_equiv``) prove every registered scenario's
cells/curves bit-identical to its legacy driver output.
"""

from repro.scenarios.analyses import AnalysisKind, RunOptions, analysis_kinds, get_analysis
from repro.scenarios.registry import builtin_scenarios, get_scenario, scenario_names
from repro.scenarios.runner import (
    ScenarioRun,
    campaign_payload,
    describe_scenario,
    run_scenario,
)
from repro.scenarios.schema import (
    ScenarioSpec,
    load_scenario_file,
    scenario_from_dict,
    validate_scenario,
)

__all__ = [
    "AnalysisKind",
    "RunOptions",
    "ScenarioRun",
    "ScenarioSpec",
    "analysis_kinds",
    "builtin_scenarios",
    "campaign_payload",
    "describe_scenario",
    "get_analysis",
    "get_scenario",
    "load_scenario_file",
    "run_scenario",
    "scenario_from_dict",
    "scenario_names",
    "validate_scenario",
]
