"""The built-in scenario registry: every paper figure/table as data.

Each entry below is a plain dict -- the exact JSON a user could put in a
``--scenario-file`` -- validated into a
:class:`~repro.scenarios.schema.ScenarioSpec` on first lookup. The axis
values are spelled out literally rather than imported from the legacy
driver constants on purpose: the registry is the declarative source of
truth, and ``tests/scenarios`` pins it against the legacy constants (and
``tools/scenario_equiv.py`` against the legacy *outputs*) so the two can
never drift silently.

``claims`` binds a scenario to its fidelity artifact id; the fidelity
builders (:mod:`repro.fidelity.artifacts`) regenerate those artifacts
through this registry.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ScenarioError
from repro.scenarios.schema import ScenarioSpec, scenario_from_dict

__all__ = [
    "scenario_names",
    "get_scenario",
    "builtin_scenarios",
    "BUILTIN_SCENARIOS",
]

_PARALLEL_CPU = ["GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"]
_HEADLINE = [
    "find", "for_each_k1", "for_each_k1000", "inclusive_scan", "reduce", "sort",
]
_GPU_SERIES = [
    {"key": "seq-host", "machine": "gpu-host", "backend": "GCC-SEQ"},
    {"key": "omp-host", "machine": "gpu-host", "backend": "NVC-OMP"},
    {"key": "t4", "machine": "D", "backend": "NVC-CUDA", "gpu": True},
    {"key": "a2", "machine": "E", "backend": "NVC-CUDA", "gpu": True},
]

#: One dict per registered scenario, in report order.
BUILTIN_SCENARIOS: tuple[Mapping, ...] = (
    {
        "name": "fig1",
        "analysis": "allocator-grid",
        "title": "Impact of the parallel first-touch allocator",
        "machines": ["A"],
        "backends": ["GCC-TBB", "GCC-GNU", "ICC-TBB", "NVC-OMP"],
        "cases": _HEADLINE,
        "threads": [32],
        "size_exps": [30],
        "claims": "fig1",
    },
    {
        "name": "fig2",
        "analysis": "problem-panels",
        "title": "for_each problem scaling",
        "machines": ["A", "B", "C"],
        "backends": ["GCC-SEQ", "GCC-TBB", "GCC-GNU", "GCC-HPX",
                     "ICC-TBB", "NVC-OMP"],
        "k_values": [1, 1000],
        "claims": "fig2",
    },
    {
        "name": "fig3",
        "analysis": "strong-scaling",
        "title": "for_each strong scaling",
        "machines": ["A", "B", "C"],
        "backends": _PARALLEL_CPU,
        "k_values": [1, 1000],
        "size_exps": [30],
        "exclude": [["B", "ICC-TBB"]],
        "claims": "fig3",
    },
    {
        "name": "fig4",
        "analysis": "algo-panels",
        "title": "find on Mach B",
        "machines": ["B"],
        "cases": ["find"],
        "backends": _PARALLEL_CPU,
        "size_exps": [30],
        "exclude": [["B", "ICC-TBB"]],
        "claims": "fig4",
    },
    {
        "name": "fig5",
        "analysis": "algo-panels",
        "title": "inclusive_scan on Mach C",
        "machines": ["C"],
        "cases": ["inclusive_scan"],
        "backends": _PARALLEL_CPU,
        "size_exps": [30],
        "claims": "fig5",
    },
    {
        "name": "fig6",
        "analysis": "algo-panels",
        "title": "reduce on Mach A",
        "machines": ["A"],
        "cases": ["reduce"],
        "backends": _PARALLEL_CPU,
        "size_exps": [30],
        "claims": "fig6",
    },
    {
        "name": "fig7",
        "analysis": "algo-panels",
        "title": "sort on Mach C",
        "machines": ["C"],
        "cases": ["sort"],
        "backends": _PARALLEL_CPU,
        "size_exps": [30],
        "claims": "fig7",
    },
    {
        "name": "fig8",
        "analysis": "gpu-problem",
        "title": "for_each on GPUs (float, forced transfer)",
        "machines": ["gpu-host", "D", "E"],
        "backends": ["GCC-SEQ", "NVC-OMP", "NVC-CUDA"],
        "k_values": [1, 1000, 10000],
        "options": {
            "series": _GPU_SERIES,
            "max_exp": 29,
            "size_step": 2,
            "elem": "float",
            "ratio_baseline": "omp-host",
            "ratio_series": ["t4", "a2"],
        },
        "claims": "fig8",
    },
    {
        "name": "fig9",
        "analysis": "gpu-chaining",
        "title": "reduce on GPUs: chained calls vs forced transfers",
        "machines": ["gpu-host", "D", "E"],
        "backends": ["GCC-SEQ", "NVC-OMP", "NVC-CUDA"],
        "cases": ["reduce"],
        "options": {
            "series": _GPU_SERIES,
            "panels": [
                {"key": "forced", "transfer_back": True},
                {"key": "chained", "transfer_back": False},
            ],
            "max_exp": 29,
            "size_step": 2,
            "elem": "float",
            "min_time": 5.0,
            "chain_ratio_series": "t4",
        },
        "claims": "fig9",
    },
    {
        "name": "table3",
        "analysis": "counter-table",
        "title": "Counters for 100 calls to for_each (k_it=1), Mach A",
        "machines": ["A"],
        "backends": _PARALLEL_CPU,
        "cases": ["for_each_k1"],
        "size_exps": [30],
        "options": {"calls": 100},
        "claims": "table3",
    },
    {
        "name": "table4",
        "analysis": "counter-table",
        "title": "Counters for 100 calls to reduce, Mach A",
        "machines": ["A"],
        "backends": _PARALLEL_CPU,
        "cases": ["reduce"],
        "size_exps": [30],
        "options": {"calls": 100},
        "claims": "table4",
    },
    {
        "name": "table5",
        "analysis": "campaign-speedup",
        "title": "Speedup vs sequential",
        "machines": ["A", "B", "C"],
        "backends": _PARALLEL_CPU,
        "cases": _HEADLINE,
        "size_exps": [30],
        "threads": [None],
        "exclude": [["B", "ICC-TBB"]],
        "claims": "table5",
    },
    {
        "name": "table6",
        "analysis": "campaign-efficiency",
        "title": "Max threads at >= 70 % parallel efficiency",
        "machines": ["A", "B", "C"],
        "backends": _PARALLEL_CPU,
        "cases": _HEADLINE,
        "size_exps": [30],
        "threads": [1, 2, 4, 8, 16, 32, 64, 128],
        "exclude": [["B", "ICC-TBB"]],
        "claims": "table6",
    },
    {
        "name": "table7",
        "analysis": "binary-sizes",
        "title": "Binary sizes",
        "backends": ["GCC-SEQ", "GCC-TBB", "GCC-GNU", "GCC-HPX",
                     "ICC-TBB", "NVC-OMP", "NVC-CUDA"],
        "claims": "table7",
    },
)

assert len({entry["name"] for entry in BUILTIN_SCENARIOS}) == len(
    BUILTIN_SCENARIOS
), "duplicate built-in scenario name"

_CACHE: dict[str, ScenarioSpec] = {}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, in report order."""
    return tuple(entry["name"] for entry in BUILTIN_SCENARIOS)


def builtin_scenarios() -> dict[str, ScenarioSpec]:
    """All built-in scenarios as validated specs, keyed by name."""
    return {name: get_scenario(name) for name in scenario_names()}


def get_scenario(name: str) -> ScenarioSpec:
    """One built-in scenario by name, fully validated (cached)."""
    if name not in _CACHE:
        for entry in BUILTIN_SCENARIOS:
            if entry["name"] == name:
                _CACHE[name] = scenario_from_dict(entry)
                break
        else:
            raise ScenarioError(
                f"unknown scenario {name!r}; known: {list(scenario_names())} "
                "(or pass --scenario-file for a user-defined spec)"
            )
    return _CACHE[name]
