"""Analysis kinds: the data-driven engine behind every scenario.

Each paper artifact family is one *kind* -- a generic runner that reads
its grid entirely from a :class:`~repro.scenarios.schema.ScenarioSpec`
(machines, backends, cases, sweep axes, options) and produces the flat
``cells``/``curves`` maps the fidelity layer checks. The bespoke drivers
in :mod:`repro.experiments` remain as the pinned reference
implementation; ``tools/scenario_equiv.py`` proves each registered
scenario's output bit-identical to its legacy driver, the same standard
``tools/diffcheck.py`` sets for the batch/wave engines.

Kinds and the artifacts they generalise:

========================  =============================================
``allocator-grid``        fig1 (custom-allocator speedup grid)
``problem-panels``        fig2 (time vs size per machine and k_it)
``strong-scaling``        fig3 (speedup vs threads per machine and k_it)
``algo-panels``           fig4-fig7 (problem + scaling panel pair)
``gpu-problem``           fig8 (GPU vs host sweep, forced transfers)
``gpu-chaining``          fig9 (GPU chaining vs per-call transfers)
``counter-table``         table3/table4 (Likwid-region counters)
``campaign-speedup``      table5 (campaign-planned speedup grid)
``campaign-efficiency``   table6 (max threads at >= 70 % efficiency)
``binary-sizes``          table7 (compile/link model sizes)
``campaign-grid``         user-defined sweeps (service-submittable)
========================  =============================================

``campaign-*`` kinds also expose :meth:`AnalysisKind.campaign_spec_for`,
mapping a scenario onto a :class:`~repro.campaign.spec.CampaignSpec`;
that is what lets ``repro.service`` accept a scenario name as a
campaign payload with content-derived dedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import ScenarioError, UnsupportedOperationError
from repro.scenarios.resolve import make_context, resolve_case

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.spec import CampaignSpec
    from repro.scenarios.schema import ScenarioSpec

__all__ = [
    "AnalysisKind",
    "RunOptions",
    "get_analysis",
    "analysis_kinds",
    "Cells",
    "Curves",
]

#: Flat scalar grid, keyed like the fidelity refdata (``None`` = N/A).
Cells = Mapping[str, "float | None"]
#: (x, y) series keyed per artifact convention.
Curves = Mapping[str, "tuple[tuple[float, float], ...]"]


@dataclass(frozen=True)
class RunOptions:
    """Execution knobs orthogonal to the spec (mirrors fidelity's
    ``MeasureOptions``).

    ``store``/``workers`` only affect campaign-backed kinds;
    ``size_step`` overrides the size-sweep stride of kinds with a size
    axis (``None`` keeps each spec's own default) -- exactly the knobs
    the legacy fidelity builders forwarded.
    """

    store: Any = None
    workers: int = 0
    size_step: int | None = None


def _pow2_exp(n: int) -> int:
    """Exponent of a power-of-two size (the ``t@2^{exp}`` cell labels)."""
    if n < 1 or n & (n - 1):
        raise ScenarioError(f"size {n} is not a power of two")
    return n.bit_length() - 1


def _measure_point(case, ctx, n: int, elem=None) -> float:
    """One batch-aware measurement (the drivers' shared inner step)."""
    from repro.suite.batch import measure_case_batch, use_batch_path
    from repro.suite.wrappers import measure_case
    from repro.types import FLOAT64

    elem = elem if elem is not None else FLOAT64
    if use_batch_path(None, case.name, ctx):
        return measure_case_batch(case.name, ctx, n, elem)
    return measure_case(case, ctx, n, elem)


def _seq_baseline(machine: str, case_name: str, n: int,
                  baseline_backend: str = "GCC-SEQ") -> float:
    """The sequential denominator (Table 5's rule: one thread)."""
    ctx = make_context(machine, baseline_backend, threads=1)
    return _measure_point(resolve_case(case_name), ctx, n)


def _size_step(spec: "ScenarioSpec", options: RunOptions, default: int = 1) -> int:
    """Sweep stride: RunOptions override > spec option > kind default."""
    if options.size_step is not None:
        return options.size_step
    return spec.option("size_step", default)


def _foreach_case(k: int):
    """The ``for_each`` case at arithmetic intensity ``k``.

    Built directly (like the fig8 driver) so k values outside the
    registered k1/k1000 presets -- fig8's k=10000 -- work too.
    """
    from repro.suite.cases import _case_for_each

    return _case_for_each(k)


# ---------------------------------------------------------------------------
# Kind runners. Each reads only the spec + options and returns
# (cells, curves) in the exact key formats of the legacy exporters.
# ---------------------------------------------------------------------------


def _run_allocator_grid(spec, options):
    """fig1: T_default / T_custom per (backend, case); cells
    ``{backend}/{case}``, ``None`` for capability gaps."""
    machine = spec.machines[0]
    threads = spec.threads[0]
    n = 1 << spec.size_exps[0]
    custom = spec.option("custom_allocator", "first-touch")
    cells: dict[str, float | None] = {}
    for backend in spec.backends:
        for case_name in spec.cases:
            case = resolve_case(case_name)
            try:
                default_ctx = make_context(
                    machine, backend, threads=threads, allocator="default"
                )
                custom_ctx = make_context(
                    machine, backend, threads=threads, allocator=custom
                )
                t_default = _measure_point(case, default_ctx, n)
                t_custom = _measure_point(case, custom_ctx, n)
            except UnsupportedOperationError:
                cells[f"{backend}/{case_name}"] = None
                continue
            cells[f"{backend}/{case_name}"] = t_default / t_custom
    return cells, {}


def _run_problem_panels(spec, options):
    """fig2: time vs size per (machine, k, backend); cells
    ``{machine}/k{k}/{backend}/t@2^{exp}``."""
    from repro.suite.sweeps import problem_scaling, problem_sizes

    sizes = problem_sizes(
        max_exp=spec.option("max_exp", 30), step=_size_step(spec, options)
    )
    template = spec.option("case_template", "for_each_k{k}")
    cells: dict[str, float | None] = {}
    curves: dict[str, tuple] = {}
    for machine in spec.machines:
        for k in spec.k_values:
            case = resolve_case(template.format(k=k))
            for backend in spec.backends:
                ctx = make_context(machine, backend)
                sweep = problem_scaling(case, ctx, sizes)
                key = f"{machine}/k{k}/{backend}"
                for n, seconds in zip(sweep.xs(), sweep.ys()):
                    cells[f"{key}/t@2^{_pow2_exp(n)}"] = seconds
                curves[key] = tuple(zip(sweep.xs(), sweep.ys()))
    return cells, curves


def _run_strong_scaling(spec, options):
    """fig3: speedup vs threads per (machine, k, backend); cells
    ``{backend}/k{k}/{machine}/speedup@{t}`` + ``.../max_speedup``."""
    from repro.analysis.speedup import ScalingCurve
    from repro.suite.sweeps import strong_scaling

    n = 1 << spec.size_exps[0]
    template = spec.option("case_template", "for_each_k{k}")
    baseline_backend = spec.option("baseline_backend", "GCC-SEQ")
    excluded = set(spec.exclude)
    cells: dict[str, float | None] = {}
    curves: dict[str, tuple] = {}
    for machine in spec.machines:
        for k in spec.k_values:
            case_name = template.format(k=k)
            case = resolve_case(case_name)
            baseline = _seq_baseline(machine, case_name, n, baseline_backend)
            for backend in spec.backends:
                if (machine, backend) in excluded:
                    continue
                sweep = strong_scaling(case, make_context(machine, backend), n)
                curve = ScalingCurve(
                    label=f"{backend}/k{k}/{machine}",
                    threads=tuple(sweep.xs()),
                    seconds=tuple(sweep.ys()),
                    baseline_seconds=baseline,
                )
                for t, s in zip(curve.threads, curve.speedups()):
                    cells[f"{curve.label}/speedup@{t}"] = s
                cells[f"{curve.label}/max_speedup"] = curve.max_speedup()
                curves[curve.label] = tuple(zip(curve.threads, curve.speedups()))
    return cells, curves


def _run_algo_panels(spec, options):
    """fig4-fig7: the problem + strong-scaling panel pair for one
    (machine, algorithm); cells ``problem/...`` and ``scaling/...``."""
    from repro.analysis.speedup import ScalingCurve
    from repro.suite.sweeps import problem_scaling, problem_sizes, strong_scaling

    machine = spec.machines[0]
    case_name = spec.cases[0]
    n = 1 << spec.size_exps[0]
    reference = spec.option("reference_backend", "GCC-SEQ")
    excluded = set(spec.exclude)
    available = tuple(b for b in spec.backends if (machine, b) not in excluded)
    case = resolve_case(case_name)
    sizes = problem_sizes(step=_size_step(spec, options))

    cells: dict[str, float | None] = {}
    curves: dict[str, tuple] = {}
    for backend in (reference, *available):
        sweep = problem_scaling(case, make_context(machine, backend), sizes)
        for size, seconds in zip(sweep.xs(), sweep.ys()):
            cells[f"problem/{backend}/t@2^{_pow2_exp(size)}"] = seconds
        curves[f"problem/{backend}"] = tuple(zip(sweep.xs(), sweep.ys()))

    baseline = _seq_baseline(machine, case_name, n, reference)
    for backend in available:
        try:
            sweep = strong_scaling(case, make_context(machine, backend), n)
        except UnsupportedOperationError:
            cells[f"scaling/{backend}/max_speedup"] = None
            continue
        if not sweep.xs():
            cells[f"scaling/{backend}/max_speedup"] = None
            continue
        curve = ScalingCurve(
            label=f"{backend}/{case_name}/{machine}",
            threads=tuple(sweep.xs()),
            seconds=tuple(sweep.ys()),
            baseline_seconds=baseline,
        )
        for t, s in zip(curve.threads, curve.speedups()):
            cells[f"scaling/{backend}/speedup@{t}"] = s
        cells[f"scaling/{backend}/max_speedup"] = curve.max_speedup()
        curves[f"scaling/{backend}"] = tuple(zip(curve.threads, curve.speedups()))
    return cells, curves


def _series_sweep(entry: Mapping[str, Any], case, sizes, elem, transfer_back=True):
    """One fig8/fig9 series sweep: host backends sweep normally, GPU
    series get a CUDA context with the panel's transfer policy."""
    from repro.sim.gpu import GpuExecution
    from repro.suite.sweeps import problem_scaling

    if entry.get("gpu"):
        ctx = make_context(
            entry["machine"],
            entry["backend"],
            threads=1,
            gpu_options=GpuExecution(transfer_back=transfer_back),
        )
    else:
        ctx = make_context(entry["machine"], entry["backend"])
    return problem_scaling(case, ctx, sizes, elem)


def _run_gpu_problem(spec, options):
    """fig8: GPU vs host sweep with D2H forced; cells
    ``k{k}/{series}/t@2^{exp}`` + ``k{k}/{gpu}/ratio@2^{max}``."""
    from repro.suite.sweeps import problem_sizes
    from repro.types import elem_type

    sizes = problem_sizes(
        max_exp=spec.option("max_exp", 30), step=_size_step(spec, options)
    )
    elem = elem_type(spec.option("elem", "double"))
    series_list = spec.option("series", ())
    ratio_baseline = spec.option("ratio_baseline")
    ratio_series = tuple(spec.option("ratio_series", ()))
    cells: dict[str, float | None] = {}
    curves: dict[str, tuple] = {}
    for k in spec.k_values:
        case = _foreach_case(k)
        by_key: dict[str, dict[int, float]] = {}
        for entry in series_list:
            key = entry["key"]
            sweep = _series_sweep(entry, case, sizes, elem)
            by_key[key] = dict(zip(sweep.xs(), sweep.ys()))
            for n, seconds in by_key[key].items():
                cells[f"k{k}/{key}/t@2^{_pow2_exp(n)}"] = seconds
            curves[f"k{k}/{key}"] = tuple(zip(sweep.xs(), sweep.ys()))
        host = by_key.get(ratio_baseline, {})
        for gpu in ratio_series:
            common = sorted(set(host) & set(by_key.get(gpu, {})))
            if common:
                n = common[-1]
                cells[f"k{k}/{gpu}/ratio@2^{_pow2_exp(n)}"] = (
                    host[n] / by_key[gpu][n]
                )
    return cells, curves


def _run_gpu_chaining(spec, options):
    """fig9: chained vs forced-transfer GPU calls; cells
    ``{panel}/{series}/t@2^{exp}`` + ``{series}/chain_saving``."""
    from repro.sim.gpu import GpuExecution
    from repro.suite.sweeps import problem_sizes
    from repro.suite.wrappers import run_case
    from repro.types import elem_type

    sizes = problem_sizes(
        max_exp=spec.option("max_exp", 30), step=_size_step(spec, options)
    )
    elem = elem_type(spec.option("elem", "double"))
    case = resolve_case(spec.cases[0])
    min_time = spec.option("min_time", 5.0)
    panels = tuple(spec.option("panels", ()))
    series_list = spec.option("series", ())
    chain_series = spec.option("chain_ratio_series")
    cells: dict[str, float | None] = {}
    curves: dict[str, tuple] = {}
    by_key: dict[str, dict[int, float]] = {}
    for panel in panels:
        pkey = panel["key"]
        transfer = panel["transfer_back"]
        for entry in series_list:
            key = entry["key"]
            if entry.get("gpu"):
                # A fresh context per point, like the legacy driver: the
                # chaining effect lives in per-context UM residency, so
                # sharing one context across sizes would understate the
                # first-touch migration cost.
                points = []
                for n in sizes:
                    ctx = make_context(
                        entry["machine"],
                        entry["backend"],
                        threads=1,
                        gpu_options=GpuExecution(transfer_back=transfer),
                    )
                    result = run_case(case, ctx, n, elem, min_time=min_time)
                    points.append((n, result.mean_time))
            else:
                sweep = _series_sweep(entry, case, sizes, elem)
                points = list(zip(sweep.xs(), sweep.ys()))
            by_key[f"{pkey}/{key}"] = dict(points)
            for n, seconds in points:
                cells[f"{pkey}/{key}/t@2^{_pow2_exp(n)}"] = seconds
            curves[f"{pkey}/{key}"] = tuple(points)
    if chain_series and len(panels) == 2:
        forced = by_key.get(f"{panels[0]['key']}/{chain_series}", {})
        chained = by_key.get(f"{panels[1]['key']}/{chain_series}", {})
        common = sorted(set(forced) & set(chained))
        if common:
            n = common[-1]
            cells[f"{chain_series}/chain_saving"] = forced[n] / chained[n]
    return cells, curves


def _run_counter_table(spec, options):
    """table3/table4: Likwid-region counters per backend; cells
    ``{backend}/{metric}``."""
    from repro.counters.likwid import LikwidMarkers

    machine = spec.machines[0]
    case_name = spec.cases[0]
    n = 1 << spec.size_exps[0]
    calls = spec.option("calls", 100)
    cells: dict[str, float | None] = {}
    for backend in spec.backends:
        ctx = make_context(machine, backend)
        case = resolve_case(case_name)
        arrays = case.setup(ctx, n, case.elem)
        markers = LikwidMarkers()
        # One real invocation; the simulation is deterministic, so the
        # remaining calls are identical and the region is scaled.
        with markers.region(case.name) as region:
            result = case.invoke(ctx, arrays, 0)
            region.record(result.report)
            region.calls = calls
            region.seconds = result.report.seconds * calls
            region.counters = result.report.counters.scaled(calls)
        stats = markers.get(case.name)
        cells[f"{backend}/instructions"] = float(stats.counters.instructions)
        cells[f"{backend}/fp_scalar"] = float(stats.counters.fp_scalar)
        cells[f"{backend}/fp_packed_128"] = float(stats.counters.fp_packed_128)
        cells[f"{backend}/fp_packed_256"] = float(stats.counters.fp_packed_256)
        cells[f"{backend}/gflops"] = stats.gflops
        cells[f"{backend}/bandwidth_gib"] = stats.bandwidth_gib
        cells[f"{backend}/data_volume_gib"] = stats.data_volume_gib
    return cells, {}


def _campaign_for_grid(spec) -> "CampaignSpec":
    """A scenario's axes as a campaign spec (shared by campaign kinds).

    The default campaign name appends the size exponent, matching the
    legacy ``table5-2^30``-style identities, so scenario-driven service
    submissions dedup against historical inline submissions too.
    """
    from repro.campaign.spec import CampaignSpec

    default_name = f"{spec.name}-2^{spec.size_exps[0]}"
    return CampaignSpec(
        name=spec.option("campaign_name") or default_name,
        machines=spec.machines,
        backends=spec.backends,
        cases=spec.cases,
        size_exps=spec.size_exps,
        threads=spec.threads if spec.threads else (None,),
        allocators=spec.allocators if spec.allocators else (None,),
        baseline_backend=spec.option("baseline_backend", "GCC-SEQ"),
        exclude=spec.exclude,
        min_time=spec.option("min_time", 0.0),
    )


def _run_campaign_speedup(spec, options):
    """table5: plan + execute the grid campaign, fold into speedups;
    cells ``{backend}/{case}/{machine}``."""
    from repro.campaign.executor import run_campaign
    from repro.campaign.query import speedup_grid

    outcome = run_campaign(
        _campaign_for_grid(spec), store=options.store, workers=options.workers,
        batch=True,
    )
    return dict(speedup_grid(outcome)), {}


def _run_campaign_efficiency(spec, options):
    """table6: thread-sweep campaign folded into the max-threads-at-
    efficiency grid; cells ``{backend}/{case}/{machine}``."""
    from repro.campaign.executor import run_campaign
    from repro.campaign.query import efficiency_grid

    outcome = run_campaign(
        _campaign_for_grid(spec), store=options.store, workers=options.workers,
        batch=True,
    )
    grid = efficiency_grid(outcome, spec.option("efficiency_threshold", 0.70))
    return (
        {k: (None if v is None else float(v)) for k, v in grid.items()},
        {},
    )


def _run_binary_sizes(spec, options):
    """table7: compile/link model sizes; cells ``{backend}/mib``."""
    from repro.binaries import binary_size
    from repro.util.units import MIB

    return (
        {f"{backend}/mib": binary_size(backend) / MIB for backend in spec.backends},
        {},
    )


def _run_campaign_grid(spec, options):
    """User-defined sweeps: every measured point as seconds + speedup.

    Cells: ``{backend}/{case}/{machine}/2^{exp}/{threads}t[/{alloc}]``
    suffixed ``/seconds`` and ``/speedup`` (``None`` where the paper
    would say N/A or no baseline exists).
    """
    from repro.campaign.executor import run_campaign

    outcome = run_campaign(
        _campaign_for_grid(spec), store=options.store, workers=options.workers,
        batch=True,
    )
    cells: dict[str, float | None] = {}
    for task in outcome.plan.measures:
        p = task.point
        key = f"{p.backend}/{p.case}/{p.machine}/2^{p.size_exp}/{p.threads}t"
        if p.allocator is not None:
            key = f"{key}/{p.allocator}"
        seconds = outcome.seconds(task.task_id)
        cells[f"{key}/seconds"] = seconds
        baseline = (
            outcome.seconds(task.baseline_id)
            if task.baseline_id is not None
            else None
        )
        speedup = None
        if seconds is not None and baseline is not None and seconds > 0:
            speedup = baseline / seconds
        cells[f"{key}/speedup"] = speedup
    return cells, {}


# ---------------------------------------------------------------------------
# Kind-specific deep validation (beyond axis/option shape).
# ---------------------------------------------------------------------------


def _check_case_template(spec) -> None:
    """Every k value must yield a registered case via the template."""
    template = spec.option("case_template", "for_each_k{k}")
    for k in spec.k_values:
        name = template.format(k=k)
        try:
            resolve_case(name)
        except Exception:
            raise ScenarioError(
                f"scenario {spec.name!r}: field 'k_values' entry {k} maps to "
                f"unknown case {name!r} (via option 'case_template')"
            ) from None


def _check_series(spec) -> None:
    """GPU-kind ``series`` entries must reference declared axis values."""
    series = spec.option("series", ())
    if not series:
        raise ScenarioError(
            f"scenario {spec.name!r}: option 'series' must list at least one "
            "series ({key, machine, backend[, gpu]})"
        )
    keys = set()
    for entry in series:
        if not isinstance(entry, Mapping) or not {"key", "machine", "backend"} <= set(entry):
            raise ScenarioError(
                f"scenario {spec.name!r}: option 'series' entries need "
                f"'key', 'machine' and 'backend', got {entry!r}"
            )
        if entry["key"] in keys:
            raise ScenarioError(
                f"scenario {spec.name!r}: option 'series' has overlapping "
                f"key {entry['key']!r}"
            )
        keys.add(entry["key"])
        if entry["machine"] not in spec.machines:
            raise ScenarioError(
                f"scenario {spec.name!r}: series {entry['key']!r} names "
                f"machine {entry['machine']!r} absent from field 'machines'"
            )
        if entry["backend"] not in spec.backends:
            raise ScenarioError(
                f"scenario {spec.name!r}: series {entry['key']!r} names "
                f"backend {entry['backend']!r} absent from field 'backends'"
            )
    for opt in ("ratio_baseline", "chain_ratio_series"):
        wanted = spec.option(opt)
        if wanted is not None and wanted not in keys:
            raise ScenarioError(
                f"scenario {spec.name!r}: option {opt!r} names unknown "
                f"series {wanted!r}"
            )
    for wanted in spec.option("ratio_series", ()):
        if wanted not in keys:
            raise ScenarioError(
                f"scenario {spec.name!r}: option 'ratio_series' names "
                f"unknown series {wanted!r}"
            )
    panels = spec.option("panels")
    if panels is not None:
        pkeys = set()
        for panel in panels:
            if not isinstance(panel, Mapping) or not {"key", "transfer_back"} <= set(panel):
                raise ScenarioError(
                    f"scenario {spec.name!r}: option 'panels' entries need "
                    f"'key' and 'transfer_back', got {panel!r}"
                )
            if panel["key"] in pkeys:
                raise ScenarioError(
                    f"scenario {spec.name!r}: option 'panels' has overlapping "
                    f"key {panel['key']!r}"
                )
            pkeys.add(panel["key"])


@dataclass(frozen=True)
class AnalysisKind:
    """One analysis family: axis contract, options, runner, campaign map.

    ``required_axes`` must be non-empty in a spec, ``singleton_axes``
    must hold exactly one entry, and any axis in neither
    ``required_axes`` nor ``optional_axes`` must stay empty -- so a spec
    with a stray axis fails validation naming that field instead of the
    axis being silently ignored.
    """

    name: str
    summary: str
    run: Callable[["ScenarioSpec", RunOptions], tuple]
    required_axes: tuple[str, ...] = ()
    optional_axes: tuple[str, ...] = ()
    singleton_axes: tuple[str, ...] = ()
    option_defaults: Mapping[str, Any] = field(default_factory=dict)
    campaign_spec_for: Callable[["ScenarioSpec"], "CampaignSpec"] | None = None
    honors_size_step: bool = False
    extra_check: Callable[["ScenarioSpec"], None] | None = None

    def check(self, spec: "ScenarioSpec") -> None:
        """Validate ``spec`` against this kind's axis/option contract."""
        from repro.scenarios.schema import AXIS_FIELDS

        for axis in self.required_axes:
            if not getattr(spec, axis):
                raise ScenarioError(
                    f"scenario {spec.name!r}: field {axis!r} is empty, but "
                    f"analysis kind {self.name!r} requires it (empty grid)"
                )
        allowed = set(self.required_axes) | set(self.optional_axes)
        for axis in AXIS_FIELDS:
            if axis not in allowed and getattr(spec, axis):
                raise ScenarioError(
                    f"scenario {spec.name!r}: field {axis!r} is not used by "
                    f"analysis kind {self.name!r}; allowed axes: "
                    f"{sorted(allowed)}"
                )
        for axis in self.singleton_axes:
            values = getattr(spec, axis)
            if len(values) != 1:
                raise ScenarioError(
                    f"scenario {spec.name!r}: field {axis!r} must hold exactly "
                    f"one entry for analysis kind {self.name!r}, got "
                    f"{len(values)}"
                )
        unknown = set(spec.options) - set(self.option_defaults)
        if unknown:
            raise ScenarioError(
                f"scenario {spec.name!r}: field 'options' has unknown key(s) "
                f"{sorted(unknown)} for analysis kind {self.name!r}; known: "
                f"{sorted(self.option_defaults)}"
            )
        if self.extra_check is not None:
            self.extra_check(spec)


_KINDS: dict[str, AnalysisKind] = {}


def _register(kind: AnalysisKind) -> AnalysisKind:
    """Add ``kind`` to the registry (duplicate names are a bug)."""
    assert kind.name not in _KINDS, kind.name
    _KINDS[kind.name] = kind
    return kind


_register(AnalysisKind(
    name="allocator-grid",
    summary="custom-vs-default allocator speedup grid (fig1 shape)",
    run=_run_allocator_grid,
    required_axes=("machines", "backends", "cases", "threads", "size_exps"),
    singleton_axes=("machines", "threads", "size_exps"),
    option_defaults={"custom_allocator": "first-touch"},
))

_register(AnalysisKind(
    name="problem-panels",
    summary="time-vs-size panels per machine and k_it (fig2 shape)",
    run=_run_problem_panels,
    required_axes=("machines", "backends", "k_values"),
    option_defaults={
        "case_template": "for_each_k{k}", "max_exp": 30, "size_step": 1,
    },
    honors_size_step=True,
    extra_check=_check_case_template,
))

_register(AnalysisKind(
    name="strong-scaling",
    summary="speedup-vs-threads panels per machine and k_it (fig3 shape)",
    run=_run_strong_scaling,
    required_axes=("machines", "backends", "k_values", "size_exps"),
    singleton_axes=("size_exps",),
    option_defaults={
        "case_template": "for_each_k{k}", "baseline_backend": "GCC-SEQ",
    },
    extra_check=_check_case_template,
))

_register(AnalysisKind(
    name="algo-panels",
    summary="problem + strong-scaling panel pair for one algorithm "
            "(fig4-fig7 shape)",
    run=_run_algo_panels,
    required_axes=("machines", "backends", "cases", "size_exps"),
    singleton_axes=("machines", "cases", "size_exps"),
    option_defaults={"reference_backend": "GCC-SEQ", "size_step": 1},
    honors_size_step=True,
))

_register(AnalysisKind(
    name="gpu-problem",
    summary="GPU-vs-host size sweep with forced transfers (fig8 shape)",
    run=_run_gpu_problem,
    required_axes=("machines", "backends", "k_values"),
    option_defaults={
        "series": (), "max_exp": 30, "size_step": 1, "elem": "double",
        "ratio_baseline": None, "ratio_series": (),
    },
    honors_size_step=True,
    extra_check=_check_series,
))

_register(AnalysisKind(
    name="gpu-chaining",
    summary="chained vs per-call-transfer GPU panels (fig9 shape)",
    run=_run_gpu_chaining,
    required_axes=("machines", "backends", "cases"),
    singleton_axes=("cases",),
    option_defaults={
        "series": (), "panels": (), "max_exp": 30, "size_step": 1,
        "elem": "double", "min_time": 5.0, "chain_ratio_series": None,
    },
    honors_size_step=True,
    extra_check=_check_series,
))

_register(AnalysisKind(
    name="counter-table",
    summary="Likwid-region hardware counters per backend "
            "(table3/table4 shape)",
    run=_run_counter_table,
    required_axes=("machines", "backends", "cases", "size_exps"),
    singleton_axes=("machines", "cases", "size_exps"),
    option_defaults={"calls": 100},
))

_register(AnalysisKind(
    name="campaign-speedup",
    summary="campaign-planned speedup-vs-sequential grid (table5 shape)",
    run=_run_campaign_speedup,
    required_axes=("machines", "backends", "cases", "size_exps", "threads"),
    singleton_axes=("size_exps",),
    option_defaults={
        "campaign_name": None, "baseline_backend": "GCC-SEQ", "min_time": 0.0,
    },
    campaign_spec_for=_campaign_for_grid,
))

_register(AnalysisKind(
    name="campaign-efficiency",
    summary="max threads at >= threshold parallel efficiency "
            "(table6 shape)",
    run=_run_campaign_efficiency,
    required_axes=("machines", "backends", "cases", "size_exps", "threads"),
    singleton_axes=("size_exps",),
    option_defaults={
        "campaign_name": None, "baseline_backend": "GCC-SEQ",
        "efficiency_threshold": 0.70, "min_time": 0.0,
    },
    campaign_spec_for=_campaign_for_grid,
))

_register(AnalysisKind(
    name="binary-sizes",
    summary="compile/link-model binary sizes per backend (table7 shape)",
    run=_run_binary_sizes,
    required_axes=("backends",),
))

_register(AnalysisKind(
    name="campaign-grid",
    summary="generic user-defined sweep: seconds + speedup per point",
    run=_run_campaign_grid,
    required_axes=("machines", "backends", "cases", "size_exps", "threads"),
    optional_axes=("allocators",),
    singleton_axes=("size_exps",),
    option_defaults={
        "campaign_name": None, "baseline_backend": "GCC-SEQ", "min_time": 0.0,
    },
    campaign_spec_for=_campaign_for_grid,
))


def analysis_kinds() -> dict[str, AnalysisKind]:
    """All registered kinds, keyed by name (registration order)."""
    return dict(_KINDS)


def get_analysis(name: str, scenario: str | None = None) -> AnalysisKind:
    """Look up one analysis kind; unknown names raise naming the field."""
    try:
        return _KINDS[name]
    except KeyError:
        where = f"scenario {scenario!r}: " if scenario else ""
        raise ScenarioError(
            f"{where}unknown analysis kind {name!r} in field 'analysis'; "
            f"known: {sorted(_KINDS)}"
        ) from None
