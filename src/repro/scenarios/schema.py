"""The typed scenario schema: every figure/table as a declarative spec.

A :class:`ScenarioSpec` is the data form of one experiment: which
machines, backends, cases and sweep axes to run, which analysis kind
(:mod:`repro.scenarios.analyses`) turns the measurements into an
artifact, and which fidelity artifact its claims bind to. The built-in
registry (:mod:`repro.scenarios.registry`) carries one spec per paper
figure/table; user scenarios load from JSON files through
:func:`load_scenario_file` and pass through exactly the same validation.

Validation is two-layered:

1. **Structural** (:meth:`ScenarioSpec.__post_init__`): field types,
   non-negative sizes, well-formed exclude pairs, no duplicate values
   inside an axis. Violations raise :class:`~repro.errors.ScenarioError`
   naming the offending field.
2. **Registry-backed** (:func:`validate_scenario`): every machine,
   backend, case and allocator name must resolve through
   :mod:`repro.scenarios.resolve`, exclude pairs must reference declared
   axis values, and the spec's analysis kind must find every axis it
   requires non-empty (an empty grid is rejected, not silently skipped).

Specs serialise to the same canonical JSON the campaign layer uses
(sorted keys, compact separators), so a spec's identity is stable: the
property suite pins that ``from_dict(to_dict(spec))`` round-trips
bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Mapping

from repro.campaign.spec import canonical_json
from repro.errors import (
    ConfigurationError,
    ScenarioError,
    UnknownBackendError,
    UnknownMachineError,
)
from repro.scenarios.resolve import (
    ALLOCATOR_FACTORIES,
    resolve_backend,
    resolve_case,
    resolve_machine,
)

__all__ = [
    "ScenarioSpec",
    "validate_scenario",
    "load_scenario_file",
    "scenario_from_dict",
    "AXIS_FIELDS",
]

#: The sweep-axis fields a spec may populate (analysis kinds declare
#: which of these they require; the rest must stay empty).
AXIS_FIELDS = (
    "machines",
    "backends",
    "cases",
    "size_exps",
    "threads",
    "k_values",
    "allocators",
)


def _freeze(value: Any, *, field_name: str) -> tuple:
    """Normalise a list-ish axis to a tuple, rejecting duplicates."""
    out = tuple(value)
    if len(set(out)) != len(out):
        raise ScenarioError(
            f"field {field_name!r} has overlapping entries: {list(out)} "
            "(each axis value may appear once)"
        )
    return out


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: axes + analysis binding + claims hook.

    ``options`` carries analysis-kind-specific scalars (panel titles,
    k-iteration templates, efficiency thresholds...); unknown option
    keys are rejected by :func:`validate_scenario` against the kind's
    declared option set, so a typo fails loudly instead of silently
    falling back to a default.
    """

    name: str
    analysis: str
    title: str = ""
    machines: tuple[str, ...] = ()
    backends: tuple[str, ...] = ()
    cases: tuple[str, ...] = ()
    size_exps: tuple[int, ...] = ()
    threads: tuple[int | None, ...] = ()
    k_values: tuple[int, ...] = ()
    allocators: tuple[str | None, ...] = ()
    exclude: tuple[tuple[str, str], ...] = ()
    options: Mapping[str, Any] = field(default_factory=dict)
    claims: str = ""

    def __post_init__(self) -> None:
        """Structural validation; every failure names its field."""
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("field 'name' must be a non-empty string")
        if not self.analysis or not isinstance(self.analysis, str):
            raise ScenarioError(
                f"scenario {self.name!r}: field 'analysis' must name an "
                "analysis kind"
            )
        for axis in AXIS_FIELDS:
            object.__setattr__(
                self, axis, _freeze(getattr(self, axis), field_name=axis)
            )
        for axis in ("machines", "backends", "cases"):
            for value in getattr(self, axis):
                if not isinstance(value, str) or not value:
                    raise ScenarioError(
                        f"scenario {self.name!r}: field {axis!r} entries must "
                        f"be non-empty strings, got {value!r}"
                    )
        for exp in self.size_exps:
            if not isinstance(exp, int) or isinstance(exp, bool) or exp < 0:
                raise ScenarioError(
                    f"scenario {self.name!r}: field 'size_exps' entries must "
                    f"be non-negative integers, got {exp!r}"
                )
        for t in self.threads:
            if t is not None and (
                not isinstance(t, int) or isinstance(t, bool) or t < 1
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: field 'threads' entries must be "
                    f"positive integers or null, got {t!r}"
                )
        for k in self.k_values:
            if not isinstance(k, int) or isinstance(k, bool) or k < 0:
                raise ScenarioError(
                    f"scenario {self.name!r}: field 'k_values' entries must "
                    f"be non-negative integers, got {k!r}"
                )
        pairs = []
        for pair in self.exclude:
            pair = tuple(pair)
            if len(pair) != 2 or not all(isinstance(p, str) for p in pair):
                raise ScenarioError(
                    f"scenario {self.name!r}: field 'exclude' entries are "
                    f"(machine, backend) string pairs, got {pair!r}"
                )
            pairs.append(pair)
        if len(set(pairs)) != len(pairs):
            raise ScenarioError(
                f"scenario {self.name!r}: field 'exclude' has overlapping "
                f"entries: {pairs}"
            )
        object.__setattr__(self, "exclude", tuple(pairs))
        if not isinstance(self.options, Mapping):
            raise ScenarioError(
                f"scenario {self.name!r}: field 'options' must be an object"
            )
        object.__setattr__(self, "options", dict(self.options))
        if not isinstance(self.title, str):
            raise ScenarioError(
                f"scenario {self.name!r}: field 'title' must be a string"
            )
        if not isinstance(self.claims, str):
            raise ScenarioError(
                f"scenario {self.name!r}: field 'claims' must be a string "
                "(a fidelity artifact id, or empty)"
            )

    def option(self, key: str, default: Any = None) -> Any:
        """One analysis option with a kind-supplied default."""
        return self.options.get(key, default)

    def with_axes(self, **axes: Any) -> "ScenarioSpec":
        """A copy with some axis fields replaced (service-side overrides)."""
        unknown = set(axes) - set(AXIS_FIELDS)
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r}: cannot override non-axis "
                f"field(s) {sorted(unknown)}; axes are {list(AXIS_FIELDS)}"
            )
        return replace(
            self, **{k: tuple(v) for k, v in axes.items()}
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready; tuples become lists)."""
        return {
            "name": self.name,
            "analysis": self.analysis,
            "title": self.title,
            "machines": list(self.machines),
            "backends": list(self.backends),
            "cases": list(self.cases),
            "size_exps": list(self.size_exps),
            "threads": list(self.threads),
            "k_values": list(self.k_values),
            "allocators": list(self.allocators),
            "exclude": [list(pair) for pair in self.exclude],
            "options": dict(self.options),
            "claims": self.claims,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected."""
        if not isinstance(payload, Mapping):
            raise ScenarioError("a scenario spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known
        if extra:
            raise ScenarioError(
                f"unknown scenario spec field(s) {sorted(extra)}; "
                f"known: {sorted(known)}"
            )
        data = dict(payload)
        for axis in AXIS_FIELDS:
            if axis in data:
                if not isinstance(data[axis], (list, tuple)):
                    raise ScenarioError(
                        f"field {axis!r} must be a list, got {data[axis]!r}"
                    )
                data[axis] = tuple(data[axis])
        if "exclude" in data:
            if not isinstance(data["exclude"], (list, tuple)):
                raise ScenarioError(
                    f"field 'exclude' must be a list of pairs, got "
                    f"{data['exclude']!r}"
                )
            data["exclude"] = tuple(tuple(p) for p in data["exclude"])
        try:
            return cls(**data)
        except TypeError as exc:  # missing required field
            raise ScenarioError(f"invalid scenario spec: {exc}") from None

    def canonical(self) -> str:
        """Canonical JSON identity (sorted keys, compact separators)."""
        return canonical_json(self.to_dict())


def scenario_from_dict(payload: Mapping[str, Any]) -> ScenarioSpec:
    """Parse **and fully validate** a spec payload (registry-backed)."""
    spec = ScenarioSpec.from_dict(payload)
    validate_scenario(spec)
    return spec


def validate_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Registry-backed validation; returns ``spec`` for chaining.

    Checks, in order: machine/backend/case/allocator names resolve;
    exclude pairs reference declared axis values; the analysis kind
    exists, finds all of its required axes non-empty, finds no
    unexpected axes populated, and recognises every option key.
    """
    for machine in spec.machines:
        try:
            resolve_machine(machine)
        except UnknownMachineError as exc:
            raise ScenarioError(
                f"scenario {spec.name!r}: unknown machine {machine!r} in "
                f"field 'machines' ({exc})"
            ) from None
    for backend in spec.backends:
        try:
            resolve_backend(backend)
        except UnknownBackendError as exc:
            raise ScenarioError(
                f"scenario {spec.name!r}: unknown backend {backend!r} in "
                f"field 'backends' ({exc})"
            ) from None
    for case in spec.cases:
        try:
            resolve_case(case)
        except ConfigurationError as exc:
            raise ScenarioError(
                f"scenario {spec.name!r}: unknown case {case!r} in "
                f"field 'cases' ({exc})"
            ) from None
    for alloc in spec.allocators:
        if alloc is not None and alloc not in ALLOCATOR_FACTORIES:
            raise ScenarioError(
                f"scenario {spec.name!r}: unknown allocator {alloc!r} in "
                f"field 'allocators'; known: {sorted(ALLOCATOR_FACTORIES)}"
            )
    for machine, backend in spec.exclude:
        if machine not in spec.machines:
            raise ScenarioError(
                f"scenario {spec.name!r}: exclude pair ({machine!r}, "
                f"{backend!r}) names a machine absent from field 'machines'"
            )
        if backend not in spec.backends:
            raise ScenarioError(
                f"scenario {spec.name!r}: exclude pair ({machine!r}, "
                f"{backend!r}) names a backend absent from field 'backends'"
            )
    from repro.scenarios.analyses import get_analysis

    analysis = get_analysis(spec.analysis, scenario=spec.name)
    analysis.check(spec)
    return spec


def load_scenario_file(path: str | Path) -> ScenarioSpec:
    """Load and validate one user-defined scenario from a JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ScenarioError(f"scenario file {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"scenario file {path} is not valid JSON: {exc}") from None
    return scenario_from_dict(payload)
