"""``pstl-scenario`` command-line entry point.

Scenario names are auto-discovered from the registry, so every paper
figure/table -- and any user-defined spec file -- runs through the same
three subcommands::

    pstl-scenario list                         # every registered scenario
    pstl-scenario describe table5              # axes, kind, canonical JSON
    pstl-scenario run fig1                     # measure + print the cells
    pstl-scenario run table5 --campaign-dir campaigns/t5 --workers 4
    pstl-scenario run --scenario-file my_sweep.json --json out.json

Exit codes: 0 = success; 1 = the scenario failed validation or
execution; 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError, ScenarioError
from repro.scenarios.analyses import RunOptions, analysis_kinds
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import describe_scenario, run_scenario
from repro.scenarios.schema import ScenarioSpec, load_scenario_file

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema; registry names appear in the help text."""
    names = ", ".join(scenario_names())
    parser = argparse.ArgumentParser(
        prog="pstl-scenario",
        description="Run declarative benchmark scenarios (see "
        "docs/SCENARIOS.md). Registered scenarios: " + names + ".",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered scenario")

    describe = sub.add_parser(
        "describe", help="show one scenario's axes, kind and canonical JSON"
    )
    _add_target_args(describe)

    run = sub.add_parser("run", help="measure one scenario and print its cells")
    _add_target_args(run)
    run.add_argument("--json", default=None, metavar="OUT.json",
                     help="also write cells/curves as JSON")
    run.add_argument("--campaign-dir", default=None, metavar="DIR",
                     help="campaign directory whose cache campaign-shaped "
                     "scenarios reuse (cache lives under DIR/cache)")
    run.add_argument("--workers", type=int, default=0,
                     help="process-pool width for campaign-shaped scenarios "
                     "(default 0 = inline)")
    run.add_argument("--size-step", type=int, default=None,
                     help="override the problem-size sweep stride of kinds "
                     "with a size axis (default: the scenario's own)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the cell table (summary line only)")
    return parser


def _add_target_args(sub: argparse.ArgumentParser) -> None:
    """The name-or-file scenario selector shared by describe/run."""
    sub.add_argument("name", nargs="?", default=None,
                     help="a registered scenario name (see 'list')")
    sub.add_argument("--scenario-file", default=None, metavar="SPEC.json",
                     help="run a user-defined scenario spec instead of a "
                     "registered name (same schema and validation)")


def _resolve_target(args) -> ScenarioSpec:
    """The spec named on the command line (registry or file, not both)."""
    if (args.name is None) == (args.scenario_file is None):
        raise ScenarioError(
            "pass exactly one of: a scenario name, or --scenario-file"
        )
    if args.scenario_file is not None:
        return load_scenario_file(args.scenario_file)
    return get_scenario(args.name)


def _cmd_list(args) -> int:
    """``pstl-scenario list``: one line per registered scenario."""
    kinds = analysis_kinds()
    for name in scenario_names():
        spec = get_scenario(name)
        kind = kinds[spec.analysis]
        service = " [service]" if kind.campaign_spec_for is not None else ""
        print(f"{name}\t{spec.analysis}{service}\t{spec.title}")
    return 0


def _cmd_describe(args) -> int:
    """``pstl-scenario describe``."""
    print(describe_scenario(_resolve_target(args)))
    return 0


def _cmd_run(args) -> int:
    """``pstl-scenario run``."""
    spec = _resolve_target(args)
    store = None
    if args.campaign_dir is not None:
        from repro.campaign.store import ResultStore

        store = ResultStore(Path(args.campaign_dir) / "cache")
    run = run_scenario(
        spec,
        RunOptions(store=store, workers=args.workers, size_step=args.size_step),
    )
    if args.quiet:
        print(f"{run.spec.name}: {len(run.cells)} cells, "
              f"{len(run.curves)} curves")
    else:
        print(run.rendered())
    if args.json is not None:
        payload = {
            "scenario": run.spec.to_dict(),
            "cells": dict(run.cells),
            "curves": {k: [list(p) for p in v] for k, v in run.curves.items()},
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "describe": _cmd_describe,
        "run": _cmd_run,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
