"""The one resolver for machine/backend/case/allocator names and contexts.

Before this module, every experiment driver re-imported and re-wrapped
the registry lookups of ``repro.machines``/``repro.backends``/``
repro.suite.cases`` and re-derived the "all cores unless sequential"
thread rule for itself; the scenario registry would have been the fourth
copy. This module is the single home of those rules, used by both the
scenario engine (:mod:`repro.scenarios.analyses`) and the legacy driver
shims (``repro.experiments.common.make_ctx``, ``repro.experiments.
fig8.gpu_ctx``), with ``tests/scenarios/test_resolver.py`` pinning that
all callers resolve identically.

Resolution is intentionally *strict*: an unknown name raises the
registry's own error (:class:`~repro.errors.UnknownMachineError`,
:class:`~repro.errors.UnknownBackendError`,
:class:`~repro.errors.ConfigurationError` for cases) rather than a
scenario-flavoured wrapper, so callers can tell "mistyped spec" apart
from "engine bug".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.backends import get_backend
from repro.errors import ScenarioError
from repro.machines import get_machine
from repro.memory.allocators import (
    Allocator,
    DefaultAllocator,
    HpxNumaAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.execution.context import ExecutionContext
    from repro.sim.gpu import GpuExecution
    from repro.suite.cases import BenchCase

__all__ = [
    "ALLOCATOR_FACTORIES",
    "resolve_machine",
    "resolve_backend",
    "resolve_case",
    "resolve_allocator",
    "resolve_threads",
    "make_context",
]

#: Named allocators a spec may request (``None``/"" = backend default).
#: The same mapping the campaign executor applies to ``PointSpec.
#: allocator``; kept here so spec validation, the scenario engine and
#: the executor can never drift apart.
ALLOCATOR_FACTORIES: Mapping[str, Callable[[], Allocator]] = {
    "default": DefaultAllocator,
    "first-touch": ParallelFirstTouchAllocator,
    "hpx": HpxNumaAllocator,
    "interleaved": InterleavedAllocator,
}


def resolve_machine(name: str):
    """The machine model for ``name`` (paper ids, "mach-a", nicknames)."""
    return get_machine(name)


def resolve_backend(name: str):
    """The backend model for ``name`` (case-insensitive, "-"/"_" agnostic)."""
    return get_backend(name)


def resolve_case(name: str) -> "BenchCase":
    """The benchmark case registered under ``name``."""
    from repro.suite.cases import get_case

    return get_case(name)


def resolve_allocator(name: str | None) -> Allocator | None:
    """A fresh allocator instance for ``name`` (``None`` = backend default)."""
    if name is None:
        return None
    try:
        return ALLOCATOR_FACTORIES[name]()
    except KeyError:
        raise ScenarioError(
            f"unknown allocator {name!r}; known: "
            f"{sorted(ALLOCATOR_FACTORIES)} (or null for the backend default)"
        ) from None


def resolve_threads(machine, backend, threads: int | None = None) -> int:
    """The paper's thread rule for one (machine, backend) pair.

    ``None`` means "all physical cores" (Section 4.1's maximum);
    sequential backends always run on one thread regardless of the
    requested count.
    """
    count = threads if threads is not None else getattr(machine, "total_cores", 1)
    if backend.is_sequential:
        count = 1
    return count


def make_context(
    machine: str,
    backend: str,
    threads: int | None = None,
    allocator: Allocator | str | None = None,
    mode: str = "model",
    gpu_options: "GpuExecution | None" = None,
) -> "ExecutionContext":
    """Build an :class:`~repro.execution.context.ExecutionContext` by name.

    The single construction path behind ``experiments.common.make_ctx``,
    ``experiments.fig8.gpu_ctx`` and every scenario analysis kind.
    ``allocator`` accepts either a ready instance or a registered name
    (see :data:`ALLOCATOR_FACTORIES`).
    """
    from repro.execution.context import ExecutionContext

    m = resolve_machine(machine)
    b = resolve_backend(backend)
    alloc = resolve_allocator(allocator) if isinstance(allocator, str) else allocator
    extra = {} if gpu_options is None else {"gpu_options": gpu_options}
    return ExecutionContext(
        m,
        b,
        threads=resolve_threads(m, b, threads),
        allocator=alloc,
        mode=mode,
        **extra,
    )
