"""Run scenarios: spec -> measured cells/curves -> checkable artifact.

:func:`run_scenario` accepts a registered name, a validated
:class:`~repro.scenarios.schema.ScenarioSpec`, or a raw payload dict,
dispatches to the spec's analysis kind, and wraps the result in a
:class:`ScenarioRun` whose ``artifact()`` is the fidelity layer's
:class:`~repro.fidelity.measure.MeasuredArtifact` -- so everything that
consumes fidelity artifacts (claim checks, refdata diffs, CI
conformance) can consume scenario output unchanged.

:func:`campaign_payload` is the service bridge: for campaign-shaped
kinds it converts a scenario (plus optional axis overrides) into the
plain campaign-spec dict ``repro.service`` already accepts, so a
scenario submission dedups against the equivalent inline submission via
the same content-derived campaign id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ScenarioError
from repro.scenarios.analyses import RunOptions, get_analysis
from repro.scenarios.registry import get_scenario
from repro.scenarios.schema import ScenarioSpec, scenario_from_dict, validate_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fidelity.measure import MeasuredArtifact

__all__ = [
    "RunOptions",
    "ScenarioRun",
    "resolve_spec",
    "run_scenario",
    "campaign_payload",
    "service_payload",
    "describe_scenario",
]


def resolve_spec(scenario: "str | ScenarioSpec | Mapping[str, Any]") -> ScenarioSpec:
    """A validated spec from a name, spec instance, or payload dict."""
    if isinstance(scenario, ScenarioSpec):
        return validate_scenario(scenario)
    if isinstance(scenario, str):
        return get_scenario(scenario)
    if isinstance(scenario, Mapping):
        return scenario_from_dict(scenario)
    raise ScenarioError(
        f"cannot interpret {type(scenario).__name__} as a scenario "
        "(want a name, a ScenarioSpec, or a spec dict)"
    )


@dataclass(frozen=True)
class ScenarioRun:
    """One executed scenario: the spec plus its measured grids."""

    spec: ScenarioSpec
    cells: Mapping[str, float | None] = field(default_factory=dict)
    curves: Mapping[str, tuple] = field(default_factory=dict)

    def artifact(self) -> "MeasuredArtifact":
        """As a fidelity artifact (id = the spec's claims binding/name)."""
        from repro.fidelity.measure import MeasuredArtifact

        return MeasuredArtifact(
            self.spec.claims or self.spec.name,
            cells=dict(self.cells),
            curves=dict(self.curves),
        )

    def rendered(self) -> str:
        """A flat, human-readable table of the measured cells."""
        from repro.util.tables import TextTable

        table = TextTable(
            headers=["Cell", "Value"],
            title=f"{self.spec.name}: {self.spec.title or self.spec.analysis}",
        )
        for key in sorted(self.cells):
            value = self.cells[key]
            table.add_row([key, "N/A" if value is None else f"{value:.6g}"])
        lines = [table.render()]
        if self.curves:
            lines.append(f"curves: {len(self.curves)} series "
                         f"({', '.join(sorted(self.curves))})")
        return "\n".join(lines)


def run_scenario(
    scenario: "str | ScenarioSpec | Mapping[str, Any]",
    options: RunOptions | None = None,
) -> ScenarioRun:
    """Validate, dispatch to the analysis kind, and measure one scenario."""
    spec = resolve_spec(scenario)
    kind = get_analysis(spec.analysis, scenario=spec.name)
    cells, curves = kind.run(spec, options if options is not None else RunOptions())
    return ScenarioRun(spec=spec, cells=dict(cells), curves=dict(curves))


def campaign_payload(
    scenario: "str | ScenarioSpec | Mapping[str, Any]",
    overrides: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """A scenario as a service-submittable campaign-spec dict.

    Only campaign-shaped kinds (``campaign-speedup``,
    ``campaign-efficiency``, ``campaign-grid``) map onto the campaign
    planner; others raise. ``overrides`` replaces axis fields (e.g.
    ``{"size_exps": [12]}``) *before* conversion and re-validation, so a
    narrowed scenario is still a fully-checked spec.
    """
    spec = resolve_spec(scenario)
    if overrides:
        spec = validate_scenario(spec.with_axes(**overrides))
    kind = get_analysis(spec.analysis, scenario=spec.name)
    if kind.campaign_spec_for is None:
        raise ScenarioError(
            f"scenario {spec.name!r}: analysis kind {kind.name!r} has no "
            "campaign form; service submission needs a campaign-shaped kind "
            "(campaign-speedup, campaign-efficiency, campaign-grid)"
        )
    return kind.campaign_spec_for(spec).to_dict()


def service_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Resolve a ``{"scenario": ..., **axis overrides}`` submission.

    The ``scenario`` key holds a registered name (or a full spec dict);
    every other key is an axis override (``size_exps``, ``threads``,
    ...). Returns the campaign-spec dict the scheduler admits, so a
    scenario submission and the equivalent inline spec share one
    content-derived campaign id and dedup against each other.
    """
    data = dict(payload)
    scenario = data.pop("scenario")
    return campaign_payload(scenario, data or None)


def describe_scenario(spec: ScenarioSpec) -> str:
    """A human summary of one spec: kind contract + canonical JSON."""
    kind = get_analysis(spec.analysis, scenario=spec.name)
    lines = [
        f"{spec.name}: {spec.title or '(untitled)'}",
        f"  analysis: {kind.name} -- {kind.summary}",
        f"  claims:   {spec.claims or '(none)'}",
    ]
    for axis in ("machines", "backends", "cases", "size_exps", "threads",
                 "k_values", "allocators"):
        values = getattr(spec, axis)
        if values:
            lines.append(f"  {axis}: {list(values)}")
    if spec.exclude:
        lines.append(f"  exclude: {[list(p) for p in spec.exclude]}")
    if spec.options:
        lines.append(f"  options: {dict(spec.options)}")
    if kind.campaign_spec_for is not None:
        lines.append("  service: submittable as a campaign payload "
                     '({"scenario": "%s"})' % spec.name)
    lines.append(f"  spec: {spec.canonical()}")
    return "\n".join(lines)
