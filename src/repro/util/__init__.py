"""Shared utilities: units, statistics, tables, ASCII plots, validation."""

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    format_bytes,
    format_count,
    format_seconds,
    parse_size,
)
from repro.util.stats import (
    ConfidenceInterval,
    geomean,
    harmonic_mean,
    mean,
    median,
    percentile,
    stddev,
)
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    is_power_of_two,
)

__all__ = [
    "GIB",
    "KIB",
    "MIB",
    "format_bytes",
    "format_count",
    "format_seconds",
    "parse_size",
    "ConfidenceInterval",
    "geomean",
    "harmonic_mean",
    "mean",
    "median",
    "percentile",
    "stddev",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "is_power_of_two",
]
