"""Small statistics helpers used by the harness and analysis layers.

Implemented by hand (rather than pulling in pandas) so the library stays
dependency-light; NumPy is used where it is a clear win.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "mean",
    "median",
    "geomean",
    "harmonic_mean",
    "stddev",
    "percentile",
    "ConfidenceInterval",
]


def _require_nonempty(values: Sequence[float], what: str) -> None:
    if len(values) == 0:
        raise ValueError(f"{what} of an empty sequence is undefined")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    _require_nonempty(values, "mean")
    return float(np.mean(np.asarray(values, dtype=float)))


def median(values: Sequence[float]) -> float:
    """Median."""
    _require_nonempty(values, "median")
    return float(np.median(np.asarray(values, dtype=float)))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; standard for averaging speedups across benchmarks."""
    _require_nonempty(values, "geomean")
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; appropriate for averaging rates (e.g., bandwidths)."""
    _require_nonempty(values, "harmonic mean")
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("harmonic mean requires strictly positive values")
    return float(len(arr) / np.sum(1.0 / arr))


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); zero for a single observation."""
    _require_nonempty(values, "stddev")
    if len(values) == 1:
        return 0.0
    return float(np.std(np.asarray(values, dtype=float), ddof=1))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile, ``0 <= q <= 100``."""
    _require_nonempty(values, "percentile")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric normal-approximation confidence interval for a mean."""

    center: float
    halfwidth: float
    level: float

    @property
    def low(self) -> float:
        return self.center - self.halfwidth

    @property
    def high(self) -> float:
        return self.center + self.halfwidth

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @classmethod
    def from_samples(
        cls, values: Sequence[float], level: float = 0.95
    ) -> "ConfidenceInterval":
        """Build a CI from samples using the normal approximation.

        The simulator is deterministic, so in practice intervals collapse to
        zero width; the type exists so reporters have one representation for
        repeated measurements.
        """
        _require_nonempty(values, "confidence interval")
        if not 0.0 < level < 1.0:
            raise ValueError(f"confidence level must be in (0, 1), got {level}")
        m = mean(values)
        if len(values) == 1:
            return cls(center=m, halfwidth=0.0, level=level)
        z = math.sqrt(2.0) * _erfinv(level)
        half = z * stddev(values) / math.sqrt(len(values))
        return cls(center=m, halfwidth=half, level=level)


def _erfinv(x: float) -> float:
    """Inverse error function, exact to double precision.

    A Winitzki-style closed form is only good to ~2e-3, which shifts CI
    z-values in the third decimal (z(0.95) came out 1.9546 instead of
    1.9600). Instead, start from that approximation and polish with
    Newton's method on ``erf(y) - x = 0`` using ``math.erf``; the
    quadratic convergence reaches machine precision in a handful of
    steps for any x in (-1, 1).
    """
    if not -1.0 < x < 1.0:
        raise ValueError("erfinv domain is (-1, 1)")
    if x == 0.0:
        return 0.0
    # Winitzki seed: within ~2e-3 everywhere on (-1, 1).
    a = 0.147
    ln1mx2 = math.log(1.0 - x * x)
    term = 2.0 / (math.pi * a) + ln1mx2 / 2.0
    y = math.copysign(math.sqrt(math.sqrt(term**2 - ln1mx2 / a) - term), x)
    # Newton: erf'(y) = 2/sqrt(pi) * exp(-y^2).
    two_over_sqrt_pi = 2.0 / math.sqrt(math.pi)
    for _ in range(50):
        err = math.erf(y) - x
        if err == 0.0:
            break
        step = err / (two_over_sqrt_pi * math.exp(-y * y))
        y -= step
        if abs(step) <= 1e-15 * abs(y):
            break
    return y
