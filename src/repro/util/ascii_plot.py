"""Minimal ASCII line charts for terminal-friendly figure reproductions.

The paper's figures are speedup and runtime charts. The benches regenerate
the numeric series; these plots give a quick visual sanity check without a
plotting dependency. The x-axis is rendered logarithmically when requested,
matching the paper's log-linear speedup charts (Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "line_plot"]


@dataclass(frozen=True)
class Series:
    """A named (x, y) series to draw."""

    name: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x and y lengths differ")
        if len(self.x) == 0:
            raise ValueError(f"series {self.name!r}: empty")


_MARKERS = "ox+*#@%&"


def line_plot(
    series: Sequence[Series],
    width: int = 72,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
) -> str:
    """Render series onto a character canvas; returns the chart as a string."""
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("canvas too small")

    def tx(v: float) -> float:
        if logx:
            if v <= 0:
                raise ValueError("log x-axis requires positive x values")
            return math.log2(v)
        return v

    def ty(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("log y-axis requires positive y values")
            return math.log2(v)
        return v

    xs = [tx(v) for s in series for v in s.x]
    ys = [ty(v) for s in series for v in s.y]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xv, yv in zip(s.x, s.y):
            col = round((tx(xv) - xmin) / (xmax - xmin) * (width - 1))
            row = round((ty(yv) - ymin) / (ymax - ymin) * (height - 1))
            canvas[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{2**ymax:.3g}" if logy else f"{ymax:.3g}"
    bot_label = f"{2**ymin:.3g}" if logy else f"{ymin:.3g}"
    label_w = max(len(top_label), len(bot_label))
    for i, row_chars in enumerate(canvas):
        label = top_label if i == 0 else bot_label if i == height - 1 else ""
        lines.append(f"{label:>{label_w}} |" + "".join(row_chars))
    left = f"{2**xmin:.3g}" if logx else f"{xmin:.3g}"
    right = f"{2**xmax:.3g}" if logx else f"{xmax:.3g}"
    axis = " " * label_w + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * (label_w + 2) + left + " " * max(1, width - len(left) - len(right)) + right
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
