"""Byte/time/count unit helpers.

The paper reports bandwidths in GB/s and GiB/s, binary sizes in MiB, and
problem sizes as powers of two; these helpers keep formatting consistent
across reporters and analysis tables.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_seconds",
    "format_count",
    "parse_size",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3

KB = 1000
MB = 1000**2
GB = 1000**3

_BINARY_STEPS = [(GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")]


def format_bytes(nbytes: float, precision: int = 2) -> str:
    """Render a byte count with a binary suffix (``"17.21 MiB"``)."""
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    for step, suffix in _BINARY_STEPS:
        if nbytes >= step:
            return f"{nbytes / step:.{precision}f} {suffix}"
    return f"{nbytes:.0f} B"


def format_seconds(seconds: float, precision: int = 3) -> str:
    """Render a duration with an SI suffix chosen for readability."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds == 0:
        return "0 s"
    for scale, suffix in [(1.0, "s"), (1e-3, "ms"), (1e-6, "us"), (1e-9, "ns")]:
        if seconds >= scale:
            return f"{seconds / scale:.{precision}f} {suffix}"
    return f"{seconds / 1e-9:.{precision}f} ns"


def format_count(count: float, precision: int = 2) -> str:
    """Render a large count the way the paper's tables do (107G, 1.72T)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    for scale, suffix in [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]:
        if count >= scale:
            return f"{count / scale:.{precision}f}{suffix}"
    return f"{count:.0f}"


_SIZE_SUFFIXES = {
    "b": 1,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "k": KIB,
    "m": MIB,
    "g": GIB,
}


def parse_size(text: str) -> int:
    """Parse a human-entered size (``"2^30"``, ``"64MiB"``, ``"1048576"``).

    ``2^k`` means an element *count*; byte suffixes are returned in bytes.
    """
    s = text.strip().lower().replace(" ", "")
    if not s:
        raise ValueError("empty size string")
    if "^" in s:
        base, _, exp = s.partition("^")
        return int(base) ** int(exp)
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            number = s[: -len(suffix)]
            return int(float(number) * _SIZE_SUFFIXES[suffix])
    return int(float(s))
