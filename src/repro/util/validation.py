"""Argument-validation helpers that raise :class:`ConfigurationError`."""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_in_range",
    "is_power_of_two",
    "check_power_of_two",
]


def check_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def check_in_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )


def is_power_of_two(value: int) -> bool:
    """Whether ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def check_power_of_two(value: int, name: str) -> None:
    """Require ``value`` to be a positive power of two."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")
