"""Plain-text table rendering for reporters and experiment outputs.

The benchmark reporters and the Table 3-7 reproductions all print aligned
monospace tables; this module is the single implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["TextTable", "render_grid"]


@dataclass
class TextTable:
    """An aligned monospace table built row by row.

    Parameters
    ----------
    headers:
        Column headings.
    aligns:
        Optional per-column alignment, ``"<"`` (left) or ``">"`` (right).
        Defaults to left for the first column and right for the rest, which
        matches how the paper formats metric tables.
    title:
        Optional caption printed above the table.
    """

    headers: Sequence[str]
    aligns: Sequence[str] | None = None
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.aligns is not None and len(self.aligns) != len(self.headers):
            raise ValueError("aligns must match headers length")
        for a in self.aligns or ():
            if a not in ("<", ">"):
                raise ValueError(f"alignment must be '<' or '>', got {a!r}")

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified with ``str``."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        aligns = list(
            self.aligns
            if self.aligns is not None
            else ["<"] + [">"] * (len(self.headers) - 1)
        )
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(
                f"{cell:{align}{width}}"
                for cell, align, width in zip(cells, aligns, widths)
            ).rstrip()

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(list(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)


def render_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[object]],
    corner: str = "",
    title: str | None = None,
) -> str:
    """Render a labelled 2-D grid (used for the Table 5/6 reproductions)."""
    if len(cells) != len(row_labels):
        raise ValueError("cells must have one row per row label")
    table = TextTable(headers=[corner, *col_labels], title=title)
    for label, row in zip(row_labels, cells):
        if len(row) != len(col_labels):
            raise ValueError("each cell row must match the column labels")
        table.add_row([label, *row])
    return table.render()
