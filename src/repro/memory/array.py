"""Simulated arrays: a size/type/placement descriptor, optionally backed
by a real NumPy buffer.

``run`` mode materialises the buffer so the parallel STL algorithms can
compute real results; ``model`` mode leaves ``data`` as ``None`` and only
the placement metadata feeds the cost engine (this is what lets the
2^30-element sweeps of the paper run without 8 GiB allocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError
from repro.memory.layout import PagePlacement
from repro.types import ElemType

__all__ = ["SimArray"]


@dataclass
class SimArray:
    """An allocation tracked by the memory model.

    Attributes
    ----------
    n:
        Element count.
    elem:
        Element type.
    placement:
        NUMA page placement produced by the allocator.
    data:
        Backing NumPy buffer, or ``None`` in model mode.
    device_resident_fraction:
        For GPU experiments: fraction of pages currently resident in device
        memory under CUDA Unified Memory (see ``repro.memory.unified``).
    """

    n: int
    elem: ElemType
    placement: PagePlacement
    data: np.ndarray | None = None
    device_resident_fraction: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise AllocationError(f"array size must be positive, got {self.n}")
        if self.data is not None:
            if len(self.data) != self.n:
                raise AllocationError(
                    f"backing buffer has {len(self.data)} elements, expected {self.n}"
                )
            if self.data.dtype != self.elem.dtype:
                raise AllocationError(
                    f"backing buffer dtype {self.data.dtype} != {self.elem.dtype}"
                )
        if not 0.0 <= self.device_resident_fraction <= 1.0:
            raise AllocationError("device_resident_fraction must be in [0, 1]")

    @property
    def nbytes(self) -> int:
        """Total allocation size in bytes."""
        return self.n * self.elem.size

    @property
    def materialized(self) -> bool:
        """Whether a real buffer backs this array (run mode)."""
        return self.data is not None

    def require_data(self) -> np.ndarray:
        """Return the backing buffer or raise for model-mode arrays."""
        if self.data is None:
            raise AllocationError(
                "operation requires a materialized array (run mode); "
                "this array is a model-mode descriptor"
            )
        return self.data

    def view(self) -> np.ndarray:
        """Alias of :meth:`require_data` reading better at call sites."""
        return self.require_data()
