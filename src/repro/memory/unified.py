"""CUDA Unified Memory residency model (paper Section 5.8).

Under Unified Memory, pages migrate to whichever processor faults on them.
The paper's GPU experiments are dominated by exactly this effect: with a
device-to-host transfer forced between kernels (Fig. 9a) every call pays a
full migration, while chained device-side calls (Fig. 9b) find the data
already resident and run at device bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.machines.gpu import GpuMachine
from repro.memory.array import SimArray

__all__ = ["MigrationCost", "UnifiedMemory"]


@dataclass(frozen=True)
class MigrationCost:
    """Outcome of a residency change: bytes moved and modeled seconds."""

    bytes_moved: int
    seconds: float


class UnifiedMemory:
    """Tracks host/device residency of arrays for one GPU.

    The fraction-resident state lives on the :class:`SimArray` so that an
    array's history (previous kernels, forced host touches) carries across
    calls, which is what produces the chaining effect of Fig. 9.
    """

    def __init__(self, gpu: GpuMachine) -> None:
        self.gpu = gpu

    def _migrate(self, nbytes: int) -> MigrationCost:
        if nbytes < 0:
            raise AllocationError("cannot migrate a negative byte count")
        seconds = nbytes / self.gpu.pcie_bandwidth if nbytes else 0.0
        return MigrationCost(bytes_moved=nbytes, seconds=seconds)

    def to_device(self, array: SimArray) -> MigrationCost:
        """Fault the array onto the device; returns the migration cost.

        Only the non-resident fraction moves; a chained second kernel on the
        same array therefore pays nothing.
        """
        if array.nbytes > self.gpu.mem_bytes:
            raise AllocationError(
                f"array of {array.nbytes} B exceeds {self.gpu.name} device "
                f"memory ({self.gpu.mem_bytes} B); UM would thrash"
            )
        missing = int(round((1.0 - array.device_resident_fraction) * array.nbytes))
        array.device_resident_fraction = 1.0
        return self._migrate(missing)

    def to_host(self, array: SimArray) -> MigrationCost:
        """Fault the array back to the host (e.g., validation between calls)."""
        resident = int(round(array.device_resident_fraction * array.nbytes))
        array.device_resident_fraction = 0.0
        return self._migrate(resident)

    def evict(self, array: SimArray) -> None:
        """Drop device residency without modeling a transfer (array freed)."""
        array.device_resident_fraction = 0.0
