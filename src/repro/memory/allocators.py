"""Allocator models: default serial first-touch vs. pSTL-Bench's parallel
first-touch allocator (paper Section 3.3, Listing 5), plus the HPX NUMA
allocator and an explicit interleaving policy.

On Linux, memory is physically placed on the NUMA node of the *first CPU to
touch each page*. A serial ``std::vector`` constructor therefore lands the
whole array on the allocating thread's node; pSTL-Bench's custom allocator
instead first-touches pages with the same parallel policy the benchmark
will use, so each page lands next to the thread that will stream it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import AllocationError
from repro.machines.cpu import CpuMachine
from repro.memory.array import SimArray
from repro.memory.layout import PagePlacement
from repro.types import ElemType

__all__ = [
    "Allocator",
    "DefaultAllocator",
    "ParallelFirstTouchAllocator",
    "HpxNumaAllocator",
    "InterleavedAllocator",
    "get_allocator",
    "allocator_names",
]


class Allocator(ABC):
    """Strategy object deciding the NUMA placement of new arrays."""

    #: Registry/lookup name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def placement(
        self, machine: CpuMachine, threads_per_node: Sequence[int]
    ) -> PagePlacement:
        """Compute where pages land given the touching threads' layout."""

    def allocate(
        self,
        n: int,
        elem: ElemType,
        machine: CpuMachine,
        threads_per_node: Sequence[int],
        materialize: bool = False,
    ) -> SimArray:
        """Allocate an ``n``-element array of ``elem``.

        ``materialize=True`` creates a real zero-initialised NumPy buffer
        (run mode); otherwise only the placement descriptor is built, which
        is how the 2^30-element model-mode sweeps stay cheap.
        """
        if n <= 0:
            raise AllocationError(f"array size must be positive, got {n}")
        nbytes = n * elem.size
        if nbytes > machine.topology.total_memory:
            raise AllocationError(
                f"{nbytes} B exceeds modeled DRAM capacity "
                f"({machine.topology.total_memory} B) of {machine.name}"
            )
        data = np.zeros(n, dtype=elem.dtype) if materialize else None
        return SimArray(
            n=n,
            elem=elem,
            placement=self.placement(machine, threads_per_node),
            data=data,
        )


class DefaultAllocator(Allocator):
    """Serial first touch: every page lands on the allocating thread's node.

    This models plain ``std::vector`` construction on the main thread --
    the baseline the paper's Fig. 1 compares against. The main thread is
    assumed to run on NUMA node 0.
    """

    name = "default"

    def placement(
        self, machine: CpuMachine, threads_per_node: Sequence[int]
    ) -> PagePlacement:
        return PagePlacement.single_node(
            node=0, num_nodes=machine.topology.num_nodes, policy=self.name
        )


class ParallelFirstTouchAllocator(Allocator):
    """pSTL-Bench's custom allocator (Listing 5): parallel first touch.

    Pages are touched with the same parallel policy as the benchmark body,
    so page ownership follows the thread distribution across nodes.
    """

    name = "first-touch"

    def placement(
        self, machine: CpuMachine, threads_per_node: Sequence[int]
    ) -> PagePlacement:
        if len(threads_per_node) != machine.topology.num_nodes:
            raise AllocationError(
                "threads_per_node must have one entry per NUMA node"
            )
        if sum(threads_per_node) <= 0:
            raise AllocationError("need at least one touching thread")
        return PagePlacement.proportional(
            weights=[float(t) for t in threads_per_node], policy=self.name
        )


class HpxNumaAllocator(ParallelFirstTouchAllocator):
    """HPX's own NUMA allocator.

    The paper keeps HPX on its bundled allocator ("the HPX backend ... has
    its own memory allocation strategy", Section 5.1); its placement is the
    same parallel first-touch idea -- pSTL-Bench's allocator is in fact an
    adaptation of it -- so it shares the placement computation.
    """

    name = "hpx-numa"


class InterleavedAllocator(Allocator):
    """Round-robin page interleaving across all nodes (``numactl -i all``).

    Not used by the paper's headline runs but a natural ablation: it fixes
    the bandwidth problem of the default allocator without matching pages
    to threads, so locality is ``1/num_nodes`` regardless of placement.
    """

    name = "interleave"

    def placement(
        self, machine: CpuMachine, threads_per_node: Sequence[int]
    ) -> PagePlacement:
        nodes = machine.topology.num_nodes
        return PagePlacement(
            node_fractions=tuple(1.0 / nodes for _ in range(nodes)),
            policy=self.name,
        )


_ALLOCATORS: dict[str, Allocator] = {
    a.name: a
    for a in (
        DefaultAllocator(),
        ParallelFirstTouchAllocator(),
        HpxNumaAllocator(),
        InterleavedAllocator(),
    )
}


def get_allocator(name: str) -> Allocator:
    """Look up an allocator by name (``"default"``, ``"first-touch"``...)."""
    key = name.strip().lower()
    if key not in _ALLOCATORS:
        raise AllocationError(
            f"unknown allocator {name!r}; known: {allocator_names()}"
        )
    return _ALLOCATORS[key]


def allocator_names() -> list[str]:
    """All registered allocator names, sorted."""
    return sorted(_ALLOCATORS)
