"""Page-placement descriptors for simulated arrays.

The allocator experiments (Section 3.3 / Fig. 1) are entirely about *which
NUMA node owns which pages* of the benchmark arrays. For 2^30-element
arrays an explicit page map would be millions of entries, and the cost
engine only needs per-node ownership fractions, so the canonical
representation is a fraction vector; an explicit page->node map is kept
optionally for small arrays (tests, run mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import PlacementError

__all__ = ["PAGE_SIZE", "PagePlacement"]

PAGE_SIZE = 4096  # bytes; Linux base page size, used for page math


@dataclass(frozen=True)
class PagePlacement:
    """Ownership of an array's pages across NUMA nodes.

    Attributes
    ----------
    node_fractions:
        Fraction of the array's pages owned by each node; sums to 1.
    policy:
        Human-readable allocator name that produced this placement.
    page_nodes:
        Optional explicit page -> node map (small arrays only).
    """

    node_fractions: tuple[float, ...]
    policy: str
    page_nodes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.node_fractions:
            raise PlacementError("placement needs at least one node fraction")
        if any(f < -1e-12 for f in self.node_fractions):
            raise PlacementError("node fractions must be non-negative")
        total = sum(self.node_fractions)
        if abs(total - 1.0) > 1e-9:
            raise PlacementError(f"node fractions must sum to 1, got {total}")
        if self.page_nodes is not None:
            nnodes = len(self.node_fractions)
            if any(not 0 <= p < nnodes for p in self.page_nodes):
                raise PlacementError("page_nodes entry out of node range")

    @property
    def num_nodes(self) -> int:
        """Number of NUMA nodes this placement spans."""
        return len(self.node_fractions)

    def fraction_on(self, node: int) -> float:
        """Fraction of pages owned by ``node``."""
        if not 0 <= node < self.num_nodes:
            raise PlacementError(f"node {node} out of range")
        return self.node_fractions[node]

    def locality_for_threads(self, threads_per_node: Sequence[int]) -> float:
        """Expected fraction of accesses that are node-local.

        Assumes each thread streams through an equal share of the array and
        the allocator interleaved pages per the ownership fractions; the
        probability a given access is local to its thread's node is then
        ``sum_j thread_frac_j * page_frac_j``.
        """
        if len(threads_per_node) != self.num_nodes:
            raise PlacementError(
                "threads_per_node length must equal number of nodes "
                f"({len(threads_per_node)} != {self.num_nodes})"
            )
        total_threads = sum(threads_per_node)
        if total_threads <= 0:
            raise PlacementError("need at least one thread")
        return sum(
            (t / total_threads) * f
            for t, f in zip(threads_per_node, self.node_fractions)
        )

    @classmethod
    def single_node(cls, node: int, num_nodes: int, policy: str) -> "PagePlacement":
        """All pages on one node (the default serial first-touch outcome)."""
        if not 0 <= node < num_nodes:
            raise PlacementError(f"node {node} out of range for {num_nodes} nodes")
        fr = [0.0] * num_nodes
        fr[node] = 1.0
        return cls(node_fractions=tuple(fr), policy=policy)

    @classmethod
    def proportional(
        cls, weights: Sequence[float], policy: str
    ) -> "PagePlacement":
        """Pages spread proportionally to ``weights`` (e.g., threads/node)."""
        total = float(sum(weights))
        if total <= 0:
            raise PlacementError("weights must have a positive sum")
        return cls(
            node_fractions=tuple(w / total for w in weights), policy=policy
        )

    @classmethod
    def from_page_nodes(
        cls, page_nodes: Sequence[int], num_nodes: int, policy: str
    ) -> "PagePlacement":
        """Build from an explicit page map (used by run-mode small arrays)."""
        if len(page_nodes) == 0:
            raise PlacementError("page map must be non-empty")
        counts = np.bincount(np.asarray(page_nodes, dtype=int), minlength=num_nodes)
        if len(counts) > num_nodes:
            raise PlacementError("page map references node outside topology")
        fractions = tuple(float(c) / len(page_nodes) for c in counts)
        return cls(
            node_fractions=fractions,
            policy=policy,
            page_nodes=tuple(int(p) for p in page_nodes),
        )

    def pages_for(self, nbytes: int) -> int:
        """Number of pages an ``nbytes`` allocation occupies."""
        if nbytes < 0:
            raise PlacementError("nbytes must be non-negative")
        return max(1, -(-nbytes // PAGE_SIZE))
