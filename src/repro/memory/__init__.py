"""Memory subsystem: NUMA page placement, allocators, unified memory."""

from repro.memory.allocators import (
    Allocator,
    DefaultAllocator,
    HpxNumaAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
    allocator_names,
    get_allocator,
)
from repro.memory.array import SimArray
from repro.memory.layout import PAGE_SIZE, PagePlacement
from repro.memory.unified import MigrationCost, UnifiedMemory

__all__ = [
    "Allocator",
    "DefaultAllocator",
    "HpxNumaAllocator",
    "InterleavedAllocator",
    "ParallelFirstTouchAllocator",
    "allocator_names",
    "get_allocator",
    "SimArray",
    "PAGE_SIZE",
    "PagePlacement",
    "MigrationCost",
    "UnifiedMemory",
]
