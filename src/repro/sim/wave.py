"""Wave-fused evaluation: every curve of a campaign wave in one array program.

``repro.sim.batch`` vectorizes one curve at a time; campaign waves hold
*many* curves -- for the Table 5 grid, every (machine, backend, case)
cell of a wave is its own single-point curve, so per-curve batching
amortizes nothing. This module fuses the whole wave instead:

* :func:`fuse_wave` packs the :class:`~repro.sim.batch.ArrayProfile` of
  every point into **one struct-of-arrays program** -- a single
  concatenated array per chunk field across all phases of all profiles,
  plus the per-phase model scalars (issue rate, SIMD lanes, traffic and
  overhead factors) expanded to chunk granularity;
* :func:`simulate_wave` evaluates the fused program: the elementwise
  stage (instruction totals, FP lane execution, traffic scaling, time
  conversion) runs **once over the whole wave**, and only the
  order-sensitive folds and the NUMA bandwidth model run per phase --
  with the expensive shared baselines (chunk->thread layouts,
  thread->node maps) computed once per distinct partition instead of
  once per point.

**Bit-identical by construction.** The fused elementwise stage performs
the same IEEE-754 operation per element as the batch engine (elementwise
array ops are bit-identical whether the scalar operand is broadcast from
a Python float or expanded via ``np.repeat``), and all order-sensitive
accumulations are delegated to the exact same fold helpers
(:func:`repro.sim.batch._fold`, ``_thread_fold``,
``_dram_memory_time_arrays``) over per-phase slices of the fused arrays.
``tools/diffcheck.py`` enforces the wave-vs-batch-vs-scalar three-way
bit identity on randomized configurations.

The GPU/unified-memory cost path is vectorized alongside the CPU path:
:func:`simulate_gpu_arrays` is the array-profile counterpart of
:func:`repro.sim.gpu.simulate_gpu` (same migration, launch and roofline
model; per-phase counter folds as ``np.cumsum`` left folds, which match
the scalar engine's ``sum()`` left folds bit for bit).

Observability: fusing and executing a wave emit the ``wave.fuse`` and
``wave.execute`` spans (category ``"wave"``, track :data:`WAVE_TRACK`)
documented in docs/OBSERVABILITY.md -- the wave engine itself, like the
batch engine, never emits per-phase spans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.execution.affinity import ThreadPlacement
from repro.machines.cpu import CpuMachine
from repro.machines.gpu import GpuMachine
from repro.memory.array import SimArray
from repro.memory.unified import UnifiedMemory
from repro.sim import batch as _batch
from repro.sim.bandwidth import MATCHED_POLICIES
from repro.sim.batch import ArrayPhase, ArrayProfile
from repro.sim.engine import _lanes
from repro.sim.gpu import GpuExecution, _INSTR_RATE_FACTOR
from repro.sim.interfaces import BackendModel
from repro.sim.report import Counters, PhaseReport, SimReport
from repro.sim.work import PhaseKind
from repro.trace import get_tracer

__all__ = [
    "WAVE_TRACK",
    "WaveEntry",
    "WaveProgram",
    "fuse_wave",
    "simulate_wave",
    "simulate_wave_entries",
    "simulate_gpu_arrays",
]

#: Trace track that ``wave.fuse`` / ``wave.execute`` spans are recorded on.
WAVE_TRACK = "wave"


@dataclass(frozen=True)
class WaveEntry:
    """One point of a wave: an array profile plus its execution target."""

    machine: CpuMachine
    backend: BackendModel
    profile: ArrayProfile


@dataclass(frozen=True)
class _PhaseSlot:
    """Fused-program bookkeeping for one phase of one entry."""

    entry: int
    phase: ArrayPhase
    start: int
    stop: int
    lanes: int
    rate: float


@dataclass(frozen=True)
class WaveProgram:
    """A whole wave packed as one struct-of-arrays array program.

    ``thread``/``elems``/``instr``/``fp_ops``/``bytes_read``/
    ``bytes_written`` are the chunk fields of every phase of every
    entry, concatenated in entry-then-phase-then-chunk order;
    ``ovh_per_elem``/``traffic``/``inv_rate``/``lanes`` are the phase
    scalars expanded to chunk granularity, so the elementwise stage of
    the cost model can run once over the entire wave. ``slots`` maps
    each phase back to its slice and its entry.
    """

    entries: tuple[WaveEntry, ...]
    slots: tuple[_PhaseSlot, ...]
    thread: np.ndarray
    elems: np.ndarray
    instr: np.ndarray
    fp_ops: np.ndarray
    bytes_read: np.ndarray
    bytes_written: np.ndarray
    ovh_per_elem: np.ndarray
    traffic: np.ndarray
    rate: np.ndarray
    lanes: np.ndarray

    def __len__(self) -> int:
        return len(self.entries)


def fuse_wave(entries: list[WaveEntry] | tuple[WaveEntry, ...]) -> WaveProgram:
    """Pack a wave of array profiles into one :class:`WaveProgram`.

    Validates each profile against its machine the way the batch engine
    does (so error parity is preserved), computes every phase's model
    scalars once, and concatenates all chunk arrays into the fused
    struct-of-arrays form. Emits a zero-duration ``wave.fuse`` span
    (fusion is bookkeeping, not simulated time) when tracing is enabled.
    """
    entries = tuple(entries)
    slots: list[_PhaseSlot] = []
    fields: dict[str, list[np.ndarray]] = {
        "thread": [], "elems": [], "instr": [], "fp_ops": [],
        "bytes_read": [], "bytes_written": [],
    }
    ovh: list[float] = []
    traffic: list[float] = []
    rate: list[float] = []
    lanes_l: list[int] = []
    lengths: list[int] = []

    offset = 0
    for i, entry in enumerate(entries):
        machine, backend, profile = entry.machine, entry.backend, entry.profile
        if profile.threads > machine.total_cores:
            raise SimulationError(
                f"profile uses {profile.threads} threads but {machine.name} "
                f"has {machine.total_cores} cores"
            )
        turbo = machine.seq_turbo_factor if profile.threads == 1 else 1.0
        base_rate = machine.frequency_hz * machine.ipc * turbo
        alg = profile.alg
        for phase in profile.phases:
            ca = phase.chunks
            n_chunks = len(ca)
            phase_rate = base_rate * backend.ipc_factor(alg)
            if phase.kind is PhaseKind.SEQUENTIAL:
                phase_rate /= backend.seq_codegen_factor(alg)
            slots.append(_PhaseSlot(
                entry=i, phase=phase, start=offset, stop=offset + n_chunks,
                lanes=_lanes(machine, backend, phase, profile),
                rate=phase_rate,
            ))
            fields["thread"].append(ca.thread)
            fields["elems"].append(ca.elems)
            fields["instr"].append(ca.instr)
            fields["fp_ops"].append(ca.fp_ops)
            fields["bytes_read"].append(ca.bytes_read)
            fields["bytes_written"].append(ca.bytes_written)
            ovh.append(
                backend.instr_overhead_for(alg, machine.topology.num_nodes)
                if phase.apply_instr_overhead else 0.0
            )
            traffic.append(backend.traffic_factor(alg))
            rate.append(phase_rate)
            lanes_l.append(slots[-1].lanes)
            lengths.append(n_chunks)
            offset += n_chunks

    def _cat(name: str, dtype) -> np.ndarray:
        if not fields[name]:
            return np.zeros(0, dtype=dtype)
        return np.concatenate([np.asarray(a, dtype=dtype) for a in fields[name]])

    reps = np.asarray(lengths, dtype=np.int64)
    program = WaveProgram(
        entries=entries,
        slots=tuple(slots),
        thread=_cat("thread", np.int64),
        elems=_cat("elems", np.float64),
        instr=_cat("instr", np.float64),
        fp_ops=_cat("fp_ops", np.float64),
        bytes_read=_cat("bytes_read", np.float64),
        bytes_written=_cat("bytes_written", np.float64),
        ovh_per_elem=np.repeat(np.asarray(ovh), reps),
        traffic=np.repeat(np.asarray(traffic), reps),
        rate=np.repeat(np.asarray(rate), reps),
        lanes=np.repeat(np.asarray(lanes_l, dtype=np.float64), reps),
    )
    tracer = get_tracer()
    if tracer.enabled and entries:
        tracer.record(
            "wave.fuse", 0.0, category="wave", track=WAVE_TRACK,
            points=len(entries), phases=len(slots), chunks=int(offset),
        )
    return program


def _layout(cache: dict, thread: np.ndarray):
    """Chunk->thread layout of one phase, shared across identical partitions.

    The layout is a pure function of the thread-id array; points of a
    wave that share a partition (every case of one (machine, backend)
    cell does) compute it once. The key is the array's raw bytes, so
    sharing works even when builders materialised separate arrays.
    """
    key = thread.tobytes()
    hit = cache.get(key)
    if hit is None:
        hit = cache[key] = _batch._thread_layout(thread)
    return hit


def _nodes_of(
    cache: dict,
    machine: CpuMachine,
    backend: BackendModel,
    threads: int,
    thread_order: np.ndarray,
) -> np.ndarray:
    """thread-order -> NUMA node array, shared across identical placements."""
    key = (machine.name, backend.affinity_strategy, threads,
           thread_order.tobytes())
    hit = cache.get(key)
    if hit is None:
        placement = ThreadPlacement(
            machine, threads, strategy=backend.affinity_strategy
        )
        hit = cache[key] = np.array(
            [placement.node_of_thread(int(t) % threads) for t in thread_order],
            dtype=np.int64,
        )
    return hit


def simulate_wave(program: WaveProgram) -> tuple[SimReport, ...]:
    """Evaluate a fused wave; one :class:`SimReport` per entry.

    Bit-identical to running :func:`repro.sim.batch.simulate_cpu_arrays`
    on each entry's profile separately (the three-way differential
    harness enforces this): the fused elementwise stage computes the
    same per-element IEEE-754 operations, and the order-sensitive folds
    run on per-phase slices through the batch engine's own fold helpers.
    Emits one ``wave.execute`` span carrying the wave's total simulated
    seconds when tracing is enabled.
    """
    if not program.entries:
        return ()

    # --- fused elementwise stage: once over the entire wave ------------
    has_fp = program.fp_ops > 0.0
    executed = np.where(has_fp, program.fp_ops / program.lanes, 0.0)
    instrs = program.instr + program.elems * program.ovh_per_elem + executed
    read_traffic = program.bytes_read * program.traffic
    write_traffic = program.bytes_written * program.traffic
    instr_vals = instrs / program.rate
    mem_vals = (program.bytes_read + program.bytes_written) * program.traffic
    fp_masked = np.where(has_fp, program.fp_ops, 0.0)

    layout_cache: dict = {}
    node_cache: dict = {}
    per_entry_phases: list[list[PhaseReport]] = [[] for _ in program.entries]

    # --- per-phase order-sensitive stage --------------------------------
    for slot in program.slots:
        entry = program.entries[slot.entry]
        machine, backend, profile = entry.machine, entry.backend, entry.profile
        phase = slot.phase
        s = slice(slot.start, slot.stop)
        alg = profile.alg
        lanes = slot.lanes

        ctr = {
            "instructions": _batch._fold(instrs[s]),
            "fp_scalar": 0.0,
            "fp_packed_128": 0.0,
            "fp_packed_256": 0.0,
            "bytes_read": _batch._fold(read_traffic[s]),
            "bytes_written": _batch._fold(write_traffic[s]),
        }
        if lanes <= 1:
            ctr["fp_scalar"] = _batch._fold(fp_masked[s])
        elif lanes == 2:
            ctr["fp_packed_128"] = _batch._fold(executed[s])
        else:
            ctr["fp_packed_256"] = _batch._fold(executed[s])

        thread_order, tidx, slot_idx = _layout(layout_cache, program.thread[s])
        num_threads = len(thread_order)
        instr_time = _batch._thread_fold(
            instr_vals[s], tidx, slot_idx, num_threads
        )
        mem_bytes = _batch._thread_fold(mem_vals[s], tidx, slot_idx, num_threads)

        compute_time = float(instr_time.max()) if num_threads else 0.0
        if phase.kind is PhaseKind.PARALLEL and profile.threads > 1:
            scaling = profile.threads / backend.effective_threads(profile.threads)
            if scaling > 1.0:
                compute_time *= scaling
                instr_time = instr_time * scaling

        memory_time = 0.0
        total_phase_bytes = _batch._fold(mem_bytes)
        if total_phase_bytes > 0.0 and phase.placement is not None:
            active = max(1, num_threads)
            level = machine.caches.fitting_level(int(phase.working_set), active)
            if level is not None:
                bw = level.bandwidth_per_core
                lane_mem = mem_bytes / bw
                memory_time = float(lane_mem.max())
                per_thread_roofline = float(
                    np.maximum(instr_time, lane_mem).max()
                )
            else:
                thread_nodes = _nodes_of(
                    node_cache, machine, backend, profile.threads, thread_order
                )
                active_nodes = len(set(thread_nodes.tolist()))
                matched = None
                if phase.placement.policy in MATCHED_POLICIES:
                    matched = backend.numa_quality(alg) ** max(0, active_nodes - 1)
                times = _batch._dram_memory_time_arrays(
                    machine,
                    phase.placement,
                    mem_bytes,
                    thread_nodes,
                    matched_quality=matched,
                    bw_efficiency=backend.bw_efficiency_at(alg, active_nodes),
                )
                memory_time = times.total
                scale = times.per_thread / max(1e-30, float(mem_bytes.max()))
                lane_mem = mem_bytes * scale
                per_thread_roofline = float(
                    np.maximum(instr_time, lane_mem).max()
                )
                per_thread_roofline = max(
                    per_thread_roofline,
                    times.per_node,
                    times.global_dram,
                    times.interconnect,
                )
        else:
            per_thread_roofline = compute_time

        phase_time = max(compute_time, per_thread_roofline)

        if (
            phase.spread_penalty > 1.0
            and phase.placement is not None
            and max(phase.placement.node_fractions) < 1.0 - 1e-3
        ):
            weight = min(1.0, 2.0 / machine.topology.num_nodes)
            phase_time *= 1.0 + (phase.spread_penalty - 1.0) * weight

        overhead_time = 0.0
        if phase.sched_chunks:
            overhead_time += backend.sched_overhead(
                phase.sched_chunks, profile.threads
            )
        if phase.sync_points:
            overhead_time += phase.sync_points * backend.sync_cost(profile.threads)
        phase_time += overhead_time

        per_entry_phases[slot.entry].append(
            PhaseReport(
                name=phase.name,
                seconds=phase_time,
                compute_seconds=compute_time,
                memory_seconds=memory_time,
                overhead_seconds=overhead_time,
                counters=Counters(**ctr),
            )
        )

    # --- per-entry report assembly (scalar accumulation order) ----------
    reports: list[SimReport] = []
    for entry, phase_reports in zip(program.entries, per_entry_phases):
        backend, profile = entry.backend, entry.profile
        total_counters = Counters()
        total_time = 0.0
        for pr in phase_reports:
            total_counters = total_counters + pr.counters
            total_time += pr.seconds
        fork_join = 0.0
        if profile.is_parallel:
            fork_join = profile.regions * (
                backend.fork_overhead(profile.threads)
                + backend.join_overhead(profile.threads)
            )
        total_time += fork_join
        reports.append(
            SimReport(
                seconds=total_time,
                counters=total_counters,
                phases=tuple(phase_reports),
                fork_join_seconds=fork_join,
            )
        )

    tracer = get_tracer()
    if tracer.enabled:
        total = 0.0
        for report in reports:
            total += report.seconds
        tracer.record(
            "wave.execute", total, category="wave", track=WAVE_TRACK,
            points=len(reports),
        )
        tracer.advance(total)
    return tuple(reports)


def simulate_wave_entries(
    entries: list[WaveEntry] | tuple[WaveEntry, ...],
) -> tuple[SimReport, ...]:
    """Fuse and evaluate ``entries`` in one call (span-emitting shortcut)."""
    return simulate_wave(fuse_wave(entries))


# ---------------------------------------------------------------------------
# Vectorized GPU / unified-memory cost path
# ---------------------------------------------------------------------------

def simulate_gpu_arrays(
    gpu: GpuMachine,
    profile: ArrayProfile,
    arrays: tuple[SimArray, ...],
    options: GpuExecution = GpuExecution(),
) -> SimReport:
    """Cost an :class:`ArrayProfile` on a GPU; bit-identical to ``simulate_gpu``.

    The array-program counterpart of :func:`repro.sim.gpu.simulate_gpu`:
    unified-memory migration mutates array residency exactly as the
    scalar path does (chained calls on resident data still pay nothing),
    and every per-phase counter total is a ``np.cumsum`` left fold,
    which matches the scalar engine's ``sum()`` left fold bit for bit.
    Like the batch CPU engine it emits no per-phase spans; wave callers
    record ``wave.*`` spans instead.
    """
    um = UnifiedMemory(gpu)
    migration = 0.0
    for array in arrays:
        migration += um.to_device(array).seconds

    total_counters = Counters()
    phase_reports: list[PhaseReport] = []
    kernel_time = 0.0
    launches = max(1, profile.regions)

    for phase in profile.phases:
        ca = phase.chunks
        instr = _batch._fold(ca.instr)
        fp = _batch._fold(ca.fp_ops)
        bytes_read = _batch._fold(ca.bytes_read)
        bytes_written = _batch._fold(ca.bytes_written)

        rate = gpu.compute_rate(profile.elem.size)
        compute = (fp + instr * _INSTR_RATE_FACTOR) / rate
        memory = (bytes_read + bytes_written) / gpu.mem_bandwidth
        if phase.kind is PhaseKind.SEQUENTIAL:
            compute = (fp + instr) / (rate / max(1, gpu.cuda_cores // 64))
        seconds = max(compute, memory)
        kernel_time += seconds

        counters = Counters(
            instructions=instr + fp,
            fp_scalar=fp,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        )
        total_counters = total_counters + counters
        phase_reports.append(
            PhaseReport(
                name=phase.name,
                seconds=seconds,
                compute_seconds=compute,
                memory_seconds=memory,
                overhead_seconds=0.0,
                counters=counters,
            )
        )

    transfer_back = 0.0
    if options.transfer_back:
        for array in arrays:
            transfer_back += um.to_host(array).seconds

    launch = launches * gpu.kernel_launch_latency
    total = migration + launch + kernel_time + transfer_back
    if total < 0:
        raise SimulationError("negative GPU time (model bug)")
    return SimReport(
        seconds=total,
        counters=total_counters,
        phases=tuple(phase_reports),
        fork_join_seconds=launch,
        migration_seconds=migration + transfer_back,
    )
