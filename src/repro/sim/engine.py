"""The CPU cost engine: WorkProfile -> (seconds, counters).

Roofline-style: each thread's phase time is the max of its instruction
time and its memory time; the phase is the slowest thread, further bounded
by the NUMA constraints of ``repro.sim.bandwidth``; fork/join, scheduling
and synchronisation overheads are added per the backend model.

When the process-global tracer is enabled (``repro.trace``), the engine
additionally emits one span per phase on the "phases" track (attributes:
compute vs memory vs overhead seconds and the binding bound) and one lane
span per simulated thread (that thread's instruction time vs memory
time), then advances the simulated clock by the phase cost; fork/join is
a trailing overhead span. With the default null tracer all of this is
skipped behind a single ``enabled`` check per invocation.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.execution.affinity import ThreadPlacement
from repro.machines.cpu import CpuMachine
from repro.sim.bandwidth import MATCHED_POLICIES, dram_memory_time
from repro.sim.interfaces import BackendModel
from repro.sim.report import Counters, PhaseReport, SimReport
from repro.sim.work import Phase, PhaseKind, WorkProfile
from repro.trace.core import PHASE_TRACK, get_tracer, thread_track

__all__ = ["simulate_cpu"]

_SPREAD_EPS = 1e-3


def _lanes(machine: CpuMachine, backend: BackendModel, phase: Phase, profile: WorkProfile) -> int:
    """SIMD lanes the backend uses for this phase's FP work (1 = scalar)."""
    if not phase.vectorizable:
        return 1
    width = backend.vector_width(profile.alg, profile.policy)
    if width <= 0:
        return 1
    width = min(width, machine.simd_width_bits)
    return max(1, width // (8 * profile.elem.size))


def _record_fp(counters: dict, fp_ops: float, lanes: int) -> float:
    """Record FP events at the executed width; returns executed FP instrs."""
    if fp_ops <= 0:
        return 0.0
    executed = fp_ops / lanes
    if lanes <= 1:
        counters["fp_scalar"] += fp_ops
    elif lanes == 2:
        counters["fp_packed_128"] += executed
    else:
        counters["fp_packed_256"] += executed
    return executed


def simulate_cpu(
    machine: CpuMachine, backend: BackendModel, profile: WorkProfile
) -> SimReport:
    """Cost ``profile`` on ``machine`` under ``backend``'s runtime model."""
    if profile.threads > machine.total_cores:
        raise SimulationError(
            f"profile uses {profile.threads} threads but {machine.name} "
            f"has {machine.total_cores} cores"
        )

    placement = ThreadPlacement(
        machine, profile.threads, strategy=backend.affinity_strategy
    )
    # Single-thread invocations (including the sequential baseline) enjoy
    # turbo headroom; see CpuMachine.seq_turbo_factor.
    turbo = machine.seq_turbo_factor if profile.threads == 1 else 1.0
    base_rate = machine.frequency_hz * machine.ipc * turbo

    alg = profile.alg
    phase_reports: list[PhaseReport] = []
    total_counters = Counters()
    total_time = 0.0
    tracer = get_tracer()

    for phase in profile.phases:
        ctr = {
            "instructions": 0.0,
            "fp_scalar": 0.0,
            "fp_packed_128": 0.0,
            "fp_packed_256": 0.0,
            "bytes_read": 0.0,
            "bytes_written": 0.0,
        }
        lanes = _lanes(machine, backend, phase, profile)
        rate = base_rate * backend.ipc_factor(alg)
        if phase.kind is PhaseKind.SEQUENTIAL:
            rate /= backend.seq_codegen_factor(alg)

        # Per-thread aggregation.
        instr_time: dict[int, float] = {}
        mem_bytes: dict[int, float] = {}
        traffic = backend.traffic_factor(alg)
        overhead_per_elem = backend.instr_overhead_for(
            alg, machine.topology.num_nodes
        )
        for chunk in phase.chunks:
            overhead = (
                chunk.elems * overhead_per_elem
                if phase.apply_instr_overhead
                else 0.0
            )
            fp_exec = _record_fp(ctr, chunk.fp_ops, lanes)
            instrs = chunk.instr + overhead + fp_exec
            ctr["instructions"] += instrs
            ctr["bytes_read"] += chunk.bytes_read * traffic
            ctr["bytes_written"] += chunk.bytes_written * traffic
            instr_time[chunk.thread] = instr_time.get(chunk.thread, 0.0) + instrs / rate
            mem_bytes[chunk.thread] = (
                mem_bytes.get(chunk.thread, 0.0)
                + (chunk.bytes_read + chunk.bytes_written) * traffic
            )

        compute_time = max(instr_time.values(), default=0.0)
        # Scalability cap: threads beyond the backend's effective-worker
        # model contend rather than contribute (HPX past ~16 threads).
        if phase.kind is PhaseKind.PARALLEL and profile.threads > 1:
            scaling = profile.threads / backend.effective_threads(profile.threads)
            if scaling > 1.0:
                compute_time *= scaling
                instr_time = {t: v * scaling for t, v in instr_time.items()}

        # Memory time: cache-resident phases stream from the fitting cache
        # level; DRAM phases go through the NUMA bandwidth model.
        memory_time = 0.0
        lane_mem: dict[int, float] = {}
        total_phase_bytes = sum(mem_bytes.values())
        if total_phase_bytes > 0.0 and phase.placement is not None:
            active = max(1, len({c.thread for c in phase.chunks}))
            level = machine.caches.fitting_level(int(phase.working_set), active)
            if level is not None:
                bw = level.bandwidth_per_core
                memory_time = max(b / bw for b in mem_bytes.values())
                lane_mem = {t: mem_bytes.get(t, 0.0) / bw for t in instr_time}
                per_thread_roofline = max(
                    max(instr_time[t], lane_mem[t]) for t in instr_time
                )
            else:
                thread_nodes = {
                    t: placement.node_of_thread(t % profile.threads)
                    for t in mem_bytes
                }
                active_nodes = len(set(thread_nodes.values()))
                matched = None
                if phase.placement.policy in MATCHED_POLICIES:
                    # Locality decays geometrically with the number of node
                    # boundaries in play: every extra node is another chance
                    # for a page and its consumer to end up apart. This is
                    # what separates the 2-node Mach A (mild NUMA effects)
                    # from the 8-node Zen machines, whose measured for_each
                    # speedups (Table 5) are far below their STREAM ratios.
                    matched = backend.numa_quality(alg) ** max(0, active_nodes - 1)
                times = dram_memory_time(
                    machine,
                    phase.placement,
                    mem_bytes,
                    thread_nodes,
                    matched_quality=matched,
                    bw_efficiency=backend.bw_efficiency_at(alg, active_nodes),
                )
                memory_time = times.total
                per_thread_bw_time = times.per_thread
                # Roofline per thread against the per-thread stream cap;
                # node/global/interconnect bounds apply to the whole phase.
                scale = (
                    per_thread_bw_time / max(1e-30, max(mem_bytes.values()))
                )
                lane_mem = {t: mem_bytes.get(t, 0.0) * scale for t in instr_time}
                per_thread_roofline = max(
                    max(instr_time[t], lane_mem[t]) for t in instr_time
                )
                per_thread_roofline = max(
                    per_thread_roofline,
                    times.per_node,
                    times.global_dram,
                    times.interconnect,
                )
        else:
            per_thread_roofline = compute_time

        phase_time = max(compute_time, per_thread_roofline)

        # Allocator spread penalty (find / inclusive_scan, see Phase docs).
        # The penalty is calibrated on the 2-node Mach A (Fig. 1); on
        # machines with more NUMA nodes the *differential* effect of
        # spreading shrinks -- default placement is already mostly remote
        # for most threads -- so it is scaled by 2/num_nodes.
        if (
            phase.spread_penalty > 1.0
            and phase.placement is not None
            and max(phase.placement.node_fractions) < 1.0 - _SPREAD_EPS
        ):
            weight = min(1.0, 2.0 / machine.topology.num_nodes)
            phase_time *= 1.0 + (phase.spread_penalty - 1.0) * weight

        overhead_time = 0.0
        if phase.sched_chunks:
            overhead_time += backend.sched_overhead(phase.sched_chunks, profile.threads)
        if phase.sync_points:
            overhead_time += phase.sync_points * backend.sync_cost(profile.threads)
        phase_time += overhead_time

        phase_counters = Counters(**ctr)
        total_counters = total_counters + phase_counters
        total_time += phase_time
        phase_reports.append(
            PhaseReport(
                name=phase.name,
                seconds=phase_time,
                compute_seconds=compute_time,
                memory_seconds=memory_time,
                overhead_seconds=overhead_time,
                counters=phase_counters,
            )
        )

        if tracer.enabled:
            if overhead_time >= max(compute_time, memory_time):
                bound = "overhead"
            elif compute_time >= memory_time:
                bound = "compute"
            else:
                bound = "memory"
            start = tracer.clock
            tracer.record(
                phase.name,
                phase_time,
                category="phase",
                track=PHASE_TRACK,
                start=start,
                kind=phase.kind.value,
                bound=bound,
                compute_seconds=compute_time,
                memory_seconds=memory_time,
                overhead_seconds=overhead_time,
                instructions=ctr["instructions"],
                bytes_read=ctr["bytes_read"],
                bytes_written=ctr["bytes_written"],
            )
            for t in sorted(instr_time):
                mem_t = lane_mem.get(t, 0.0)
                tracer.record(
                    phase.name,
                    max(instr_time[t], mem_t),
                    category="lane",
                    track=thread_track(t),
                    start=start,
                    instruction_seconds=instr_time[t],
                    memory_seconds=mem_t,
                )
            tracer.advance(phase_time)

    fork_join = 0.0
    if profile.is_parallel:
        fork_join = profile.regions * (
            backend.fork_overhead(profile.threads)
            + backend.join_overhead(profile.threads)
        )
    total_time += fork_join
    if tracer.enabled and fork_join > 0.0:
        tracer.record(
            "fork/join",
            fork_join,
            category="overhead",
            track=PHASE_TRACK,
            regions=profile.regions,
            threads=profile.threads,
        )
        tracer.advance(fork_join)

    return SimReport(
        seconds=total_time,
        counters=total_counters,
        phases=tuple(phase_reports),
        fork_join_seconds=fork_join,
    )
