"""The work-profile IR: what an algorithm invocation *does*, before costing.

Algorithms (run mode or model mode) emit a :class:`WorkProfile`; the cost
engine turns it into time and counters for a given machine + backend. This
split is what lets the same algorithm implementation serve both the
correctness tests (real NumPy execution) and the paper's 2^30-element
sweeps (analytic profiles, no allocation).

Quantities in :class:`ChunkWork` are *intrinsic* to the algorithm and
kernel -- backend-specific overheads (runtime bookkeeping instructions,
traffic inflation, vectorisation) are applied by the engine, so one profile
can be costed under every backend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.execution.policy import ExecutionPolicy
from repro.memory.layout import PagePlacement
from repro.types import ElemType

__all__ = ["PhaseKind", "ChunkWork", "Phase", "WorkProfile"]


class PhaseKind(enum.Enum):
    """Whether a phase runs on the full team or a single thread."""

    PARALLEL = "parallel"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class ChunkWork:
    """Intrinsic work performed by one thread on one chunk.

    Attributes
    ----------
    thread:
        Executing thread id.
    elems:
        Elements processed (drives per-element backend overhead).
    instr:
        Intrinsic non-FP instructions (loads, compares, branches...).
    fp_ops:
        Intrinsic scalar floating-point operations; the engine may execute
        them packed if the backend vectorises this algorithm.
    bytes_read / bytes_written:
        Intrinsic DRAM traffic before backend traffic factors.
    """

    thread: int
    elems: float
    instr: float
    fp_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        if self.thread < 0:
            raise SimulationError("thread id must be non-negative")
        for name in ("elems", "instr", "fp_ops", "bytes_read", "bytes_written"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class Phase:
    """One fork/join phase (or sequential section) of an invocation.

    Attributes
    ----------
    placement:
        Blended NUMA placement of the arrays the phase streams, or ``None``
        for phases that touch no DRAM-resident data.
    working_set:
        Bytes the phase actively touches; decides cache-vs-DRAM service.
    sched_chunks:
        Number of scheduling units handed to the runtime (chunk count).
    sync_points:
        Synchronisation events beyond the implicit barrier (e.g., the
        cancellation checks of a parallel ``find``).
    spread_penalty:
        Time multiplier applied when the data is spread across nodes
        rather than resident on a single node. Encodes the paper's Fig. 1
        observation that ``find`` and ``inclusive_scan`` run *slower* with
        the parallel first-touch allocator (-24 % / -19 %): their
        latency-sensitive phases (cancellation protocol, carry
        propagation) suffer when the hot pages stop being dense on the
        coordinating thread's node.
    apply_instr_overhead:
        Whether backend per-element runtime overhead applies (true for the
        main loops, false for small fix-up phases).
    vectorizable:
        Whether the backend may execute this phase's FP work packed.
    """

    name: str
    kind: PhaseKind
    chunks: tuple[ChunkWork, ...]
    placement: PagePlacement | None = None
    working_set: float = 0.0
    sched_chunks: int = 0
    sync_points: int = 0
    spread_penalty: float = 1.0
    apply_instr_overhead: bool = True
    vectorizable: bool = True

    def __post_init__(self) -> None:
        if not self.chunks:
            raise SimulationError(f"phase {self.name!r} has no work")
        if self.kind is PhaseKind.SEQUENTIAL:
            threads = {c.thread for c in self.chunks}
            if len(threads) != 1:
                raise SimulationError(
                    f"sequential phase {self.name!r} must use exactly one thread"
                )
        if self.working_set < 0:
            raise SimulationError("working_set must be non-negative")
        if self.sched_chunks < 0 or self.sync_points < 0:
            raise SimulationError("sched_chunks/sync_points must be non-negative")
        if self.spread_penalty < 1.0:
            raise SimulationError("spread_penalty must be >= 1")

    @property
    def total_elems(self) -> float:
        """Total elements processed in this phase."""
        return sum(c.elems for c in self.chunks)

    @property
    def total_bytes(self) -> float:
        """Total intrinsic traffic of this phase."""
        return sum(c.bytes_read + c.bytes_written for c in self.chunks)


@dataclass(frozen=True)
class WorkProfile:
    """Everything an invocation did, ready for costing.

    Attributes
    ----------
    alg:
        Algorithm family name ("for_each", "reduce"...), the key backends
        use for per-algorithm factors.
    regions:
        Number of fork/join parallel regions (each pays fork+join cost).
    """

    alg: str
    n: int
    elem: ElemType
    threads: int
    policy: ExecutionPolicy
    phases: tuple[Phase, ...]
    regions: int = 1
    notes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n < 0:
            raise SimulationError("n must be non-negative")
        if self.threads <= 0:
            raise SimulationError("threads must be positive")
        if not self.phases:
            raise SimulationError("profile needs at least one phase")
        if self.regions < 0:
            raise SimulationError("regions must be non-negative")
        for phase in self.phases:
            for chunk in phase.chunks:
                if chunk.thread >= self.threads:
                    raise SimulationError(
                        f"phase {phase.name!r} uses thread {chunk.thread} "
                        f"but profile has {self.threads} threads"
                    )

    @property
    def is_parallel(self) -> bool:
        """Whether any phase runs on more than one thread."""
        return self.regions > 0 and any(
            p.kind is PhaseKind.PARALLEL for p in self.phases
        )
