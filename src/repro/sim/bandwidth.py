"""NUMA bandwidth-sharing model.

Given which threads stream how many bytes and where the pages live, this
module computes the memory-service time of a phase as the max of four
constraints:

* **per-thread** -- one core cannot draw more than the single-core STREAM
  rate (derated for remote accesses);
* **per-node** -- one node's memory controllers cap the bytes they serve
  (``node_bw_boost * stream_all / nodes``);
* **global** -- aggregate DRAM traffic cannot beat the all-core STREAM
  figure;
* **interconnect** -- cross-node bytes ride the socket interconnect.

The default (serial first-touch) allocator concentrates all pages on node
0, so the per-node constraint dominates; the parallel first-touch
allocator spreads pages next to their threads, so the global constraint
dominates. The ratio of the two is exactly the allocator effect of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.machines.cpu import CpuMachine
from repro.memory.layout import PagePlacement

__all__ = ["MemoryTimes", "dram_memory_time", "MATCHED_POLICIES"]

#: Placement policies produced by allocators that first-touch with the same
#: partition the benchmark uses -- accesses under these are mostly local.
MATCHED_POLICIES = frozenset({"first-touch", "hpx-numa"})


@dataclass(frozen=True)
class MemoryTimes:
    """The four constraint times; the effective time is their max."""

    per_thread: float
    per_node: float
    global_dram: float
    interconnect: float

    @property
    def total(self) -> float:
        """Binding memory-service time of the phase."""
        return max(self.per_thread, self.per_node, self.global_dram, self.interconnect)

    @property
    def bottleneck(self) -> str:
        """Name of the binding constraint (diagnostics)."""
        pairs = [
            ("per-thread", self.per_thread),
            ("per-node", self.per_node),
            ("global", self.global_dram),
            ("interconnect", self.interconnect),
        ]
        return max(pairs, key=lambda kv: kv[1])[0]


def thread_locality(
    placement: PagePlacement,
    thread_node: int,
    matched_quality: float | None,
) -> float:
    """Fraction of one thread's accesses served by its own node."""
    if matched_quality is not None:
        return matched_quality
    return placement.fraction_on(thread_node)


def dram_memory_time(
    machine: CpuMachine,
    placement: PagePlacement,
    thread_bytes: Mapping[int, float],
    thread_nodes: Mapping[int, int],
    matched_quality: float | None,
    bw_efficiency: float,
) -> MemoryTimes:
    """Memory time for a DRAM-resident phase.

    Parameters
    ----------
    thread_bytes:
        Bytes each participating thread streams (after traffic factors).
    thread_nodes:
        NUMA node of each participating thread.
    matched_quality:
        Backend NUMA quality in [0, 1] when the placement was produced by
        a matched (parallel first-touch) allocator, else ``None`` -- the
        thread then draws from each node per the page fractions.
    bw_efficiency:
        Backend's sustained fraction of peak bandwidth.
    """
    if not thread_bytes:
        raise SimulationError("phase has no memory traffic to time")
    if not 0.0 < bw_efficiency <= 1.0:
        raise SimulationError(f"bw_efficiency must be in (0, 1], got {bw_efficiency}")
    if matched_quality is not None and not 0.0 <= matched_quality <= 1.0:
        raise SimulationError("matched_quality must be in [0, 1]")

    nnodes = machine.topology.num_nodes
    node_demand = [0.0] * nnodes
    remote_bytes = 0.0
    per_thread_time = 0.0

    for thread, nbytes in thread_bytes.items():
        if nbytes < 0:
            raise SimulationError("thread bytes must be non-negative")
        if nbytes == 0:
            continue
        node = thread_nodes[thread]
        local = thread_locality(placement, node, matched_quality)
        remote = 1.0 - local
        remote_bytes += nbytes * remote

        # Per-thread single-stream cap, derated by the remote mix.
        stream_bw = (
            machine.stream_bw_1core
            * (local + remote * machine.remote_bw_factor)
            * bw_efficiency
        )
        per_thread_time = max(per_thread_time, nbytes / stream_bw)

        # Attribute demand to nodes.
        node_demand[node] += nbytes * local
        if remote > 0.0:
            if matched_quality is not None:
                # Matched placement: the non-local remainder is spread
                # uniformly over the other nodes.
                others = nnodes - 1
                if others > 0:
                    share = nbytes * remote / others
                    for j in range(nnodes):
                        if j != node:
                            node_demand[j] += share
                else:
                    node_demand[node] += nbytes * remote
            else:
                # Unmatched: draws follow the page fractions; the local
                # share was already counted, so add the remainder per
                # fraction, renormalised over remote nodes.
                for j in range(nnodes):
                    if j == node:
                        continue
                    node_demand[j] += nbytes * placement.fraction_on(j) / max(
                        1e-30, 1.0 - placement.fraction_on(node)
                    ) * remote

    total_bytes = float(sum(thread_bytes.values()))
    node_cap = (
        machine.node_bw_boost
        * (machine.stream_bw_allcores / nnodes)
        * bw_efficiency
    )
    global_cap = machine.stream_bw_allcores * bw_efficiency
    node_cap = min(node_cap, global_cap)

    per_node_time = max((d / node_cap for d in node_demand), default=0.0)
    global_time = total_bytes / global_cap
    interconnect_time = remote_bytes / machine.interconnect_bw

    return MemoryTimes(
        per_thread=per_thread_time,
        per_node=per_node_time,
        global_dram=global_time,
        interconnect=interconnect_time,
    )
