"""Vectorized batch evaluation path for the CPU cost engine.

``repro.sim.engine.simulate_cpu`` walks a :class:`~repro.sim.work.WorkProfile`
chunk object by chunk object -- for a paper-scale sweep that is tens of
thousands of ``ChunkWork``/``Chunk`` allocations per curve, and profiling
shows those allocations (not the arithmetic) dominate sweep wall-clock.
This module provides the same cost model over *array* profiles: one NumPy
array per chunk field, per-chunk arithmetic as elementwise array ops, and
per-thread/per-phase folds as ``np.cumsum`` reductions.

**Bit-identical by construction.** The batch engine is a second
implementation of the cost model, so any divergence from the scalar
engine is a bug in one of them (see ``tools/diffcheck.py``). Every
floating-point operation here reproduces the scalar engine's operations
exactly:

* elementwise IEEE-754 ops (``a * b``, ``a / b``, ``a + b``) are
  bit-identical whether issued from Python floats or float64 arrays;
* order-sensitive accumulations (``acc += x`` loops) are reproduced with
  ``np.cumsum``, which is a sequential left fold -- **never** ``np.sum``
  or ``np.add.reduce``, whose pairwise summation rounds differently;
* per-thread left folds use an occurrence-slot matrix cumsummed along
  the slot axis; padding slots hold ``+0.0``, and ``x + 0.0 == x``
  exactly for the non-negative partial sums that occur here;
* dict-ordered folds over threads (``sum(mem_bytes.values())`` and the
  NUMA node-demand accumulation) follow the scalar engine's dict
  insertion order, i.e. first appearance of each thread in chunk order.

The engine itself emits no per-phase trace spans (that is the scalar
engine's job); batch callers wrap whole curves in a single ``sim.batch``
span instead (see ``repro.suite.batch``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.execution.affinity import ThreadPlacement
from repro.machines.cpu import CpuMachine
from repro.memory.layout import PagePlacement
from repro.sim.bandwidth import MATCHED_POLICIES, MemoryTimes
from repro.sim.engine import _lanes
from repro.sim.interfaces import BackendModel
from repro.sim.report import Counters, PhaseReport, SimReport
from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile
from repro.types import ElemType

__all__ = [
    "ChunkArrays",
    "ArrayPhase",
    "ArrayProfile",
    "partition_arrays",
    "simulate_cpu_arrays",
    "profile_to_arrays",
    "arrays_to_profile",
]


@dataclass(frozen=True)
class ChunkArrays:
    """Per-chunk work of one phase, one float64 array per field.

    The arrays are parallel: entry ``i`` describes chunk ``i`` in the
    scalar engine's chunk order (which is also execution order for the
    order-sensitive folds). ``thread`` is int64.
    """

    thread: np.ndarray
    elems: np.ndarray
    instr: np.ndarray
    fp_ops: np.ndarray
    bytes_read: np.ndarray
    bytes_written: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.thread), len(self.elems), len(self.instr),
            len(self.fp_ops), len(self.bytes_read), len(self.bytes_written),
        }
        if lengths != {len(self.thread)} or len(self.thread) == 0:
            raise ConfigurationError("chunk arrays must be non-empty and aligned")
        if np.any(self.thread < 0):
            raise ConfigurationError("thread ids must be non-negative")
        for name in ("elems", "instr", "fp_ops", "bytes_read", "bytes_written"):
            if np.any(getattr(self, name) < 0):
                raise ConfigurationError(f"chunk {name} must be non-negative")

    def __len__(self) -> int:
        return len(self.thread)

    @classmethod
    def from_per_elem(
        cls,
        thread: np.ndarray,
        elems: np.ndarray,
        instr: float,
        fp: float = 0.0,
        read: float = 0.0,
        write: float = 0.0,
    ) -> "ChunkArrays":
        """Chunks whose costs are ``elems`` times a per-element cost.

        Mirrors how ``repro.algorithms._build.parallel_phase`` derives
        each :class:`~repro.sim.work.ChunkWork` from a ``PerElem``: each
        field is the elementwise product ``elems * per_elem.<field>``.
        """
        return cls(
            thread=np.asarray(thread, dtype=np.int64),
            elems=elems,
            instr=elems * instr,
            fp_ops=elems * fp,
            bytes_read=elems * read,
            bytes_written=elems * write,
        )


@dataclass(frozen=True)
class ArrayPhase:
    """Array-backed counterpart of :class:`~repro.sim.work.Phase`."""

    name: str
    kind: PhaseKind
    chunks: ChunkArrays
    placement: PagePlacement | None
    working_set: float
    sched_chunks: int = 0
    sync_points: int = 0
    spread_penalty: float = 1.0
    apply_instr_overhead: bool = True
    vectorizable: bool = True

    def __post_init__(self) -> None:
        if self.spread_penalty < 1.0:
            raise ConfigurationError("spread_penalty must be >= 1")


@dataclass(frozen=True)
class ArrayProfile:
    """Array-backed counterpart of :class:`~repro.sim.work.WorkProfile`."""

    alg: str
    n: int
    elem: ElemType
    threads: int
    policy: object
    phases: tuple[ArrayPhase, ...]
    regions: int = 1
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_parallel(self) -> bool:
        """Whether any phase runs on more than one thread."""
        return self.regions > 0 and any(
            p.kind is PhaseKind.PARALLEL for p in self.phases
        )


# ---------------------------------------------------------------------------
# Vectorized partitioning
# ---------------------------------------------------------------------------

def _even_bounds_arrays(n: int, parts: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``repro.execution.partition._even_bounds``: (starts, sizes)."""
    base, extra = divmod(n, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:extra] += 1
    starts = np.zeros(parts, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    return starts, sizes


def partition_arrays(
    backend: BackendModel, n: int, threads: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Partition [0, n) the way ``backend.make_partition`` would, as arrays.

    Returns ``(starts, sizes, thread_ids, num_chunks)`` replicating the
    exact integer arithmetic of the static, block-cyclic, work-stealing
    and fixed-grain partitioners, without materialising ``Chunk`` objects.
    """
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    if threads <= 0:
        raise ConfigurationError("threads must be positive")
    grain = getattr(backend, "fixed_chunk_elems", 0)
    if grain:
        max_chunks = backend.max_chunks
        parts = min(max_chunks, max(1, -(-n // grain))) if n else 1
        starts, sizes = _even_bounds_arrays(n, parts)
        thread_ids = np.arange(parts, dtype=np.int64) % threads
        return starts, sizes, thread_ids, parts
    chunks_per_thread = getattr(backend, "chunks_per_thread", 1)
    if chunks_per_thread <= 1:
        parts = threads
        starts, sizes = _even_bounds_arrays(n, parts)
        thread_ids = np.arange(parts, dtype=np.int64)
        return starts, sizes, thread_ids, parts
    parts = min(max(1, n), threads * chunks_per_thread)
    starts, sizes = _even_bounds_arrays(n, parts)
    thread_ids = np.arange(parts, dtype=np.int64) % threads
    return starts, sizes, thread_ids, parts


# ---------------------------------------------------------------------------
# Exact fold helpers
# ---------------------------------------------------------------------------

def _fold(values: np.ndarray) -> float:
    """Sequential left-fold sum (bit-identical to ``acc += x`` loops)."""
    if len(values) == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def _thread_layout(thread: np.ndarray):
    """Execution-order layout of the chunk->thread assignment.

    Returns ``(thread_order, tidx, slot)`` where ``thread_order`` lists
    the distinct thread ids in first-appearance order (the scalar
    engine's dict insertion order), ``tidx[i]`` is chunk ``i``'s index
    into ``thread_order`` and ``slot[i]`` counts that chunk's earlier
    same-thread chunks.
    """
    uniq, first_idx, inverse = np.unique(
        thread, return_index=True, return_inverse=True
    )
    appearance = np.argsort(first_idx, kind="stable")
    # Map sorted-unique positions to first-appearance positions.
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[appearance] = np.arange(len(uniq), dtype=np.int64)
    tidx = rank[inverse]
    thread_order = uniq[appearance]

    order = np.argsort(tidx, kind="stable")
    sorted_t = tidx[order]
    boundary = np.empty(len(sorted_t), dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_t[1:] != sorted_t[:-1]
    group_starts = np.flatnonzero(boundary)
    start_per_elem = np.repeat(
        group_starts,
        np.diff(np.concatenate([group_starts, [len(sorted_t)]])),
    )
    ranks = np.arange(len(sorted_t), dtype=np.int64) - start_per_elem
    slot = np.empty(len(sorted_t), dtype=np.int64)
    slot[order] = ranks
    return thread_order, tidx, slot


def _thread_fold(
    values: np.ndarray, tidx: np.ndarray, slot: np.ndarray, num_threads: int
) -> np.ndarray:
    """Per-thread sequential left-fold of ``values`` over chunk order.

    Builds a (slots, threads) matrix with each thread's contributions in
    occurrence order and cumulative-sums down the slot axis; the padding
    zeros are exact for the non-negative partials folded here.
    """
    depth = int(slot.max()) + 1 if len(slot) else 1
    if depth == 1:
        out = np.zeros(num_threads)
        out[tidx] = values
        return out
    matrix = np.zeros((depth, num_threads))
    matrix[slot, tidx] = values
    return np.cumsum(matrix, axis=0)[-1]


# ---------------------------------------------------------------------------
# NUMA bandwidth model (array form of repro.sim.bandwidth.dram_memory_time)
# ---------------------------------------------------------------------------

def _dram_memory_time_arrays(
    machine: CpuMachine,
    placement: PagePlacement,
    thread_bytes: np.ndarray,
    thread_nodes: np.ndarray,
    matched_quality: float | None,
    bw_efficiency: float,
) -> MemoryTimes:
    """``dram_memory_time`` over thread arrays in dict-insertion order.

    ``thread_bytes``/``thread_nodes`` are indexed by the engine's
    first-appearance thread order, so the node-demand and remote-bytes
    folds reproduce the scalar implementation's accumulation order.
    """
    if len(thread_bytes) == 0:
        raise SimulationError("phase has no memory traffic to time")
    if not 0.0 < bw_efficiency <= 1.0:
        raise SimulationError(f"bw_efficiency must be in (0, 1], got {bw_efficiency}")
    if matched_quality is not None and not 0.0 <= matched_quality <= 1.0:
        raise SimulationError("matched_quality must be in [0, 1]")
    if np.any(thread_bytes < 0):
        raise SimulationError("thread bytes must be non-negative")

    nnodes = machine.topology.num_nodes
    nbytes = thread_bytes
    count = len(nbytes)
    active = nbytes > 0.0

    if matched_quality is not None:
        local = np.full(count, matched_quality)
    else:
        fractions = np.asarray(placement.node_fractions, dtype=float)
        local = fractions[thread_nodes]
    remote = 1.0 - local

    remote_bytes = _fold(np.where(active, nbytes * remote, 0.0))

    stream_bw = (
        machine.stream_bw_1core
        * (local + remote * machine.remote_bw_factor)
        * bw_efficiency
    )
    per_thread_time = float(
        np.max(np.where(active, nbytes / stream_bw, 0.0), initial=0.0)
    )

    # Node demand: each thread first adds its local share to its own node,
    # then its remote shares -- two fold rows per thread keep the per-cell
    # accumulation order identical to the scalar loop.
    rows = np.zeros((2 * count, nnodes))
    idx = np.arange(count)
    rows[2 * idx, thread_nodes] = np.where(active, nbytes * local, 0.0)
    remote_active = active & (remote > 0.0)
    if matched_quality is not None:
        others = nnodes - 1
        if others > 0:
            share = np.where(remote_active, nbytes * remote / others, 0.0)
            spread = np.tile(share[:, None], (1, nnodes))
            spread[idx, thread_nodes] = 0.0
            rows[2 * idx + 1] = spread
        else:
            rows[2 * idx + 1, thread_nodes] = np.where(
                remote_active, nbytes * remote, 0.0
            )
    else:
        denom = np.maximum(1e-30, 1.0 - local)
        for j in range(nnodes):
            vals = nbytes * placement.fraction_on(j) / denom * remote
            vals = np.where(remote_active & (thread_nodes != j), vals, 0.0)
            rows[2 * idx + 1, j] = vals
    node_demand = np.cumsum(rows, axis=0)[-1]

    total_bytes = _fold(nbytes)
    node_cap = (
        machine.node_bw_boost
        * (machine.stream_bw_allcores / nnodes)
        * bw_efficiency
    )
    global_cap = machine.stream_bw_allcores * bw_efficiency
    node_cap = min(node_cap, global_cap)

    per_node_time = float(np.max(node_demand / node_cap, initial=0.0))
    global_time = total_bytes / global_cap
    interconnect_time = remote_bytes / machine.interconnect_bw

    return MemoryTimes(
        per_thread=per_thread_time,
        per_node=per_node_time,
        global_dram=global_time,
        interconnect=interconnect_time,
    )


# ---------------------------------------------------------------------------
# The batch engine
# ---------------------------------------------------------------------------

def simulate_cpu_arrays(
    machine: CpuMachine, backend: BackendModel, profile: ArrayProfile
) -> SimReport:
    """Cost an :class:`ArrayProfile`; bit-identical to ``simulate_cpu``.

    Produces the same :class:`~repro.sim.report.SimReport` (every float
    field bit-for-bit equal) as the scalar engine would for the
    equivalent :class:`~repro.sim.work.WorkProfile` -- the property the
    differential harness (``tools/diffcheck.py``) enforces. Unlike the
    scalar engine it never emits per-phase trace spans; batch callers
    record one ``sim.batch`` span per curve instead.
    """
    if profile.threads > machine.total_cores:
        raise SimulationError(
            f"profile uses {profile.threads} threads but {machine.name} "
            f"has {machine.total_cores} cores"
        )

    placement = ThreadPlacement(
        machine, profile.threads, strategy=backend.affinity_strategy
    )
    turbo = machine.seq_turbo_factor if profile.threads == 1 else 1.0
    base_rate = machine.frequency_hz * machine.ipc * turbo

    alg = profile.alg
    phase_reports: list[PhaseReport] = []
    total_counters = Counters()
    total_time = 0.0

    for phase in profile.phases:
        ca = phase.chunks
        lanes = _lanes(machine, backend, phase, profile)
        rate = base_rate * backend.ipc_factor(alg)
        if phase.kind is PhaseKind.SEQUENTIAL:
            rate /= backend.seq_codegen_factor(alg)

        traffic = backend.traffic_factor(alg)
        overhead_per_elem = backend.instr_overhead_for(
            alg, machine.topology.num_nodes
        )
        if phase.apply_instr_overhead:
            overhead = ca.elems * overhead_per_elem
        else:
            overhead = np.zeros(len(ca))
        has_fp = ca.fp_ops > 0.0
        executed = np.where(has_fp, ca.fp_ops / lanes, 0.0)
        instrs = ca.instr + overhead + executed
        read_traffic = ca.bytes_read * traffic
        write_traffic = ca.bytes_written * traffic

        ctr = {
            "instructions": _fold(instrs),
            "fp_scalar": 0.0,
            "fp_packed_128": 0.0,
            "fp_packed_256": 0.0,
            "bytes_read": _fold(read_traffic),
            "bytes_written": _fold(write_traffic),
        }
        if lanes <= 1:
            ctr["fp_scalar"] = _fold(np.where(has_fp, ca.fp_ops, 0.0))
        elif lanes == 2:
            ctr["fp_packed_128"] = _fold(executed)
        else:
            ctr["fp_packed_256"] = _fold(executed)

        thread_order, tidx, slot = _thread_layout(ca.thread)
        num_threads = len(thread_order)
        instr_time = _thread_fold(instrs / rate, tidx, slot, num_threads)
        mem_bytes = _thread_fold(
            (ca.bytes_read + ca.bytes_written) * traffic, tidx, slot, num_threads
        )

        compute_time = float(instr_time.max()) if num_threads else 0.0
        if phase.kind is PhaseKind.PARALLEL and profile.threads > 1:
            scaling = profile.threads / backend.effective_threads(profile.threads)
            if scaling > 1.0:
                compute_time *= scaling
                instr_time = instr_time * scaling

        memory_time = 0.0
        total_phase_bytes = _fold(mem_bytes)
        if total_phase_bytes > 0.0 and phase.placement is not None:
            active = max(1, num_threads)
            level = machine.caches.fitting_level(int(phase.working_set), active)
            if level is not None:
                bw = level.bandwidth_per_core
                lane_mem = mem_bytes / bw
                memory_time = float(lane_mem.max())
                per_thread_roofline = float(
                    np.maximum(instr_time, lane_mem).max()
                )
            else:
                thread_nodes = np.array(
                    [
                        placement.node_of_thread(int(t) % profile.threads)
                        for t in thread_order
                    ],
                    dtype=np.int64,
                )
                active_nodes = len(set(thread_nodes.tolist()))
                matched = None
                if phase.placement.policy in MATCHED_POLICIES:
                    matched = backend.numa_quality(alg) ** max(0, active_nodes - 1)
                times = _dram_memory_time_arrays(
                    machine,
                    phase.placement,
                    mem_bytes,
                    thread_nodes,
                    matched_quality=matched,
                    bw_efficiency=backend.bw_efficiency_at(alg, active_nodes),
                )
                memory_time = times.total
                scale = times.per_thread / max(1e-30, float(mem_bytes.max()))
                lane_mem = mem_bytes * scale
                per_thread_roofline = float(
                    np.maximum(instr_time, lane_mem).max()
                )
                per_thread_roofline = max(
                    per_thread_roofline,
                    times.per_node,
                    times.global_dram,
                    times.interconnect,
                )
        else:
            per_thread_roofline = compute_time

        phase_time = max(compute_time, per_thread_roofline)

        if (
            phase.spread_penalty > 1.0
            and phase.placement is not None
            and max(phase.placement.node_fractions) < 1.0 - 1e-3
        ):
            weight = min(1.0, 2.0 / machine.topology.num_nodes)
            phase_time *= 1.0 + (phase.spread_penalty - 1.0) * weight

        overhead_time = 0.0
        if phase.sched_chunks:
            overhead_time += backend.sched_overhead(phase.sched_chunks, profile.threads)
        if phase.sync_points:
            overhead_time += phase.sync_points * backend.sync_cost(profile.threads)
        phase_time += overhead_time

        phase_counters = Counters(**ctr)
        total_counters = total_counters + phase_counters
        total_time += phase_time
        phase_reports.append(
            PhaseReport(
                name=phase.name,
                seconds=phase_time,
                compute_seconds=compute_time,
                memory_seconds=memory_time,
                overhead_seconds=overhead_time,
                counters=phase_counters,
            )
        )

    fork_join = 0.0
    if profile.is_parallel:
        fork_join = profile.regions * (
            backend.fork_overhead(profile.threads)
            + backend.join_overhead(profile.threads)
        )
    total_time += fork_join

    return SimReport(
        seconds=total_time,
        counters=total_counters,
        phases=tuple(phase_reports),
        fork_join_seconds=fork_join,
    )


# ---------------------------------------------------------------------------
# Converters (differential-harness plumbing)
# ---------------------------------------------------------------------------

def profile_to_arrays(profile: WorkProfile) -> ArrayProfile:
    """Convert a scalar :class:`WorkProfile` to its array form losslessly."""
    phases = []
    for phase in profile.phases:
        chunks = ChunkArrays(
            thread=np.array([c.thread for c in phase.chunks], dtype=np.int64),
            elems=np.array([c.elems for c in phase.chunks]),
            instr=np.array([c.instr for c in phase.chunks]),
            fp_ops=np.array([c.fp_ops for c in phase.chunks]),
            bytes_read=np.array([c.bytes_read for c in phase.chunks]),
            bytes_written=np.array([c.bytes_written for c in phase.chunks]),
        )
        phases.append(
            ArrayPhase(
                name=phase.name,
                kind=phase.kind,
                chunks=chunks,
                placement=phase.placement,
                working_set=phase.working_set,
                sched_chunks=phase.sched_chunks,
                sync_points=phase.sync_points,
                spread_penalty=phase.spread_penalty,
                apply_instr_overhead=phase.apply_instr_overhead,
                vectorizable=phase.vectorizable,
            )
        )
    return ArrayProfile(
        alg=profile.alg,
        n=profile.n,
        elem=profile.elem,
        threads=profile.threads,
        policy=profile.policy,
        phases=tuple(phases),
        regions=profile.regions,
        notes=tuple(profile.notes),
    )


def arrays_to_profile(profile: ArrayProfile) -> WorkProfile:
    """Materialise an :class:`ArrayProfile` as a scalar ``WorkProfile``.

    Test-only plumbing: lets the differential harness run the scalar
    engine on profiles that the batch builders produced, proving the
    builders (not just the engine) equivalent to the scalar path.
    """
    phases = []
    for phase in profile.phases:
        ca = phase.chunks
        chunks = tuple(
            ChunkWork(
                thread=int(ca.thread[i]),
                elems=float(ca.elems[i]),
                instr=float(ca.instr[i]),
                fp_ops=float(ca.fp_ops[i]),
                bytes_read=float(ca.bytes_read[i]),
                bytes_written=float(ca.bytes_written[i]),
            )
            for i in range(len(ca))
        )
        phases.append(
            Phase(
                name=phase.name,
                kind=phase.kind,
                chunks=chunks,
                placement=phase.placement,
                working_set=phase.working_set,
                sched_chunks=phase.sched_chunks,
                sync_points=phase.sync_points,
                spread_penalty=phase.spread_penalty,
                apply_instr_overhead=phase.apply_instr_overhead,
                vectorizable=phase.vectorizable,
            )
        )
    return WorkProfile(
        alg=profile.alg,
        n=profile.n,
        elem=profile.elem,
        threads=profile.threads,
        policy=profile.policy,
        phases=tuple(phases),
        regions=profile.regions,
        notes=tuple(profile.notes),
    )
