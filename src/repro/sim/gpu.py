"""GPU cost engine for the CUDA backend (paper Section 5.8, Figs 8-9).

A GPU invocation costs: kernel launch latency per parallel region, unified
memory migration for non-resident pages, and a roofline of device compute
vs. device DRAM bandwidth. Optionally a forced device-to-host transfer is
added after the kernel (the paper does this in Fig. 8 and Fig. 9a to expose
the communication bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.machines.gpu import GpuMachine
from repro.memory.array import SimArray
from repro.memory.unified import UnifiedMemory
from repro.sim.report import Counters, PhaseReport, SimReport
from repro.sim.work import PhaseKind, WorkProfile
from repro.trace.core import PHASE_TRACK, get_tracer

__all__ = ["GpuExecution", "simulate_gpu"]

#: Instruction throughput relative to FP throughput: integer/control
#: instructions issue on separate pipes; we charge them at the same rate.
_INSTR_RATE_FACTOR = 1.0


@dataclass(frozen=True)
class GpuExecution:
    """Options for one GPU invocation."""

    transfer_back: bool = False


def simulate_gpu(
    gpu: GpuMachine,
    profile: WorkProfile,
    arrays: tuple[SimArray, ...],
    options: GpuExecution = GpuExecution(),
) -> SimReport:
    """Cost ``profile`` on ``gpu``; mutates array residency via UM.

    ``arrays`` are the buffers the kernel touches. Their
    ``device_resident_fraction`` determines migration cost -- chained calls
    on the same data pay nothing, which reproduces Fig. 9b.
    """
    um = UnifiedMemory(gpu)
    migration = 0.0
    for array in arrays:
        migration += um.to_device(array).seconds

    total_counters = Counters()
    phase_reports: list[PhaseReport] = []
    kernel_time = 0.0
    launches = max(1, profile.regions)

    tracer = get_tracer()
    if tracer.enabled:
        if migration > 0.0:
            tracer.record(
                "um-migration", migration, category="overhead", track=PHASE_TRACK,
                arrays=len(arrays),
            )
            tracer.advance(migration)
        launch_seconds = launches * gpu.kernel_launch_latency
        if launch_seconds > 0.0:
            tracer.record(
                "kernel-launch", launch_seconds, category="overhead",
                track=PHASE_TRACK, launches=launches,
            )
            tracer.advance(launch_seconds)

    for phase in profile.phases:
        instr = sum(c.instr for c in phase.chunks)
        fp = sum(c.fp_ops for c in phase.chunks)
        bytes_read = sum(c.bytes_read for c in phase.chunks)
        bytes_written = sum(c.bytes_written for c in phase.chunks)

        rate = gpu.compute_rate(profile.elem.size)
        compute = (fp + instr * _INSTR_RATE_FACTOR) / rate
        memory = (bytes_read + bytes_written) / gpu.mem_bandwidth
        if phase.kind is PhaseKind.SEQUENTIAL:
            # Serial fix-ups run on one SM at a tiny fraction of the rate.
            compute = (fp + instr) / (rate / max(1, gpu.cuda_cores // 64))
        seconds = max(compute, memory)
        kernel_time += seconds

        counters = Counters(
            instructions=instr + fp,
            fp_scalar=fp,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        )
        total_counters = total_counters + counters
        phase_reports.append(
            PhaseReport(
                name=phase.name,
                seconds=seconds,
                compute_seconds=compute,
                memory_seconds=memory,
                overhead_seconds=0.0,
                counters=counters,
            )
        )
        if tracer.enabled:
            tracer.record(
                phase.name,
                seconds,
                category="phase",
                track=PHASE_TRACK,
                kind=phase.kind.value,
                bound="compute" if compute >= memory else "memory",
                compute_seconds=compute,
                memory_seconds=memory,
                overhead_seconds=0.0,
                instructions=instr + fp,
                bytes_read=bytes_read,
                bytes_written=bytes_written,
            )
            tracer.advance(seconds)

    transfer_back = 0.0
    if options.transfer_back:
        for array in arrays:
            transfer_back += um.to_host(array).seconds
    if tracer.enabled and transfer_back > 0.0:
        tracer.record(
            "d2h-transfer", transfer_back, category="overhead",
            track=PHASE_TRACK, arrays=len(arrays),
        )
        tracer.advance(transfer_back)

    launch = launches * gpu.kernel_launch_latency
    total = migration + launch + kernel_time + transfer_back
    if total < 0:
        raise SimulationError("negative GPU time (model bug)")
    return SimReport(
        seconds=total,
        counters=total_counters,
        phases=tuple(phase_reports),
        fork_join_seconds=launch,
        migration_seconds=migration + transfer_back,
    )
