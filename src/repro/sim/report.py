"""Simulation outputs: counter sets and per-phase/total reports.

The counter fields mirror what the paper extracts with Likwid (Tables 3
and 4): total instructions, scalar FP ops, 128/256-bit packed FP ops,
memory bandwidth and memory data volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SimulationError
from repro.util.units import GIB

__all__ = ["Counters", "PhaseReport", "SimReport"]


@dataclass(frozen=True)
class Counters:
    """Hardware-counter style event totals."""

    instructions: float = 0.0
    fp_scalar: float = 0.0
    fp_packed_128: float = 0.0
    fp_packed_256: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "instructions",
            "fp_scalar",
            "fp_packed_128",
            "fp_packed_256",
            "bytes_read",
            "bytes_written",
        ):
            if getattr(self, name) < 0:
                raise SimulationError(f"counter {name} must be non-negative")

    def __add__(self, other: "Counters") -> "Counters":
        return Counters(
            instructions=self.instructions + other.instructions,
            fp_scalar=self.fp_scalar + other.fp_scalar,
            fp_packed_128=self.fp_packed_128 + other.fp_packed_128,
            fp_packed_256=self.fp_packed_256 + other.fp_packed_256,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )

    def scaled(self, factor: float) -> "Counters":
        """All events multiplied by ``factor`` (e.g., 100 calls for Table 3)."""
        if factor < 0:
            raise SimulationError("scale factor must be non-negative")
        return Counters(
            instructions=self.instructions * factor,
            fp_scalar=self.fp_scalar * factor,
            fp_packed_128=self.fp_packed_128 * factor,
            fp_packed_256=self.fp_packed_256 * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )

    @property
    def data_volume(self) -> float:
        """Total DRAM traffic in bytes (read + written)."""
        return self.bytes_read + self.bytes_written

    @property
    def flops(self) -> float:
        """Total floating-point operations (packed ops count their lanes).

        128-bit packed doubles carry 2 lanes, 256-bit carry 4; the lane
        width is folded in when the engine records the events, so here each
        packed *operation* is multiplied by its nominal double-lane count,
        matching how Likwid's FLOP groups weigh them.
        """
        return (
            self.fp_scalar
            + 2.0 * self.fp_packed_128
            + 4.0 * self.fp_packed_256
        )

    def gflops(self, seconds: float) -> float:
        """Achieved GFLOP/s over ``seconds``."""
        if seconds <= 0:
            raise SimulationError("seconds must be positive")
        return self.flops / seconds / 1e9

    def bandwidth_gib(self, seconds: float) -> float:
        """Achieved memory bandwidth in GiB/s over ``seconds``."""
        if seconds <= 0:
            raise SimulationError("seconds must be positive")
        return self.data_volume / seconds / GIB


@dataclass(frozen=True)
class PhaseReport:
    """Timing/counter breakdown for one phase of a work profile."""

    name: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    counters: Counters

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("phase time must be non-negative")


@dataclass(frozen=True)
class SimReport:
    """Full result of simulating one algorithm invocation."""

    seconds: float
    counters: Counters
    phases: tuple[PhaseReport, ...] = field(default_factory=tuple)
    fork_join_seconds: float = 0.0
    migration_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("total time must be non-negative")

    def with_extra_seconds(self, extra: float, migration: float = 0.0) -> "SimReport":
        """A copy with additional time folded in (e.g., GPU migrations)."""
        if extra < 0 or migration < 0:
            raise SimulationError("extra time must be non-negative")
        return replace(
            self,
            seconds=self.seconds + extra,
            migration_seconds=self.migration_seconds + migration,
        )
