"""Simulation outputs: counter sets and per-phase/total reports.

The counter fields mirror what the paper extracts with Likwid (Tables 3
and 4): total instructions, scalar FP ops, 128/256-bit packed FP ops,
memory bandwidth and memory data volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SimulationError
from repro.util.units import GIB

__all__ = ["Counters", "PhaseReport", "SimReport"]


@dataclass(frozen=True)
class Counters:
    """Hardware-counter style event totals.

    Attributes
    ----------
    instructions:
        Total retired instructions (count). Mirrors the Likwid
        ``INSTR_RETIRED_ANY`` column of Tables 3/4 -- per-backend
        differences here (1.55T vs 3.83T for ``for_each``) are the
        paper's main evidence for runtime bookkeeping overhead.
    fp_scalar:
        Scalar double-precision FP operations (count); Tables 3/4's
        "FP scalar" column.
    fp_packed_128 / fp_packed_256:
        Packed 128-bit / 256-bit FP *instructions* (count, lanes NOT
        multiplied in): one 256-bit op here is 4 double lanes. Tables
        3/4 use these to show which backends vectorise (ICC/HPX emit
        256-bit packed ops for ``reduce``; the rest stay scalar).
    bytes_read / bytes_written:
        DRAM traffic in bytes, after backend traffic factors; their sum
        is Tables 3/4's "memory data volume" column.
    """

    instructions: float = 0.0
    fp_scalar: float = 0.0
    fp_packed_128: float = 0.0
    fp_packed_256: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "instructions",
            "fp_scalar",
            "fp_packed_128",
            "fp_packed_256",
            "bytes_read",
            "bytes_written",
        ):
            if getattr(self, name) < 0:
                raise SimulationError(f"counter {name} must be non-negative")

    def __add__(self, other: "Counters") -> "Counters":
        return Counters(
            instructions=self.instructions + other.instructions,
            fp_scalar=self.fp_scalar + other.fp_scalar,
            fp_packed_128=self.fp_packed_128 + other.fp_packed_128,
            fp_packed_256=self.fp_packed_256 + other.fp_packed_256,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )

    def scaled(self, factor: float) -> "Counters":
        """All events multiplied by ``factor`` (e.g., 100 calls for Table 3)."""
        if factor < 0:
            raise SimulationError("scale factor must be non-negative")
        return Counters(
            instructions=self.instructions * factor,
            fp_scalar=self.fp_scalar * factor,
            fp_packed_128=self.fp_packed_128 * factor,
            fp_packed_256=self.fp_packed_256 * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )

    @property
    def data_volume(self) -> float:
        """Total DRAM traffic in bytes (read + written)."""
        return self.bytes_read + self.bytes_written

    @property
    def flops(self) -> float:
        """Total floating-point operations (packed ops count their lanes).

        128-bit packed doubles carry 2 lanes, 256-bit carry 4; the lane
        width is folded in when the engine records the events, so here each
        packed *operation* is multiplied by its nominal double-lane count,
        matching how Likwid's FLOP groups weigh them.
        """
        return (
            self.fp_scalar
            + 2.0 * self.fp_packed_128
            + 4.0 * self.fp_packed_256
        )

    def gflops(self, seconds: float) -> float:
        """Achieved GFLOP/s over ``seconds``."""
        if seconds <= 0:
            raise SimulationError("seconds must be positive")
        return self.flops / seconds / 1e9

    def bandwidth_gib(self, seconds: float) -> float:
        """Achieved memory bandwidth in GiB/s over ``seconds``."""
        if seconds <= 0:
            raise SimulationError("seconds must be positive")
        return self.data_volume / seconds / GIB


@dataclass(frozen=True)
class PhaseReport:
    """Timing/counter breakdown for one phase of a work profile.

    Attributes
    ----------
    name:
        Phase name from the work profile ("main-loop", "chunk-reduce",
        "combine"...).
    seconds:
        Total simulated cost of the phase, in seconds: the roofline
        maximum of compute vs memory time, plus scheduling and
        synchronisation overhead (and any NUMA spread penalty).
    compute_seconds:
        Slowest thread's instruction-execution time, in seconds --
        intrinsic work plus the backend's per-element overhead, which is
        how Table 3/4 instruction-count differences become time.
    memory_seconds:
        The phase's bandwidth-bound time, in seconds, under the NUMA
        bandwidth model (or the fitting cache level's bandwidth). When
        this exceeds ``compute_seconds`` the phase is memory-bound --
        the regime behind the paper's STREAM-ratio speedup ceilings
        (Figs 4-6).
    overhead_seconds:
        Scheduling (per-chunk dispatch) plus synchronisation cost, in
        seconds; the component the paper blames for HPX's flat k_it=1
        curves (Fig. 3).
    counters:
        Hardware-counter totals attributed to this phase (the per-phase
        slice of Tables 3/4).
    """

    name: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    counters: Counters

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("phase time must be non-negative")


@dataclass(frozen=True)
class SimReport:
    """Full result of simulating one algorithm invocation.

    Attributes
    ----------
    seconds:
        End-to-end simulated wall time of the call, in seconds: sum of
        phase times plus fork/join (and GPU launch/migration) costs.
        This is the quantity behind every figure's y-axis and the
        speedup ratios of Table 5.
    counters:
        Hardware-counter totals over all phases; scaled by the call
        count, these reproduce Tables 3 and 4.
    phases:
        Per-phase breakdown, in execution order (see
        :class:`PhaseReport`); ``repro.analysis.breakdown`` renders it,
        and the tracer mirrors it as timeline spans.
    fork_join_seconds:
        Total thread-team fork + join overhead, in seconds (kernel
        launch latency on GPUs). Dominates low-intensity small-n runs --
        the left side of Fig. 2 where sequential wins below 2^10.
    migration_seconds:
        GPU unified-memory page migration plus forced device-to-host
        transfer time, in seconds (0 for CPU runs); the term that
        separates Fig. 9a (forced transfers) from Fig. 9b (chained
        kernels).
    """

    seconds: float
    counters: Counters
    phases: tuple[PhaseReport, ...] = field(default_factory=tuple)
    fork_join_seconds: float = 0.0
    migration_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("total time must be non-negative")

    def with_extra_seconds(self, extra: float, migration: float = 0.0) -> "SimReport":
        """A copy with additional time folded in (e.g., GPU migrations)."""
        if extra < 0 or migration < 0:
            raise SimulationError("extra time must be non-negative")
        return replace(
            self,
            seconds=self.seconds + extra,
            migration_seconds=self.migration_seconds + migration,
        )
