"""Deterministic cost engine: work profiles -> simulated time and counters."""

from repro.sim.bandwidth import MATCHED_POLICIES, MemoryTimes, dram_memory_time
from repro.sim.engine import simulate_cpu
from repro.sim.gpu import GpuExecution, simulate_gpu
from repro.sim.interfaces import BackendModel
from repro.sim.report import Counters, PhaseReport, SimReport
from repro.sim.wave import (
    WAVE_TRACK,
    WaveEntry,
    WaveProgram,
    fuse_wave,
    simulate_gpu_arrays,
    simulate_wave,
    simulate_wave_entries,
)
from repro.sim.work import ChunkWork, Phase, PhaseKind, WorkProfile

__all__ = [
    "MATCHED_POLICIES",
    "MemoryTimes",
    "dram_memory_time",
    "simulate_cpu",
    "GpuExecution",
    "simulate_gpu",
    "WAVE_TRACK",
    "WaveEntry",
    "WaveProgram",
    "fuse_wave",
    "simulate_gpu_arrays",
    "simulate_wave",
    "simulate_wave_entries",
    "BackendModel",
    "Counters",
    "PhaseReport",
    "SimReport",
    "ChunkWork",
    "Phase",
    "PhaseKind",
    "WorkProfile",
]
