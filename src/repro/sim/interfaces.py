"""The protocol the cost engine expects backend models to satisfy.

Kept as a :class:`typing.Protocol` so ``repro.sim`` does not import
``repro.backends`` (backends import algorithms' cost hooks in places, and
a protocol keeps the dependency graph acyclic).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.execution.policy import ExecutionPolicy

__all__ = ["BackendModel"]


@runtime_checkable
class BackendModel(Protocol):
    """Cost-relevant surface of a parallel STL backend.

    Every method is keyed by the algorithm family name so one backend can
    behave differently per algorithm, which the paper shows they do (e.g.,
    NVC-OMP is fastest for ``for_each`` but falls back to sequential for
    ``inclusive_scan``).
    """

    #: Display name ("GCC-TBB", "NVC-OMP"...).
    name: str
    #: Thread-placement strategy: "scatter" or "compact".
    affinity_strategy: str

    def fork_overhead(self, threads: int) -> float:
        """Seconds to open a parallel region with ``threads`` workers."""

    def join_overhead(self, threads: int) -> float:
        """Seconds to close/barrier a parallel region."""

    def sched_overhead(self, chunks: int, threads: int) -> float:
        """Seconds of scheduling work for ``chunks`` scheduling units."""

    def sync_cost(self, threads: int) -> float:
        """Seconds for one extra synchronisation event (atomic/flag check)."""

    def instr_overhead_per_elem(self, alg: str) -> float:
        """Runtime-management instructions added per processed element."""

    def instr_overhead_for(self, alg: str, numa_nodes: int) -> float:
        """Per-element overhead including topology-dependent bookkeeping."""

    def effective_threads(self, threads: int) -> float:
        """Workers that effectively contribute compute (scalability cap)."""

    def ipc_factor(self, alg: str) -> float:
        """Relative IPC achieved vs. the machine's nominal (HPX < 1)."""

    def bw_efficiency(self, alg: str) -> float:
        """Fraction of peak DRAM bandwidth this backend sustains."""

    def bw_efficiency_at(self, alg: str, active_nodes: int) -> float:
        """Bandwidth efficiency derated for multi-node traffic."""

    def numa_quality(self, alg: str) -> float:
        """Fraction of accesses kept node-local under matched placement."""

    def traffic_factor(self, alg: str) -> float:
        """Multiplier on intrinsic DRAM traffic (write-allocate, spills...)."""

    def vector_width(self, alg: str, policy: ExecutionPolicy) -> int:
        """SIMD width in bits used for FP work (0 = scalar)."""

    def seq_codegen_factor(self, alg: str) -> float:
        """Run-time multiplier of this backend's *sequential* code vs GCC -O3."""
