#!/usr/bin/env python
"""Differential harness: scalar, batch and wave simulation must agree bitwise.

The vectorized engines -- per-curve batch (``repro.sim.batch`` +
``repro.suite.batch``) and wave-fused (``repro.sim.wave``) -- promise
*bit-identical* results to the scalar per-point path: not "close",
identical, so cached campaign results, golden figures and the paper's
speedup ratios are the same no matter which path produced them. This
tool is the enforcement, in two layers:

1. :func:`compare_point` sweeps randomized configurations (machine x
   backend x allocator x case x size x threads x element type) through
   the scalar and batch paths and compares the full
   :class:`repro.sim.SimReport` field by field -- total seconds,
   fork/join, every hardware counter, and the per-phase
   name/seconds/compute/memory/overhead/counter breakdown -- using
   exact float equality on the hex encodings. Capability gaps must also
   agree: a configuration that raises ``UnsupportedOperationError`` on
   one path must raise it on the other.
2. :func:`compare_wave` fuses groups of those same configurations into
   one ``repro.sim.wave`` program -- deliberately mixing machines,
   backends and cases the way a campaign wave does -- and compares each
   fused entry's report against the batch engine's report for the same
   profile, closing the scalar == batch == wave triangle.

Wired into tier-1 via ``tests/sim/test_batch_differential.py`` and
``tests/sim/test_wave_differential.py`` (marker ``diffcheck``) and into
CI as a standalone job step. Run directly::

    python tools/diffcheck.py --configs 200 --seed 0

Exit codes: 0 = all configurations agree, 1 = at least one divergence.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

#: The sampled axes. Every (machine, backend) pair of the paper's grid,
#: every named allocator (plus the backend default), every batch case.
MACHINES = ("A", "B", "C")
BACKENDS = ("GCC-SEQ", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")
ALLOCATORS = (None, "default", "first-touch", "hpx", "interleaved")
DTYPES = ("double", "double", "double", "float", "int")  # weighted to the paper's


def _ensure_importable() -> None:
    """Make ``repro`` importable when running from a source checkout."""
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))


@dataclass(frozen=True)
class DiffConfig:
    """One randomized configuration to push through both paths."""

    machine: str
    backend: str
    allocator: str | None
    case: str
    n: int
    threads: int
    dtype: str

    def label(self) -> str:
        """Human-readable one-liner for divergence reports."""
        return (
            f"{self.case}<{self.backend}>@Mach{self.machine}"
            f"/alloc={self.allocator}/n={self.n}/t={self.threads}/{self.dtype}"
        )


def _random_size(rng: random.Random) -> int:
    """A problem size biased toward the interesting edges.

    Mixes exact powers of two (the paper's grid), off-by-one sizes (chunk
    remainder handling), tiny n (sequential-fallback and single-chunk
    paths) and uniformly random interior points.
    """
    kind = rng.randrange(4)
    if kind == 0:
        return 1 << rng.randrange(0, 31)
    if kind == 1:
        exp = rng.randrange(1, 31)
        return max(1, (1 << exp) + rng.choice((-1, 1)))
    if kind == 2:
        return rng.randrange(1, 64)
    return rng.randrange(1, 1 << 27)


def random_configs(count: int, seed: int) -> list[DiffConfig]:
    """``count`` deterministic pseudo-random configurations."""
    _ensure_importable()
    from repro.machines import get_machine
    from repro.suite.batch import BATCH_CASES

    rng = random.Random(seed)
    configs = []
    for _ in range(count):
        machine = rng.choice(MACHINES)
        cores = get_machine(machine).total_cores
        threads = rng.choice(
            sorted({1, 2, 3, rng.randrange(1, cores + 1), cores})
        )
        configs.append(
            DiffConfig(
                machine=machine,
                backend=rng.choice(BACKENDS),
                allocator=rng.choice(ALLOCATORS),
                case=rng.choice(BATCH_CASES),
                n=_random_size(rng),
                threads=threads,
                dtype=rng.choice(DTYPES),
            )
        )
    return configs


def _context(config: DiffConfig):
    """The execution context a configuration describes."""
    from repro.experiments.common import make_ctx
    from repro.memory.allocators import (
        DefaultAllocator,
        HpxNumaAllocator,
        InterleavedAllocator,
        ParallelFirstTouchAllocator,
    )

    named = {
        "default": DefaultAllocator,
        "first-touch": ParallelFirstTouchAllocator,
        "hpx": HpxNumaAllocator,
        "interleaved": InterleavedAllocator,
    }
    allocator = None if config.allocator is None else named[config.allocator]()
    return make_ctx(
        config.machine, config.backend, threads=config.threads, allocator=allocator
    )


def _hex(value: float) -> str:
    """Exact float identity (distinguishes -0.0, compares NaN equal)."""
    return float(value).hex()


def _report_fields(report) -> list[tuple[str, str]]:
    """A SimReport flattened to (field-path, exact value) pairs."""
    fields = [
        ("seconds", _hex(report.seconds)),
        ("fork_join_seconds", _hex(report.fork_join_seconds)),
        ("migration_seconds", _hex(report.migration_seconds)),
    ]
    for prefix, counters in [("counters", report.counters)] + [
        (f"phases[{i}:{p.name}].counters", p.counters)
        for i, p in enumerate(report.phases)
    ]:
        for attr in (
            "instructions",
            "fp_scalar",
            "fp_packed_128",
            "fp_packed_256",
            "bytes_read",
            "bytes_written",
        ):
            fields.append((f"{prefix}.{attr}", _hex(getattr(counters, attr))))
    for i, phase in enumerate(report.phases):
        prefix = f"phases[{i}:{phase.name}]"
        fields.append((f"{prefix}.name", phase.name))
        for attr in (
            "seconds",
            "compute_seconds",
            "memory_seconds",
            "overhead_seconds",
        ):
            fields.append((f"{prefix}.{attr}", _hex(getattr(phase, attr))))
    return fields


def compare_point(config: DiffConfig) -> list[str]:
    """Divergences between the two paths for one configuration.

    Runs the scalar path (capturing the SimReport the case's simulation
    produced) and the vectorized path, and diffs the flattened reports.
    An empty list means bitwise agreement, including exception parity.
    """
    _ensure_importable()
    from repro.errors import UnsupportedOperationError
    from repro.execution.context import ExecutionContext
    from repro.suite.batch import simulate_case_batch
    from repro.suite.cases import get_case
    from repro.suite.wrappers import measure_case
    from repro.types import elem_type

    elem = elem_type(config.dtype)
    ctx = _context(config)

    captured = []
    original = ExecutionContext.simulate

    def spy(self, profile, arrays=()):
        report = original(self, profile, arrays)
        captured.append(report)
        return report

    ExecutionContext.simulate = spy
    try:
        scalar_seconds = measure_case(get_case(config.case), ctx, config.n, elem)
        scalar_exc = None
    except UnsupportedOperationError as exc:
        scalar_exc = f"UnsupportedOperationError: {exc}"
    finally:
        ExecutionContext.simulate = original

    try:
        batch_report = simulate_case_batch(config.case, ctx, config.n, elem)
        batch_exc = None
    except UnsupportedOperationError as exc:
        batch_exc = f"UnsupportedOperationError: {exc}"

    label = config.label()
    if scalar_exc or batch_exc:
        if scalar_exc != batch_exc:
            return [
                f"{label}: exception mismatch: scalar={scalar_exc!r} "
                f"batch={batch_exc!r}"
            ]
        return []
    if not captured:
        return [f"{label}: scalar path produced no SimReport to compare"]

    scalar_report = captured[-1]
    divergences = []
    if _hex(scalar_seconds) != _hex(scalar_report.seconds):
        divergences.append(
            f"{label}: captured report does not match measured seconds"
        )
    scalar_fields = _report_fields(scalar_report)
    batch_fields = _report_fields(batch_report)
    if len(scalar_fields) != len(batch_fields):
        return [
            f"{label}: report shape differs "
            f"({len(scalar_fields)} vs {len(batch_fields)} fields)"
        ]
    for (name_s, value_s), (name_b, value_b) in zip(scalar_fields, batch_fields):
        if name_s != name_b or value_s != value_b:
            divergences.append(
                f"{label}: {name_s}: scalar={value_s} batch={value_b}"
            )
    return divergences


#: How many configurations one wave group fuses in :func:`run_diffcheck`.
#: Sized like a real campaign wave: big enough to mix machines, backends
#: and cases in one program, small enough to localise a divergence.
WAVE_GROUP = 16


def compare_wave(configs: list[DiffConfig]) -> list[str]:
    """Divergences between the wave and batch engines for one fused group.

    Builds every eligible configuration's :class:`ArrayProfile` once,
    costs each through the batch engine, fuses them all into a single
    wave program, and diffs each fused entry's report against its batch
    report. Configurations the batch path cannot serve (non-batch cases
    never occur here; capability gaps raise on build) are skipped --
    :func:`compare_point` already enforces their exception parity.
    An empty list means every entry of the wave agrees bitwise.
    """
    _ensure_importable()
    from repro.errors import UnsupportedOperationError
    from repro.sim.batch import simulate_cpu_arrays
    from repro.sim.wave import WaveEntry, fuse_wave, simulate_wave
    from repro.suite.batch import build_array_profile
    from repro.types import elem_type

    entries: list = []
    labels: list[str] = []
    batch_fields: list[list[tuple[str, str]]] = []
    for config in configs:
        ctx = _context(config)
        try:
            profile = build_array_profile(
                config.case, ctx, config.n, elem_type(config.dtype)
            )
        except UnsupportedOperationError:
            continue  # exception parity is compare_point's job
        entries.append(WaveEntry(ctx.machine, ctx.backend, profile))
        labels.append(config.label())
        batch_fields.append(
            _report_fields(simulate_cpu_arrays(ctx.machine, ctx.backend, profile))
        )
    if not entries:
        return []

    reports = simulate_wave(fuse_wave(entries))
    divergences = []
    for label, fields_b, report_w in zip(labels, batch_fields, reports):
        fields_w = _report_fields(report_w)
        if len(fields_b) != len(fields_w):
            divergences.append(
                f"{label} [wave of {len(entries)}]: report shape differs "
                f"({len(fields_b)} vs {len(fields_w)} fields)"
            )
            continue
        for (name_b, value_b), (name_w, value_w) in zip(fields_b, fields_w):
            if name_b != name_w or value_b != value_w:
                divergences.append(
                    f"{label} [wave of {len(entries)}]: {name_b}: "
                    f"batch={value_b} wave={value_w}"
                )
    return divergences


def run_diffcheck(
    configs: int = 200, seed: int = 0, verbose: bool = False
) -> list[str]:
    """Sweep ``configs`` randomized configurations; return all divergences.

    Each configuration goes through the scalar-vs-batch point check, and
    the same sample is then fused in groups of :data:`WAVE_GROUP` through
    the wave-vs-batch check -- together they pin all three engines to one
    another.
    """
    divergences = []
    sample = random_configs(configs, seed)
    for i, config in enumerate(sample):
        if verbose:
            print(f"[{i + 1}/{configs}] {config.label()}", file=sys.stderr)
        divergences.extend(compare_point(config))
    for start in range(0, len(sample), WAVE_GROUP):
        group = sample[start:start + WAVE_GROUP]
        if verbose:
            print(f"[wave {start // WAVE_GROUP + 1}] fusing {len(group)} "
                  "configurations", file=sys.stderr)
        divergences.extend(compare_wave(group))
    return divergences


def main(argv: list[str] | None = None) -> int:
    """CLI entry; exit 1 if any configuration diverges."""
    parser = argparse.ArgumentParser(
        description="Differential check: the scalar, batch and wave "
        "simulation paths must produce bit-identical SimReports."
    )
    parser.add_argument("--configs", type=int, default=200,
                        help="number of randomized configurations (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="PRNG seed for the configuration sample")
    parser.add_argument("--verbose", action="store_true",
                        help="print each configuration as it runs")
    args = parser.parse_args(argv)
    divergences = run_diffcheck(args.configs, args.seed, args.verbose)
    if divergences:
        print(f"diffcheck: {len(divergences)} divergence(s)", file=sys.stderr)
        for line in divergences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"diffcheck: OK ({args.configs} configurations, seed {args.seed}, "
          "bit-identical reports on the scalar, batch and wave paths)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
