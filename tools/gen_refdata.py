"""Generate ``refdata/*.json`` from the paper transcription below.

The single source of truth for the fidelity harness's reference data:
every claim (paper value, tolerance band, ordering statement, crossover
threshold) and every waiver (documented deviation + its EXPERIMENTS.md
citation) is authored here and serialised through the
``repro.fidelity.refdata`` schema. Re-run after editing::

    PYTHONPATH=src python tools/gen_refdata.py

The fig3 golden (trace-structure summary) is *not* rewritten by this
script -- it is refreshed explicitly with ``pstl-fidelity run
--update-golden`` so a model change never silently re-blesses it; when
the refdata file does not exist yet, the golden is seeded from a fresh
measurement.

Paper values are transcribed from the ICPP 2024 text (Tables 3-7,
Figures 1-9) and mirror EXPERIMENTS.md's "paper" columns. Tolerance
bands follow the repo's calibration policy: [0.55, 1.8] for the Table 5
speedup grid (``tools/calibrate_table5.py``), tighter bands where the
reproduction is exact by construction (binary sizes, counter columns),
and absolute bounds for statements like "never exceeds the STREAM
ratio".
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.fidelity.artifacts import build_artifact  # noqa: E402
from repro.fidelity.refdata import (  # noqa: E402
    ArtifactRef,
    Claim,
    Waiver,
    load_refdata,
    save_refdata,
)

# --- paper transcriptions ---------------------------------------------------

#: Table 5 speedups (Mach A, B, C); None = the paper's N/A.
TABLE5_PAPER = {
    ("GCC-TBB", "find"): (8.9, 5.8, 4.7),
    ("GCC-TBB", "for_each_k1"): (14.2, 6.1, 8.5),
    ("GCC-TBB", "for_each_k1000"): (32.5, 54.9, 102.0),
    ("GCC-TBB", "inclusive_scan"): (4.5, 3.1, 4.7),
    ("GCC-TBB", "reduce"): (10.0, 5.1, 6.9),
    ("GCC-TBB", "sort"): (9.7, 9.4, 10.6),
    ("GCC-GNU", "find"): (8.0, 3.2, 2.2),
    ("GCC-GNU", "for_each_k1"): (15.0, 7.8, 9.1),
    ("GCC-GNU", "for_each_k1000"): (32.5, 54.9, 106.5),
    ("GCC-GNU", "inclusive_scan"): None,
    ("GCC-GNU", "reduce"): (11.0, 4.7, 6.0),
    ("GCC-GNU", "sort"): (25.4, 26.9, 66.6),
    ("GCC-HPX", "find"): (6.4, 1.4, 1.1),
    ("GCC-HPX", "for_each_k1"): (7.2, 1.8, 1.4),
    ("GCC-HPX", "for_each_k1000"): (32.4, 43.7, 84.8),
    ("GCC-HPX", "inclusive_scan"): (3.0, 0.9, 1.0),
    ("GCC-HPX", "reduce"): (7.3, 0.9, 1.2),
    ("GCC-HPX", "sort"): (10.1, 8.0, 8.1),
    ("ICC-TBB", "find"): (9.0, None, 4.8),
    ("ICC-TBB", "for_each_k1"): (13.9, None, 8.2),
    ("ICC-TBB", "for_each_k1000"): (32.5, None, 106.7),
    ("ICC-TBB", "inclusive_scan"): (4.5, None, 4.7),
    ("ICC-TBB", "reduce"): (10.2, None, 6.8),
    ("ICC-TBB", "sort"): (10.1, None, 9.0),
    ("NVC-OMP", "find"): (6.1, 1.4, 1.2),
    ("NVC-OMP", "for_each_k1"): (22.1, 15.0, 13.0),
    ("NVC-OMP", "for_each_k1000"): (32.0, 54.8, 106.5),
    ("NVC-OMP", "inclusive_scan"): (0.9, 0.8, 0.9),
    ("NVC-OMP", "reduce"): (11.0, 4.8, 11.9),
    ("NVC-OMP", "sort"): (7.1, 6.3, 6.7),
}

#: The calibration band of tools/calibrate_table5.py.
T5_BAND = (0.55, 1.8)

MACHS = ("A", "B", "C")
CASES = ("find", "for_each_k1", "for_each_k1000", "inclusive_scan", "reduce", "sort")
BACKENDS = ("GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP")

#: The five out-of-band Table 5 cells, with their EXPERIMENTS.md causes.
TABLE5_WAIVERS = {
    ("GCC-HPX", "find", "C"): (
        "the model's HPX remote-traffic penalty overshoots on Zen 3",
        "HPX's Zen-3 remote-traffic penalty overshoots for tiny per-element work",
    ),
    ("GCC-HPX", "for_each_k1", "B"): (
        "the paper's HPX collapse on Zen 1 is non-monotone in thread count "
        "and not representable by the model",
        "likely an HPX-1.9.1/Zen-1 pathology",
    ),
    ("GCC-HPX", "for_each_k1", "C"): (
        "same mechanism as the Zen-1 HPX collapse",
        "likely an HPX-1.9.1/Zen-1 pathology",
    ),
    ("GCC-GNU", "reduce", "B"): (
        "Zen-1 reduce pathology specific to the (GNU, Mach B) pair",
        "our read-only NUMA quality is calibrated against the machine, not "
        "per backend-machine pair",
    ),
    ("NVC-OMP", "reduce", "B"): (
        "Zen-1 reduce pathology specific to the (NVC, Mach B) pair",
        "the same backend is simultaneously worst-on-B and best-on-C",
    ),
}

#: Table 3 counters on Mach A (100x for_each k=1).
TABLE3_PAPER = {
    "GCC-TBB": {"instructions": 1.72e12, "data_volume_gib": 2128, "bandwidth_gib": 107.6},
    "GCC-GNU": {"instructions": 2.41e12, "data_volume_gib": 1925, "bandwidth_gib": 116.6},
    "GCC-HPX": {"instructions": 3.83e12, "data_volume_gib": 1850, "bandwidth_gib": 75.6},
    "ICC-TBB": {"instructions": 1.55e12, "data_volume_gib": 2151, "bandwidth_gib": 104.5},
    "NVC-OMP": {"instructions": 2.24e12, "data_volume_gib": 1762, "bandwidth_gib": 119.1},
}

#: Table 4 counters on Mach A (100x reduce).
TABLE4_PAPER_INSTR = {
    "GCC-TBB": 188e9,
    "GCC-GNU": 227e9,
    "GCC-HPX": 1.74e12,
    "ICC-TBB": 107e9,
    "NVC-OMP": 295e9,
}

#: Table 7 binary sizes (MiB).
TABLE7_PAPER = {
    "GCC-SEQ": 2.52, "GCC-TBB": 17.21, "GCC-GNU": 5.31, "GCC-HPX": 61.98,
    "ICC-TBB": 16.64, "NVC-OMP": 1.81, "NVC-CUDA": 7.80,
}

#: Fig. 3 maximum speedups (k=1 and k=1000; Mach A, B, C).
FIG3_PAPER = {
    "GCC-TBB": {"k1": (14.2, 6.1, 8.5), "k1000": (32.5, 54.9, 102.0)},
    "GCC-GNU": {"k1": (15.0, 7.8, 9.1), "k1000": (32.5, 54.9, 106.5)},
    "GCC-HPX": {"k1": (7.2, 1.8, 1.4), "k1000": (32.4, 43.7, 84.8)},
    "NVC-OMP": {"k1": (22.1, 15.0, 13.0), "k1000": (32.0, 54.8, 106.5)},
    "ICC-TBB": {"k1": (13.9, None, 8.2), "k1000": (32.5, None, 106.7)},
}

HPX_ZEN_CITE = "HPX k=1 on B/C lands at 5.7/6.1 vs the paper's 1.8/1.4"


def _t5_key(backend: str, case: str, mach: str) -> str:
    return f"{backend}/{case}/{mach}"


def fig1_ref() -> ArtifactRef:
    """Fig. 1: custom-allocator speedup ratios on Mach A."""
    claims = [
        Claim(id="f1-foreach-k1-gain", kind="ratio", cell="GCC-TBB/for_each_k1",
              paper=1.63, band=(0.85, 1.2),
              note="paper: custom allocator helps for_each(k=1) by up to +63%"),
        Claim(id="f1-reduce-gain", kind="ratio", cell="GCC-TBB/reduce",
              paper=1.50, band=(0.85, 1.25),
              note="paper: reduce gains up to +50%"),
        Claim(id="f1-foreach-k1000-neutral", kind="ratio",
              cell="GCC-TBB/for_each_k1000", paper=1.0, band=(0.95, 1.05),
              note="paper: no effect for compute-bound for_each"),
        Claim(id="f1-sort-neutral", kind="ratio", cell="GCC-TBB/sort",
              paper=1.0, band=(0.8, 1.25),
              note="paper: no effect for sort; we show a small residual gain"),
        Claim(id="f1-find-sign", kind="ratio", cell="GCC-TBB/find",
              paper=0.76, band=(0.8, 1.25),
              note="paper: -24% for find (waived: sign not reproducible, "
              "see EXPERIMENTS.md Fig. 1)"),
        Claim(id="f1-scan-sign", kind="ratio", cell="GCC-TBB/inclusive_scan",
              paper=0.81, band=(0.8, 1.25),
              note="paper: -19% for inclusive_scan (waived, same argument)"),
        Claim(id="f1-find-least", kind="ordering", cell="GCC-TBB/find",
              expect="min",
              group=("GCC-TBB/find", "GCC-TBB/for_each_k1",
                     "GCC-TBB/reduce", "GCC-TBB/sort"),
              note="find is the clear non-beneficiary among the active cases"),
        Claim(id="f1-foreach-k1-most", kind="ordering",
              cell="GCC-TBB/for_each_k1", expect="max",
              group=("GCC-TBB/find", "GCC-TBB/for_each_k1",
                     "GCC-TBB/inclusive_scan", "GCC-TBB/sort"),
              note="for_each(k=1) benefits most"),
        Claim(id="f1-gnu-scan-na", kind="na", cell="GCC-GNU/inclusive_scan",
              note="GNU has no parallel scan"),
        Claim(id="f1-nvc-scan-least", kind="ordering",
              cell="NVC-OMP/inclusive_scan", expect="min",
              group=("NVC-OMP/inclusive_scan", "NVC-OMP/for_each_k1",
                     "NVC-OMP/reduce"),
              note="NVC's sequential-fallback scan cannot benefit"),
    ]
    waivers = [
        Waiver(claim="f1-find-sign",
               reason="the paper's find slowdown is inconsistent with its own "
               "Table 5 row; ordering is preserved, the sign is not",
               experiments_md="we preserve ordering, not sign"),
        Waiver(claim="f1-scan-sign",
               reason="same paper-internal inconsistency as find",
               experiments_md="we preserve ordering, not sign"),
    ]
    return ArtifactRef(
        artifact="fig1",
        title="Custom parallel allocator speedup (Mach A, 32 threads, 2^30)",
        source="Figure 1",
        claims=tuple(claims), waivers=tuple(waivers),
    )


def fig2_ref() -> ArtifactRef:
    """Fig. 2: for_each problem-size scaling."""
    claims = []
    for mach, measured_exp in (("A", 14), ("B", 15), ("C", 16)):
        claims.append(Claim(
            id=f"f2-crossover-{mach.lower()}", kind="crossover",
            curve_a=f"{mach}/k1/GCC-TBB", curve_b=f"{mach}/k1/GCC-SEQ",
            paper_x=2 ** 16, steps=2,
            note=f"paper: parallel pays off 'around 2^16' (benefits start "
            f"2^10-2^16); ours crosses at 2^{measured_exp} on Mach {mach}"))
    parallel = ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP")
    for mach in MACHS:
        group = tuple(f"{mach}/k1/{b}/t@2^30" for b in parallel)
        claims.append(Claim(
            id=f"f2-nvc-fastest-{mach.lower()}", kind="ordering",
            cell=f"{mach}/k1/NVC-OMP/t@2^30", expect="min", group=group,
            note="NVC-OMP is the fastest parallel backend at k=1 at scale"))
        claims.append(Claim(
            id=f"f2-hpx-slowest-{mach.lower()}", kind="ordering",
            cell=f"{mach}/k1/GCC-HPX/t@2^30", expect="max", group=group,
            note="HPX is the slowest parallel backend everywhere"))
    return ArtifactRef(
        artifact="fig2",
        title="for_each problem scaling (Mach A/B/C, k in {1, 1000})",
        source="Figure 2",
        claims=tuple(claims),
    )


def fig3_ref(goldens: dict) -> ArtifactRef:
    """Fig. 3: for_each strong scaling at 2^30."""
    claims = []
    waivers = []
    for backend, by_k in FIG3_PAPER.items():
        for k, per_mach in by_k.items():
            band = T5_BAND if k == "k1" else (0.8, 1.25)
            for mach, paper in zip(MACHS, per_mach):
                if paper is None:
                    continue
                cid = f"f3-{backend.lower()}-{k}-{mach.lower()}"
                claims.append(Claim(
                    id=cid, kind="ratio",
                    cell=f"{backend}/{k}/{mach}/max_speedup",
                    paper=paper, band=band))
    for mach in ("B", "C"):
        waivers.append(Waiver(
            claim=f"f3-gcc-hpx-k1-{mach.lower()}",
            reason="the paper's HPX collapse on the Zen machines is deeper "
            "than the contention + NUMA-decay model produces",
            experiments_md=HPX_ZEN_CITE))
    for mach in MACHS:
        group = tuple(f"{b}/k1/{mach}/max_speedup"
                      for b in ("GCC-TBB", "GCC-GNU", "GCC-HPX", "NVC-OMP"))
        claims.append(Claim(
            id=f"f3-nvc-leads-k1-{mach.lower()}", kind="ordering",
            cell=f"NVC-OMP/k1/{mach}/max_speedup", expect="max", group=group,
            note="NVC-OMP leads k=1 on every machine"))
        claims.append(Claim(
            id=f"f3-hpx-trails-k1-{mach.lower()}", kind="ordering",
            cell=f"GCC-HPX/k1/{mach}/max_speedup", expect="min", group=group,
            note="HPX trails k=1 on every machine"))
    claims.append(Claim(
        id="f3-tbb-k1-numa-inversion", kind="ordering",
        cell="GCC-TBB/k1/A/max_speedup", expect="max",
        group=("GCC-TBB/k1/A/max_speedup", "GCC-TBB/k1/B/max_speedup",
               "GCC-TBB/k1/C/max_speedup"),
        note="the 32-core Mach A beats the wider Zen machines for "
        "bandwidth-bound k=1 (the paper's NUMA inversion)"))
    claims.append(Claim(
        id="f3-trace-structure", kind="golden", cell="trace_summary",
        note="Chrome-trace structure of a traced 2^16 sweep (promoted from "
        "tests/trace's bespoke golden)"))
    return ArtifactRef(
        artifact="fig3",
        title="for_each strong scaling (2^30)",
        source="Figure 3",
        claims=tuple(claims), waivers=tuple(waivers), goldens=goldens,
    )


def fig4_ref() -> ArtifactRef:
    """Fig. 4: find on Mach B."""
    claims = [
        Claim(id="f4-tbb-max", kind="ratio", cell="scaling/GCC-TBB/max_speedup",
              paper=6.0, band=(0.7, 1.4),
              note="paper: maximum speedup about 6 with GCC-TBB and 64 threads"),
        Claim(id="f4-stream-cap", kind="bound",
              cell="scaling/GCC-TBB/max_speedup", max=7.85,
              note="STREAM predicts ~7; ours caps at 7.85, never exceeded"),
        Claim(id="f4-tbb-wins", kind="ordering",
              cell="scaling/GCC-TBB/max_speedup", expect="max",
              group=("scaling/GCC-TBB/max_speedup", "scaling/GCC-GNU/max_speedup",
                     "scaling/GCC-HPX/max_speedup", "scaling/NVC-OMP/max_speedup"),
              note="GCC-TBB wins find on Mach B"),
        Claim(id="f4-hpx-last", kind="ordering",
              cell="scaling/GCC-HPX/max_speedup", expect="min",
              group=("scaling/GCC-GNU/max_speedup", "scaling/GCC-HPX/max_speedup",
                     "scaling/NVC-OMP/max_speedup")),
        Claim(id="f4-crossover", kind="crossover",
              curve_a="problem/GCC-GNU", curve_b="problem/GCC-SEQ",
              paper_x=2 ** 18, steps=1,
              note="paper: parallel wins beyond ~2^18 (find's random target "
              "makes the threshold soft)"),
    ]
    return ArtifactRef(
        artifact="fig4", title="find on Mach B", source="Figure 4",
        claims=tuple(claims),
    )


def fig5_ref() -> ArtifactRef:
    """Fig. 5: inclusive_scan on Mach C."""
    claims = [
        Claim(id="f5-gnu-na", kind="na", cell="scaling/GCC-GNU/max_speedup",
              note="GNU has no parallel scan (UnsupportedOperationError)"),
        Claim(id="f5-tbb-max", kind="ratio", cell="scaling/GCC-TBB/max_speedup",
              paper=5.0, band=(0.75, 1.33),
              note="paper: TBB scan reaches about 5 (waived: ours 3.4, the "
              "scan model carries the Fig.-1 spread penalty)"),
        Claim(id="f5-nvc-flat", kind="bound", cell="scaling/NVC-OMP/max_speedup",
              min=0.9, max=1.3,
              note="NVC's sequential-fallback scan stays flat at ~1"),
        Claim(id="f5-hpx-flat", kind="bound", cell="scaling/GCC-HPX/max_speedup",
              min=0.8, max=1.2, note="paper: HPX shows no scan scaling"),
        Claim(id="f5-tbb-wins", kind="ordering",
              cell="scaling/GCC-TBB/max_speedup", expect="max",
              group=("scaling/GCC-TBB/max_speedup", "scaling/GCC-HPX/max_speedup",
                     "scaling/NVC-OMP/max_speedup"),
              note="only the TBB family scales scan"),
        Claim(id="f5-crossover", kind="crossover",
              curve_a="problem/GCC-TBB", curve_b="problem/GCC-SEQ",
              paper_x=2 ** 19, steps=1,
              note="sequential wins while cache-resident, loses beyond the LLC"),
    ]
    waivers = [
        Waiver(claim="f5-tbb-max",
               reason="the scan model inherits the latency-spread penalty "
               "that reconciles Fig. 1 with Table 5",
               experiments_md="our scan model carries the Fig.-1 spread penalty"),
    ]
    return ArtifactRef(
        artifact="fig5", title="inclusive_scan on Mach C", source="Figure 5",
        claims=tuple(claims), waivers=tuple(waivers),
    )


def fig6_ref() -> ArtifactRef:
    """Fig. 6: reduce on Mach A."""
    claims = [
        Claim(id="f6-nvc-group1", kind="ratio", cell="scaling/NVC-OMP/max_speedup",
              paper=10.5, band=(0.8, 1.25),
              note="paper: group 1 {NVC, TBB, GNU} lands at about 10-11"),
        Claim(id="f6-hpx-worst-ratio", kind="ratio",
              cell="scaling/GCC-HPX/max_speedup", paper=7.3, band=T5_BAND,
              note="paper: HPX is the group-2 floor at 7.3"),
        Claim(id="f6-hpx-last", kind="ordering",
              cell="scaling/GCC-HPX/max_speedup", expect="min",
              group=("scaling/GCC-TBB/max_speedup", "scaling/GCC-GNU/max_speedup",
                     "scaling/GCC-HPX/max_speedup", "scaling/NVC-OMP/max_speedup"),
              note="HPX is the worst reduce backend"),
        Claim(id="f6-stream-ceiling", kind="bound",
              cell="scaling/NVC-OMP/max_speedup", max=11.5,
              note="ceiling below the STREAM ratio (11.5) everywhere"),
        Claim(id="f6-crossover-nvc", kind="crossover",
              curve_a="problem/NVC-OMP", curve_b="problem/GCC-SEQ",
              paper_x=2 ** 15, steps=1,
              note="paper: crossover around 2^15"),
        Claim(id="f6-crossover-tbb", kind="crossover",
              curve_a="problem/GCC-TBB", curve_b="problem/GCC-SEQ",
              paper_x=2 ** 15, steps=2,
              note="ours lands at 2^15-2^19 depending on backend"),
    ]
    return ArtifactRef(
        artifact="fig6", title="reduce on Mach A", source="Figure 6",
        claims=tuple(claims),
    )


def fig7_ref() -> ArtifactRef:
    """Fig. 7: sort on Mach C."""
    paper = {"GCC-GNU": 66.6, "GCC-TBB": 10.6, "ICC-TBB": 9.0,
             "GCC-HPX": 8.1, "NVC-OMP": 6.7}
    claims = [
        Claim(id=f"f7-{b.lower()}-max", kind="ratio",
              cell=f"scaling/{b}/max_speedup", paper=v, band=(0.7, 1.4))
        for b, v in paper.items()
    ]
    claims.append(Claim(
        id="f7-gnu-standout", kind="ordering",
        cell="scaling/GCC-GNU/max_speedup", expect="max",
        group=tuple(f"scaling/{b}/max_speedup" for b in paper),
        note="GNU's multiway mergesort is the standout (about 6x the next "
        "backend)"))
    claims.append(Claim(
        id="f7-nvc-last", kind="ordering",
        cell="scaling/NVC-OMP/max_speedup", expect="min",
        group=("scaling/GCC-GNU/max_speedup", "scaling/GCC-HPX/max_speedup",
               "scaling/NVC-OMP/max_speedup")))
    return ArtifactRef(
        artifact="fig7", title="sort on Mach C", source="Figure 7",
        claims=tuple(claims),
    )


def fig8_ref() -> ArtifactRef:
    """Fig. 8: GPU for_each with forced D2H."""
    claims = [
        Claim(id="f8-t4-high-intensity", kind="ratio",
              cell="k10000/t4/ratio@2^29", paper=23.5, band=(0.7, 1.4),
              note="paper: high intensity gives 23.5x over the parallel host"),
        Claim(id="f8-a2-high-intensity", kind="ratio",
              cell="k10000/a2/ratio@2^29", paper=13.3, band=(0.7, 1.4)),
        Claim(id="f8-low-intensity-loses", kind="bound",
              cell="k1/t4/ratio@2^29", max=1.0,
              note="paper: low intensity leaves the GPU slower than the "
              "parallel CPU (transfer-bound)"),
        Claim(id="f8-t4-beats-a2", kind="ordering",
              cell="k10000/t4/ratio@2^29", expect="max",
              group=("k10000/t4/ratio@2^29", "k10000/a2/ratio@2^29"),
              note="the T4 node outruns the A2 node at high intensity"),
        Claim(id="f8-seq-crossover", kind="crossover",
              curve_a="k1/t4", curve_b="k1/seq-host",
              paper_x=2 ** 13, steps=2,
              note="paper: at small sizes the GPU loses even to sequential "
              "(up to ~2^12)"),
    ]
    return ArtifactRef(
        artifact="fig8", title="GPU for_each (float, forced D2H)",
        source="Figure 8", claims=tuple(claims),
    )


def fig9_ref() -> ArtifactRef:
    """Fig. 9: GPU reduce, chained vs transferred."""
    claims = [
        Claim(id="f9-chain-saving", kind="bound", cell="t4/chain_saving",
              min=80.0, note="chaining saves >80x per call"),
        Claim(id="f9-forced-slower-than-seq", kind="ordering",
              cell="forced/t4/t@2^29", expect="max",
              group=("forced/t4/t@2^29", "forced/seq-host/t@2^29",
                     "forced/omp-host/t@2^29"),
              note="with forced D2H the T4 is slower than even the "
              "sequential CPU (communication-limited regime)"),
        Claim(id="f9-chained-fastest", kind="ordering",
              cell="chained/t4/t@2^29", expect="min",
              group=("chained/t4/t@2^29", "chained/seq-host/t@2^29",
                     "chained/omp-host/t@2^29"),
              note="chained, the T4 beats every host configuration"),
        Claim(id="f9-forced-t4-time", kind="bound", cell="forced/t4/t@2^29",
              min=0.5, max=1.0,
              note="regression guard on the documented 0.724 s per call"),
        Claim(id="f9-chained-t4-time", kind="bound", cell="chained/t4/t@2^29",
              min=0.005, max=0.015,
              note="regression guard on the documented 0.0088 s per call "
              "(the device-bandwidth floor)"),
        Claim(id="f9-seq-host-time", kind="bound", cell="forced/seq-host/t@2^29",
              min=0.15, max=0.25,
              note="regression guard on the documented 0.196 s sequential call"),
    ]
    return ArtifactRef(
        artifact="fig9", title="GPU reduce, chained vs transferred (float, 2^29)",
        source="Figure 9", claims=tuple(claims),
    )


def table3_ref() -> ArtifactRef:
    """Table 3: hardware counters for 100x for_each(k=1) on Mach A."""
    claims = []
    for backend, paper in TABLE3_PAPER.items():
        b = backend.lower()
        claims.append(Claim(
            id=f"t3-{b}-instructions", kind="ratio",
            cell=f"{backend}/instructions", paper=paper["instructions"],
            band=(0.9, 1.11), note="instruction totals within ~3%"))
        claims.append(Claim(
            id=f"t3-{b}-volume", kind="ratio",
            cell=f"{backend}/data_volume_gib", paper=paper["data_volume_gib"],
            band=(0.97, 1.03), note="memory volumes within 0.3%"))
        claims.append(Claim(
            id=f"t3-{b}-fp-scalar", kind="ratio",
            cell=f"{backend}/fp_scalar", paper=1.07374e11, band=(0.99, 1.01),
            note="paper: 107G scalar FP everywhere"))
        claims.append(Claim(
            id=f"t3-{b}-no-packed", kind="bound",
            cell=f"{backend}/fp_packed_256", max=0.0,
            note="paper: no packed FP in the for_each kernel"))
        if backend != "GCC-HPX":
            claims.append(Claim(
                id=f"t3-{b}-bandwidth", kind="ratio",
                cell=f"{backend}/bandwidth_gib", paper=paper["bandwidth_gib"],
                band=(0.85, 1.1),
                note="bandwidths run ~7% low (fork/join overhead inside the "
                "marker region); HPX is checked by ordering only"))
    bw_group = tuple(f"{b}/bandwidth_gib" for b in TABLE3_PAPER)
    claims.append(Claim(
        id="t3-nvc-best-bandwidth", kind="ordering",
        cell="NVC-OMP/bandwidth_gib", expect="max", group=bw_group,
        note="NVC sustains the highest bandwidth"))
    claims.append(Claim(
        id="t3-hpx-worst-bandwidth", kind="ordering",
        cell="GCC-HPX/bandwidth_gib", expect="min", group=bw_group,
        note="HPX is worst by a wide margin"))
    return ArtifactRef(
        artifact="table3",
        title="Counters, 100x for_each(k=1), Mach A",
        source="Table 3", claims=tuple(claims),
    )


def table4_ref() -> ArtifactRef:
    """Table 4: hardware counters for 100x reduce on Mach A."""
    claims = []
    waivers = []
    for backend, paper in TABLE4_PAPER_INSTR.items():
        claims.append(Claim(
            id=f"t4-{backend.lower()}-instructions", kind="ratio",
            cell=f"{backend}/instructions", paper=paper, band=(0.9, 1.11)))
    waivers.append(Waiver(
        claim="t4-gcc-hpx-instructions",
        reason="the HPX scheduler's instruction overhead is modelled "
        "coarsely; ours is 1.29T vs the paper's 1.74T, still 4-7x all "
        "other backends",
        experiments_md="HPX totals 1.29T vs 1.74T"))
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        claims.append(Claim(
            id=f"t4-{backend.lower()}-fp-scalar", kind="ratio",
            cell=f"{backend}/fp_scalar", paper=1.07374e11, band=(0.99, 1.01),
            note="scalar backends execute exactly one FLOP per element"))
    for backend in ("ICC-TBB", "GCC-HPX"):
        claims.append(Claim(
            id=f"t4-{backend.lower()}-packed-256", kind="ratio",
            cell=f"{backend}/fp_packed_256", paper=26e9, band=(0.9, 1.11),
            note="paper: the vectorised backends retire 26G 256-bit packed ops"))
    claims.append(Claim(
        id="t4-volume", kind="ratio", cell="GCC-TBB/data_volume_gib",
        paper=1.17, band=T5_BAND,
        note="paper's volume row (0.86-1.17 GiB) contradicts its own 8 "
        "GiB/call inputs; waived, ours is first-principles (~840 GiB)"))
    waivers.append(Waiver(
        claim="t4-volume",
        reason="the paper's memory-volume row is internally inconsistent "
        "with its input sizes and bandwidths",
        experiments_md="ours are derived from first principles"))
    instr_group = tuple(f"{b}/instructions" for b in TABLE4_PAPER_INSTR)
    claims.append(Claim(
        id="t4-hpx-most-instructions", kind="ordering",
        cell="GCC-HPX/instructions", expect="max", group=instr_group,
        note="HPX executes 4-7x the instructions of everything else"))
    claims.append(Claim(
        id="t4-icc-least-instructions", kind="ordering",
        cell="ICC-TBB/instructions", expect="min", group=instr_group,
        note="ICC's vectorised kernel is the leanest"))
    return ArtifactRef(
        artifact="table4", title="Counters, 100x reduce, Mach A",
        source="Table 4", claims=tuple(claims), waivers=tuple(waivers),
    )


def table5_ref() -> ArtifactRef:
    """Table 5: the headline speedup grid."""
    claims = []
    waivers = []
    for (backend, case), paper in sorted(TABLE5_PAPER.items()):
        for mach, value in zip(MACHS, paper or (None, None, None)):
            cell = _t5_key(backend, case, mach)
            cid = f"t5-{backend.lower()}-{case.replace('_', '-')}-{mach.lower()}"
            if value is None:
                claims.append(Claim(
                    id=cid, kind="na", cell=cell,
                    note="paper N/A: GNU lacks parallel scan, ICC is absent "
                    "from Mach B"))
                continue
            claims.append(Claim(
                id=cid, kind="ratio", cell=cell, paper=value, band=T5_BAND))
            key = (backend, case, mach)
            if key in TABLE5_WAIVERS:
                reason, cite = TABLE5_WAIVERS[key]
                waivers.append(Waiver(
                    claim=cid, reason=reason, experiments_md=cite))
    for mach in MACHS:
        k1 = tuple(_t5_key(b, "for_each_k1", mach) for b in BACKENDS)
        claims.append(Claim(
            id=f"t5-nvc-tops-k1-{mach.lower()}", kind="ordering",
            cell=_t5_key("NVC-OMP", "for_each_k1", mach), expect="max",
            group=k1, note="NVC tops every for_each k=1 row"))
        claims.append(Claim(
            id=f"t5-hpx-bottoms-k1-{mach.lower()}", kind="ordering",
            cell=_t5_key("GCC-HPX", "for_each_k1", mach), expect="min",
            group=k1, note="HPX bottoms every for_each k=1 row"))
        claims.append(Claim(
            id=f"t5-gnu-tops-sort-{mach.lower()}", kind="ordering",
            cell=_t5_key("GCC-GNU", "sort", mach), expect="max",
            group=tuple(_t5_key(b, "sort", mach) for b in BACKENDS),
            note="GNU tops every sort row"))
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP"):
        claims.append(Claim(
            id=f"t5-{backend.lower()}-k1-numa-inversion", kind="ordering",
            cell=_t5_key(backend, "for_each_k1", "A"), expect="max",
            group=tuple(_t5_key(backend, "for_each_k1", m) for m in MACHS),
            note="the 32-core Mach A out-speeds-up the wider Zen machines "
            "for bandwidth-bound k=1 despite their higher STREAM numbers "
            "(the paper's NUMA inversion; sensitive to Mach A's calibrated "
            "bandwidth)"))
    claims.append(Claim(
        id="t5-nvc-scan-flat", kind="bound",
        cell=_t5_key("NVC-OMP", "inclusive_scan", "C"), max=1.1,
        note="NVC scan never exceeds 1.1 (sequential fallback)"))
    return ArtifactRef(
        artifact="table5", title="Speedup vs GCC-SEQ (headline grid)",
        source="Table 5", claims=tuple(claims), waivers=tuple(waivers),
    )


def table6_ref() -> ArtifactRef:
    """Table 6: max threads with >= 70% efficiency."""
    claims = []
    waivers = []
    width = {"A": 32, "B": 64, "C": 128}
    for backend in ("GCC-TBB", "GCC-GNU", "NVC-OMP", "ICC-TBB"):
        for mach in MACHS:
            cell = f"{backend}/for_each_k1000/{mach}"
            cid = f"t6-{backend.lower()}-k1000-{mach.lower()}"
            if backend == "ICC-TBB" and mach == "B":
                claims.append(Claim(id=cid, kind="na", cell=cell))
                continue
            claims.append(Claim(
                id=cid, kind="ratio", cell=cell, paper=float(width[mach]),
                band=(0.999, 1.001),
                note="compute-bound for_each reaches full machine width"))
    for mach in MACHS:
        claims.append(Claim(
            id=f"t6-hpx-k1000-{mach.lower()}", kind="bound",
            cell=f"GCC-HPX/for_each_k1000/{mach}", min=32.0,
            note="HPX also scales compute-bound work, at slightly lower "
            "efficiency (the paper's 66% vs 79-83% split on Mach C)"))
        claims.append(Claim(
            id=f"t6-nvc-scan-{mach.lower()}", kind="ratio",
            cell=f"NVC-OMP/inclusive_scan/{mach}", paper=1.0,
            band=(0.999, 1.001), note="paper: NVC scan is 1 everywhere"))
        claims.append(Claim(
            id=f"t6-gnu-scan-na-{mach.lower()}", kind="na",
            cell=f"GCC-GNU/inclusive_scan/{mach}"))
    for mach, paper in zip(MACHS, (32, 16, 32)):
        claims.append(Claim(
            id=f"t6-gnu-sort-{mach.lower()}", kind="ratio",
            cell=f"GCC-GNU/sort/{mach}", paper=float(paper), band=(0.999, 1.001),
            note="GNU sort sustains the most threads"))
    waivers.append(Waiver(
        claim="t6-gnu-sort-b",
        reason="ours sustains 64 threads on Mach B where the paper measured "
        "16; the qualitative ranking (GNU sort widest) is unchanged",
        experiments_md="32|64|32 vs paper 32|16|32"))
    for mach in MACHS:
        claims.append(Claim(
            id=f"t6-tbb-find-capped-{mach.lower()}", kind="bound",
            cell=f"GCC-TBB/find/{mach}", max=16.0,
            note="paper: backends typically fail to handle more than 16 "
            "threads efficiently on memory-bound work"))
        claims.append(Claim(
            id=f"t6-tbb-reduce-capped-{mach.lower()}", kind="bound",
            cell=f"GCC-TBB/reduce/{mach}", max=16.0))
    claims.append(Claim(
        id="t6-tbb-foreach-k1-b", kind="bound",
        cell="GCC-TBB/for_each_k1/B", min=2.0,
        note="the paper keeps a few efficient threads here; our efficiency "
        "cliff arrives one to two power-of-two steps earlier (waived)"))
    waivers.append(Waiver(
        claim="t6-tbb-foreach-k1-b",
        reason="our parallel overheads bite slightly earlier, pushing "
        "several memory-bound cells to 1 where the paper keeps 2-16",
        experiments_md="many cells are 1 where the paper has 2–16"))
    claims.append(Claim(
        id="t6-k1000-widest", kind="ordering",
        cell="GCC-TBB/for_each_k1000/C", expect="max",
        group=("GCC-TBB/find/C", "GCC-TBB/for_each_k1000/C",
               "GCC-TBB/reduce/C", "GCC-TBB/sort/C"),
        note="only compute-bound work stays efficient at full width"))
    return ArtifactRef(
        artifact="table6", title="Max threads with >= 70% efficiency",
        source="Table 6", claims=tuple(claims), waivers=tuple(waivers),
    )


def table7_ref() -> ArtifactRef:
    """Table 7: binary sizes."""
    claims = [
        Claim(id=f"t7-{b.lower().replace('-', '_')}", kind="ratio",
              cell=f"{b}/mib", paper=v, band=(0.95, 1.05),
              note="static-link model lands within 1.2% of the paper")
        for b, v in TABLE7_PAPER.items()
    ]
    group = tuple(f"{b}/mib" for b in TABLE7_PAPER)
    claims.append(Claim(
        id="t7-hpx-largest", kind="ordering", cell="GCC-HPX/mib",
        expect="max", group=group,
        note="the HPX runtime archive dominates binary size"))
    claims.append(Claim(
        id="t7-nvc-omp-smallest", kind="ordering", cell="NVC-OMP/mib",
        expect="min", group=group,
        note="nvc++ links the leanest host binary"))
    return ArtifactRef(
        artifact="table7", title="Binary sizes", source="Table 7",
        claims=tuple(claims),
    )


def main() -> int:
    """Regenerate every refdata file (preserving the fig3 golden)."""
    try:
        goldens = dict(load_refdata("fig3").goldens)
    except Exception:
        goldens = {}
    if "trace_summary" not in goldens:
        goldens["trace_summary"] = build_artifact("fig3").objects["trace_summary"]
    refs = [
        fig1_ref(), fig2_ref(), fig3_ref(goldens), fig4_ref(), fig5_ref(),
        fig6_ref(), fig7_ref(), fig8_ref(), fig9_ref(),
        table3_ref(), table4_ref(), table5_ref(), table6_ref(), table7_ref(),
    ]
    for ref in refs:
        path = save_refdata(ref)
        print(f"wrote {path} ({len(ref.claims)} claims, "
              f"{len(ref.waivers)} waivers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
