#!/usr/bin/env python
"""Documentation lint: executable code fences + docstring coverage.

Two checks, wired into tier-1 via ``tests/test_docs.py``:

1. **Fence execution** — every ```` ```python ```` fence in each file of
   :data:`FENCE_FILES` is executed, cumulatively per file (later fences
   may use names defined by earlier ones), inside a temporary working
   directory so snippets that write files do not pollute the repo. A
   fence that raises fails the lint with its file/line and the error.
2. **Docstring coverage** — every public module, class, function and
   method in :data:`DOCSTRING_PACKAGES` (the trace, campaign, batch and
   wave simulation, fidelity, and fault-injection layers) must carry a
   non-empty docstring.

Run directly::

    python tools/check_docs.py          # lint
    python tools/check_docs.py --list   # show what is covered, lint nothing
"""

from __future__ import annotations

import argparse
import inspect
import os
import re
import sys
import tempfile
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

#: Files whose ``python`` fences must execute cleanly.
FENCE_FILES = (
    "README.md",
    "docs/OBSERVABILITY.md",
    "docs/CAMPAIGNS.md",
    "docs/FIDELITY.md",
    "docs/ROBUSTNESS.md",
    "docs/PERFORMANCE.md",
    "docs/SERVICE.md",
    "docs/DISTRIBUTION.md",
    "docs/SCENARIOS.md",
)

#: Packages (or plain modules) whose public API must be fully documented.
DOCSTRING_PACKAGES = (
    "repro.trace",
    "repro.campaign",
    "repro.sim.batch",
    "repro.sim.wave",
    "repro.suite.batch",
    "repro.fidelity",
    "repro.faults",
    "repro.service",
    "repro.remote",
    "repro.scenarios",
)

#: Backwards-compatible alias (first entry of :data:`DOCSTRING_PACKAGES`).
DOCSTRING_PACKAGE = DOCSTRING_PACKAGES[0]

_FENCE_RE = re.compile(r"^```(\w*)\s*$")


def _ensure_importable() -> None:
    """Make ``repro`` importable when running from a source checkout."""
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))


def extract_fences(path: Path) -> list[tuple[int, str]]:
    """All ```python fences of ``path`` as (1-based start line, source)."""
    fences: list[tuple[int, str]] = []
    lang: str | None = None
    buf: list[int | str] = []
    start = 0
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        match = _FENCE_RE.match(line)
        if lang is None:
            if match:
                lang = match.group(1)
                start = lineno + 1
                buf = []
        elif line.strip() == "```":
            if lang == "python":
                fences.append((start, "\n".join(buf)))
            lang = None
        else:
            buf.append(line)
    return fences


def run_fences(path: Path) -> list[str]:
    """Execute ``path``'s python fences cumulatively; return error strings."""
    _ensure_importable()
    errors: list[str] = []
    namespace: dict = {"__name__": "__docs__"}
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="check_docs_") as tmp:
        os.chdir(tmp)
        try:
            for lineno, source in extract_fences(path):
                try:
                    code = compile(source, f"{path.name}:{lineno}", "exec")
                    exec(code, namespace)  # noqa: S102 - the point of the lint
                except Exception:
                    tb = traceback.format_exc(limit=3)
                    errors.append(
                        f"{path.relative_to(REPO)}:{lineno}: fence failed\n{tb}"
                    )
        finally:
            os.chdir(cwd)
    return errors


def _public_members(module) -> list[tuple[str, object]]:
    """Public classes/functions defined in ``module`` (not re-exports)."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        members.append((name, obj))
    return members


def walk_modules(package: str) -> list:
    """``package`` plus its direct submodules, imported (no recursion --
    the documented layers are flat packages)."""
    _ensure_importable()
    import importlib
    import pkgutil

    root = importlib.import_module(package)
    modules = [root]
    paths = getattr(root, "__path__", None)  # plain modules have none
    if paths is not None:
        for info in pkgutil.iter_modules(paths, prefix=f"{package}."):
            modules.append(importlib.import_module(info.name))
    return modules


def check_docstrings(package: str = DOCSTRING_PACKAGE) -> list[str]:
    """Undocumented public symbols in ``package``; empty list = clean."""
    errors: list[str] = []
    for module in walk_modules(package):
        if not (module.__doc__ or "").strip():
            errors.append(f"{module.__name__}: missing module docstring")
        for name, obj in _public_members(module):
            qual = f"{module.__name__}.{name}"
            if not (obj.__doc__ or "").strip():
                errors.append(f"{qual}: missing docstring")
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    func = member
                    if isinstance(member, property):
                        func = member.fget
                    elif isinstance(member, (staticmethod, classmethod)):
                        func = member.__func__
                    elif not inspect.isfunction(member):
                        continue
                    if func is not None and not (func.__doc__ or "").strip():
                        errors.append(f"{qual}.{mname}: missing docstring")
    return errors


def list_coverage() -> int:
    """``--list``: show what the lint covers without linting anything."""
    print("fence files:")
    for rel in FENCE_FILES:
        path = REPO / rel
        count = len(extract_fences(path)) if path.exists() else "MISSING"
        print(f"  {rel}: {count} python fence(s)")
    print("docstring packages:")
    for package in DOCSTRING_PACKAGES:
        modules = walk_modules(package)
        symbols = sum(len(_public_members(m)) for m in modules)
        print(f"  {package}: {len(modules)} module(s), "
              f"{symbols} public symbol(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run both checks; print failures; exit non-zero on any."""
    parser = argparse.ArgumentParser(
        prog="check_docs", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list covered files/packages and exit")
    args = parser.parse_args(argv)
    if args.list_only:
        return list_coverage()
    errors: list[str] = []
    for rel in FENCE_FILES:
        errors.extend(run_fences(REPO / rel))
    for package in DOCSTRING_PACKAGES:
        errors.extend(check_docstrings(package))
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    fences = sum(len(extract_fences(REPO / rel)) for rel in FENCE_FILES)
    print(f"check_docs: OK ({fences} fences executed, "
          f"{', '.join(DOCSTRING_PACKAGES)} documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
