#!/usr/bin/env python
"""One-shot in-place migration of a v1 flat result store to the sharded
v2 layout (``STORE_META.json`` + per-shard persistent index).

The object tree is never rewritten -- v2 keeps ``objects/ab/<key>.json``
byte-for-byte -- so migration is purely additive: walk the tree once,
write one compacted index snapshot per populated shard, then stamp the
``STORE_META.json`` marker (the commit point; a crash before it leaves
a valid v1 store, re-running finishes the job). Corrupt or unparseable
objects are left unindexed: ``scan``/``verify`` keep flagging them and
a quarantining read still pulls them out of service.

Usage::

    python tools/migrate_store.py STORE            # migrate in place
    python tools/migrate_store.py STORE --verify   # + bit-identity audit
    python tools/migrate_store.py STORE --compact  # + compaction pass
    python tools/migrate_store.py STORE --force    # rebuild the index
                                                   # even if already v2

``STORE`` is either a store root (a directory holding ``objects/``) or
a campaign directory (holding ``spec.json``; its ``cache/`` is used).

``--verify`` proves the diffcheck-style contract: a pre-migration
inventory of every object's bytes is re-hashed afterwards (no object
touched), the index must cover exactly the intact keys in both
directions, and for every key the indexed (checksum, status, seconds)
must equal what the record itself answers -- i.e. a migrated (and, with
``--compact``, compacted) store answers every query bit-identically to
the v1 flat store.

Exit codes: 0 = migrated/verified OK, 1 = verification failed,
2 = bad invocation (not a store, unreadable layout).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
if str(SRC) not in sys.path:  # runnable straight from a checkout
    sys.path.insert(0, str(SRC))

from repro.campaign.shard import (  # noqa: E402
    STORE_LAYOUT_VERSION,
    STORE_META,
    ShardIndex,
    StoreIndex,
    read_store_meta,
    shard_prefix,
    write_store_meta,
)
from repro.campaign.store import ResultStore, record_checksum  # noqa: E402


def resolve_store_root(target: Path) -> Path:
    """``target`` as a store root (campaign dirs resolve to their cache)."""
    if (target / "spec.json").exists():
        target = target / "cache"
    if (target / "objects").is_dir() or (target / STORE_META).exists():
        return target
    print(f"error: {target} is not a result store (no objects/ tree) "
          "and not a campaign directory (no spec.json)", file=sys.stderr)
    raise SystemExit(2)


def inventory_objects(root: Path) -> dict[str, dict]:
    """key -> {sha256, record|None} for every object file under ``root``.

    ``record`` is None for unparseable files; those stay unindexed (the
    scan/quarantine machinery owns them, not the index).
    """
    objects = root / "objects"
    out: dict[str, dict] = {}
    if not objects.is_dir():
        return out
    for path in sorted(objects.rglob("*.json")):
        raw = path.read_bytes()
        entry: dict = {"sha256": hashlib.sha256(raw).hexdigest(), "record": None}
        try:
            record = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            record = None
        if isinstance(record, dict):
            entry["record"] = record
        out[path.stem] = entry
    return out


def _indexable(key: str, entry: dict) -> dict | None:
    """The index row for an inventoried object, or None to skip it.

    Skipped: unparseable files, records whose embedded key disagrees
    with the filename (misfiled), records failing their own checksum
    (a read would quarantine them, so indexing them would only create
    an immediately-stale row), and keys that are not two-hex-prefix
    shardable. Legacy pre-checksum records *are* indexed (checksum
    None) -- they are served, so they must be countable.
    """
    record = entry["record"]
    if record is None or record.get("key") != key:
        return None
    checksum = record.get("checksum")
    if checksum is not None and record_checksum(record) != checksum:
        return None
    try:
        shard_prefix(key)
    except Exception:
        return None
    result = record.get("result")
    result = result if isinstance(result, dict) else {}
    point = record.get("point")
    return {
        "path": f"objects/{key[:2]}/{key}.json",
        "checksum": record.get("checksum"),
        "point": dict(point) if isinstance(point, dict) else {},
        "status": result.get("status"),
        "seconds": result.get("seconds"),
        "wall_ms": None,  # wall time is a run-side fact; unknowable here
    }


def build_index(root: Path, inventory: dict[str, dict]) -> tuple[int, int]:
    """Write compacted per-shard snapshots for ``inventory``; stamp v2.

    Returns (rows indexed, objects skipped). Snapshots publish
    atomically via each shard's locked compaction writer; the
    ``STORE_META.json`` stamp lands last, so a crash mid-migration
    leaves a still-valid v1 store.
    """
    by_shard: dict[str, dict[str, dict]] = {}
    skipped = 0
    for key, entry in sorted(inventory.items()):
        row = _indexable(key, entry)
        if row is None:
            skipped += 1
            continue
        by_shard.setdefault(key[:2].lower(), {})[key] = row
    index_root = root / "index"
    rows_total = 0
    for prefix, rows in sorted(by_shard.items()):
        shard = ShardIndex(index_root, prefix)
        for key, row in rows.items():
            shard.append({"op": "put", "key": key, **row})
        shard.compact()  # fold straight to the snapshot; log ends empty
        rows_total += len(rows)
    write_store_meta(root)
    return rows_total, skipped


def verify_store(root: Path, inventory: dict[str, dict]) -> list[str]:
    """Bit-identity audit of a migrated store against its v1 inventory.

    Returns a list of problems (empty = verified):

    * every inventoried object file still hashes to its pre-migration
      sha256 (migration touched no objects);
    * index coverage is exact both ways over the indexable keys;
    * per key, the indexed checksum equals the record's stored checksum
      *and* its recomputed one, and (status, seconds) equal what a v1
      read of the record answers.
    """
    problems: list[str] = []
    for key, entry in sorted(inventory.items()):
        path = root / "objects" / key[:2] / f"{key}.json"
        try:
            now = hashlib.sha256(path.read_bytes()).hexdigest()
        except FileNotFoundError:
            problems.append(f"{key}: object file vanished during migration")
            continue
        if now != entry["sha256"]:
            problems.append(f"{key}: object bytes changed during migration")

    index = StoreIndex(root)
    rows = dict(index.rows())
    expected = {key: _indexable(key, entry)
                for key, entry in inventory.items()}
    expected = {key: row for key, row in expected.items() if row is not None}
    for key in sorted(set(expected) - set(rows)):
        problems.append(f"{key}: intact object missing from the index")
    for key in sorted(set(rows) - set(expected)):
        problems.append(f"{key}: index row with no intact object")
    for key in sorted(set(expected) & set(rows)):
        want, got = expected[key], rows[key]
        record = inventory[key]["record"]
        recomputed = record_checksum(record) if record.get("checksum") else None
        if got.get("checksum") != want["checksum"] or (
                recomputed is not None and got.get("checksum") != recomputed):
            problems.append(f"{key}: index checksum disagrees with the record")
        if (got.get("status"), got.get("seconds")) != (
                want["status"], want["seconds"]):
            problems.append(f"{key}: index (status, seconds) disagree "
                            "with a v1 read of the record")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="migrate_store", description=__doc__.splitlines()[0])
    parser.add_argument("store", help="store root (objects/) or campaign "
                        "directory (spec.json)")
    parser.add_argument("--verify", action="store_true",
                        help="audit bit-identity after migrating")
    parser.add_argument("--compact", action="store_true",
                        help="run a compaction pass after migrating")
    parser.add_argument("--force", action="store_true",
                        help="rebuild the index even on an already-v2 store")
    args = parser.parse_args(argv)

    root = resolve_store_root(Path(args.store))
    meta = read_store_meta(root)
    inventory = inventory_objects(root)

    if meta is not None and not args.force:
        print(f"already v{meta.get('layout', STORE_LAYOUT_VERSION)}: "
              f"{root} ({len(inventory)} object(s)); use --force to rebuild")
    else:
        rows, skipped = build_index(root, inventory)
        print(f"migrated {root}: {rows} row(s) indexed across "
              f"{len(StoreIndex(root).prefixes())} shard(s), "
              f"{skipped} object(s) left unindexed (corrupt/misfiled)")

    if args.compact:
        report = ResultStore(root).compact()
        print(f"compacted: {report.summary()}")

    if args.verify:
        problems = verify_store(root, inventory)
        if problems:
            print(f"verify: {len(problems)} problem(s)", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"verify: OK ({len(inventory)} object(s) bit-identical, "
              "index coverage exact)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
