"""Calibration helper: our Table 5 vs the paper's, with ratios."""
from repro.experiments.table5 import cell_speedup

PAPER = {
 ("GCC-TBB","find"): (8.9,5.8,4.7), ("GCC-TBB","for_each_k1"): (14.2,6.1,8.5),
 ("GCC-TBB","for_each_k1000"): (32.5,54.9,102.0), ("GCC-TBB","inclusive_scan"): (4.5,3.1,4.7),
 ("GCC-TBB","reduce"): (10.0,5.1,6.9), ("GCC-TBB","sort"): (9.7,9.4,10.6),
 ("GCC-GNU","find"): (8.0,3.2,2.2), ("GCC-GNU","for_each_k1"): (15.0,7.8,9.1),
 ("GCC-GNU","for_each_k1000"): (32.5,54.9,106.5), ("GCC-GNU","inclusive_scan"): None,
 ("GCC-GNU","reduce"): (11.0,4.7,6.0), ("GCC-GNU","sort"): (25.4,26.9,66.6),
 ("GCC-HPX","find"): (6.4,1.4,1.1), ("GCC-HPX","for_each_k1"): (7.2,1.8,1.4),
 ("GCC-HPX","for_each_k1000"): (32.4,43.7,84.8), ("GCC-HPX","inclusive_scan"): (3.0,0.9,1.0),
 ("GCC-HPX","reduce"): (7.3,0.9,1.2), ("GCC-HPX","sort"): (10.1,8.0,8.1),
 ("ICC-TBB","find"): (9.0,None,4.8), ("ICC-TBB","for_each_k1"): (13.9,None,8.2),
 ("ICC-TBB","for_each_k1000"): (32.5,None,106.7), ("ICC-TBB","inclusive_scan"): (4.5,None,4.7),
 ("ICC-TBB","reduce"): (10.2,None,6.8), ("ICC-TBB","sort"): (10.1,None,9.0),
 ("NVC-OMP","find"): (6.1,1.4,1.2), ("NVC-OMP","for_each_k1"): (22.1,15.0,13.0),
 ("NVC-OMP","for_each_k1000"): (32.0,54.8,106.5), ("NVC-OMP","inclusive_scan"): (0.9,0.8,0.9),
 ("NVC-OMP","reduce"): (11.0,4.8,11.9), ("NVC-OMP","sort"): (7.1,6.3,6.7),
}

MACHS = ("A","B","C")
bad = 0; total = 0
for (backend, case), paper in sorted(PAPER.items(), key=lambda kv: (kv[0][1], kv[0][0])):
    row = []
    for i, m in enumerate(MACHS):
        p = paper[i] if paper else None
        ours = cell_speedup(m, backend, case)
        if p is None or ours is None:
            row.append("   N/A    ")
            continue
        ratio = ours / p
        total += 1
        flag = " "
        if not (0.55 <= ratio <= 1.8):
            flag = "*"; bad += 1
        row.append(f"{ours:5.1f}/{p:5.1f}{flag}")
    print(f"{case:16s} {backend:8s} " + "  ".join(row))
print(f"\nout-of-band cells: {bad}/{total}")
