#!/usr/bin/env python
"""Differential harness: registry scenarios vs the legacy drivers.

For every registered scenario with a legacy counterpart, run both the
data-driven scenario engine (``repro.scenarios``) and the bespoke
driver in ``repro.experiments``, and compare their cells and curves
**bit-for-bit** -- floats via their hex encodings, like
``tools/diffcheck.py`` does for the scalar/batch/wave engines. The
legacy drivers are the pinned reference implementation; any drift in
the registry specs or the kind runners fails here before it can reach
the fidelity checks.

Run directly::

    python tools/scenario_equiv.py              # all scenarios
    python tools/scenario_equiv.py --scenario fig8 --scenario table6
    python tools/scenario_equiv.py --list       # show the pairings

``pytest -m scenario_equiv`` (tests/scenarios/test_equivalence.py) runs
the same comparisons one scenario per test case.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def _hex(value) -> str | None:
    """Bit-exact comparison form of one cell value."""
    return None if value is None else float(value).hex()


def _hex_curve(curve) -> tuple:
    """Bit-exact comparison form of one (x, y) series."""
    return tuple((_hex(x), _hex(y)) for x, y in curve)


def legacy_artifact(name: str) -> tuple[dict, dict]:
    """(cells, curves) from the pinned legacy driver for ``name``.

    This intentionally re-implements the pre-registry fidelity builders:
    the fidelity layer now measures through the registry, so the
    reference here must call the ``repro.experiments`` drivers directly.
    """
    import importlib

    mod = importlib.import_module(f"repro.experiments.{name}")
    result = getattr(mod, f"run_{name}")()
    cells = getattr(mod, f"{name}_cells")(result)
    curves_fn = getattr(mod, f"{name}_curves", None)
    return dict(cells), dict(curves_fn(result)) if curves_fn else {}


def comparable_scenarios() -> tuple[str, ...]:
    """Scenario names with a legacy driver to diff against.

    Every registered scenario that binds a fidelity artifact
    (``claims``) has one; purely user-shaped kinds (``campaign-grid``)
    do not and are covered by self-consistency tests instead.
    """
    from repro.scenarios.registry import get_scenario, scenario_names

    return tuple(n for n in scenario_names() if get_scenario(n).claims)


def diff_scenario(name: str) -> list[str]:
    """All bit-level differences for one scenario; empty list = identical."""
    from repro.scenarios.runner import run_scenario

    run = run_scenario(name)
    legacy_cells, legacy_curves = legacy_artifact(name)

    problems: list[str] = []
    mine = {k: _hex(v) for k, v in run.cells.items()}
    ref = {k: _hex(v) for k, v in legacy_cells.items()}
    for key in sorted(set(ref) - set(mine)):
        problems.append(f"{name}: cell {key!r} missing from scenario output")
    for key in sorted(set(mine) - set(ref)):
        problems.append(f"{name}: cell {key!r} not produced by legacy driver")
    for key in sorted(set(mine) & set(ref)):
        if mine[key] != ref[key]:
            problems.append(
                f"{name}: cell {key!r} differs: scenario={mine[key]} "
                f"legacy={ref[key]}"
            )
    for key in sorted(set(legacy_curves) - set(run.curves)):
        problems.append(f"{name}: curve {key!r} missing from scenario output")
    for key in sorted(set(run.curves) - set(legacy_curves)):
        problems.append(f"{name}: curve {key!r} not produced by legacy driver")
    for key in sorted(set(run.curves) & set(legacy_curves)):
        if _hex_curve(run.curves[key]) != _hex_curve(legacy_curves[key]):
            problems.append(f"{name}: curve {key!r} differs point-wise")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Diff all (or selected) scenarios; exit non-zero on any difference."""
    parser = argparse.ArgumentParser(
        prog="scenario_equiv", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="check only this scenario (repeatable)")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list the scenario/driver pairings and exit")
    args = parser.parse_args(argv)

    names = comparable_scenarios()
    if args.list_only:
        for name in names:
            print(f"{name}: repro.scenarios <-> repro.experiments.{name}")
        return 0
    if args.scenario:
        unknown = sorted(set(args.scenario) - set(names))
        if unknown:
            print(f"scenario_equiv: unknown scenario(s) {unknown}; "
                  f"known: {list(names)}", file=sys.stderr)
            return 2
        names = tuple(n for n in names if n in set(args.scenario))

    failures: list[str] = []
    for name in names:
        started = time.perf_counter()
        problems = diff_scenario(name)
        elapsed = time.perf_counter() - started
        status = "OK" if not problems else f"{len(problems)} difference(s)"
        print(f"{name}: {status} ({elapsed:.2f}s)")
        failures.extend(problems)
    if failures:
        print(f"scenario_equiv: {len(failures)} problem(s)", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"scenario_equiv: OK ({len(names)} scenarios bit-identical to "
          "their legacy drivers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
