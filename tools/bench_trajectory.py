"""Append-and-gate harness for the repo's benchmark trajectory.

Performance work in this repo is tracked as a *trajectory*: every PR
appends one entry per benchmark family to a committed JSON ledger, and
CI fails if the newest entry regresses more than 10% against the
previous one or falls below an absolute floor. Two families live at the
repo root (schema documented in ``docs/PERFORMANCE.md``):

``BENCH_SWEEP.json``
    The Fig. 2 problem-size sweep through the scalar vs. batch engines.
    Metrics: ``scalar_s``, ``batch_s``, ``batch_speedup`` (floor:
    :data:`GATES`, currently >= 5.0).

``BENCH_CAMPAIGN.json``
    The Table 5 campaign grid, cold per-curve batch vs. cold wave-fused
    vs. warm cache. Metrics: ``cold_batch_s``, ``cold_wave_s``,
    ``warm_s``, ``wave_over_batch`` = cold_batch/cold_wave (floor
    >= 1.5), ``warm_speedup`` = cold_batch/warm (floor >= 10.0 -- the
    cache guarantee ``benchmarks/bench_campaign_table5.py`` pins).

``BENCH_SERVICE.json``
    The campaign-service SLO harness: one in-process daemon, 1000
    concurrent mixed cold/warm/duplicate submissions through
    ``repro.service.loadgen``. Floors: ``dedup_hit_rate`` and
    ``completed_rate`` must both be exactly 1.0 (zero lost, every
    duplicate collapsed). Ceiling: ``submit_p99_ms`` (lower is better)
    must stay under :data:`CEILINGS` and may grow at most 10% vs. the
    previous entry. ``throughput_rps``, ``submit_p50_ms`` and
    ``request_overhead_ms`` ride along ungated for trend-reading.

``BENCH_STORE.json``
    The sharded result store's lookup path: synthetic stores of 10k and
    100k objects, full-tree audit scan (the v1 O(all objects) path)
    vs. index-backed count + sampled lookups (the v2 O(result) path),
    plus compaction throughput. Floor: ``lookup_speedup_100k`` >= 10.0
    -- the ISSUE 8 acceptance bound. ``cold_scan_s_*``, ``indexed_s_*``
    and ``compact_rows_per_s`` ride along ungated for trend-reading.

``BENCH_REMOTE.json``
    The multi-host shipping protocol (``repro.remote``,
    ``docs/DISTRIBUTION.md``): one in-process daemon fans a campaign
    out across a 4-executor fleet. Floors: ``remote_completed_rate``
    (waves completed remotely / waves offered) and
    ``exactly_once_rate`` (live index rows / (live + superseded) after
    ingest) must both be exactly 1.0 -- a fleet that loses waves or
    double-lands rows is a correctness failure, not a slow run --
    and ``scaleout_rows_per_s`` (remote rows landed per wall second
    across the fleet) has a deliberately generous absolute floor with
    the regression rule doing the real work, like the service p99.
    Ceiling: ``ship_ingest_overhead_ms``, the coordinator-side cost of
    one sealed :data:`REMOTE_SEGMENT_ROWS`-row segment (append + seal
    + manifest verify + ledger/index ingest).

Floor gating compares *dimensionless ratios* (speedups, hit rates),
never wall seconds, so those gates are stable across CI hardware of
different absolute speeds; the raw seconds are recorded alongside for
human trend-reading. The one wall-clock gate -- the service p99
ceiling -- is deliberately generous in absolute terms for the same
reason, with the adjacent-entry regression rule doing the real work.

Usage::

    python tools/bench_trajectory.py run [--benchmark all|sweep|campaign|service]
    python tools/bench_trajectory.py check

``run`` measures (best-of-N wall clock, N=3) and appends one entry
keyed by the current commit SHA -- re-running on the same commit
replaces that commit's entry instead of duplicating it, so the append
is idempotent per commit. ``check`` validates both files against the
schema (malformed files are a hard error with a pointed message, not a
silent skip) and enforces the floors plus the 10% regression rule.
Exit codes: 0 OK, 1 gate failure, 2 malformed trajectory file.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

SCHEMA_VERSION = 1

#: benchmark family -> committed ledger file at the repo root.
TRAJECTORY_FILES = {
    "sweep": "BENCH_SWEEP.json",
    "campaign": "BENCH_CAMPAIGN.json",
    "service": "BENCH_SERVICE.json",
    "store": "BENCH_STORE.json",
    "remote": "BENCH_REMOTE.json",
}

#: Absolute floors on dimensionless ratio metrics (family -> metric -> min).
GATES = {
    "sweep": {"batch_speedup": 5.0},
    "campaign": {"wave_over_batch": 1.5, "warm_speedup": 10.0},
    "service": {"dedup_hit_rate": 1.0, "completed_rate": 1.0},
    "store": {"lookup_speedup_100k": 10.0},
    "remote": {"remote_completed_rate": 1.0, "exactly_once_rate": 1.0,
               "scaleout_rows_per_s": 25.0},
}

#: Absolute ceilings on lower-is-better metrics (family -> metric -> max).
#: Ceiling metrics also obey the regression rule in the *upward*
#: direction: the newest entry may exceed the previous one by at most
#: :data:`REGRESSION_TOLERANCE`.
CEILINGS = {
    "sweep": {},
    "campaign": {},
    "service": {"submit_p99_ms": 500.0},
    "store": {},
    "remote": {"ship_ingest_overhead_ms": 250.0},
}

#: Newest entry may lose at most this fraction vs. the previous entry.
REGRESSION_TOLERANCE = 0.10

#: Wall-clock measurements take the min over this many repetitions.
DEFAULT_REPEATS = 3

#: Problem-size exponent for the campaign family (matches the tier-2
#: ``benchmarks/bench_wave_campaign.py`` acceptance benchmark).
CAMPAIGN_SIZE_EXP = 26

#: Size stride for the sweep family (every other Fig. 2 problem size:
#: the full scalar sweep is accurate but slow for a per-PR gate).
SWEEP_SIZE_STEP = 2


class TrajectoryError(ValueError):
    """A trajectory file is malformed (bad JSON, schema, or entries)."""


class GateError(RuntimeError):
    """The newest entry fails a floor or regresses past tolerance."""


def _best_of(fn, repeats: int) -> float:
    """Min wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_sweep(repeats: int = DEFAULT_REPEATS) -> dict:
    """Time the Fig. 2 sweep through the scalar and batch engines."""
    from repro.experiments.fig2 import run_fig2

    run_fig2(size_step=8, batch=True)  # warm imports/caches off the clock
    scalar_s = _best_of(
        lambda: run_fig2(size_step=SWEEP_SIZE_STEP, batch=False), repeats
    )
    batch_s = _best_of(
        lambda: run_fig2(size_step=SWEEP_SIZE_STEP, batch=True), repeats
    )
    return {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "batch_speedup": scalar_s / batch_s,
    }


def measure_campaign(repeats: int = DEFAULT_REPEATS) -> dict:
    """Time the Table 5 grid: cold batch, cold wave, warm cache."""
    from repro.campaign import ResultStore, run_campaign
    from repro.experiments.table5 import table5_campaign_spec

    spec = table5_campaign_spec(CAMPAIGN_SIZE_EXP)
    run_campaign(spec)  # warm imports/caches off the clock

    cold_batch_s = _best_of(
        lambda: run_campaign(spec, store=ResultStore(None), wave=False), repeats
    )
    cold_wave_s = _best_of(
        lambda: run_campaign(spec, store=ResultStore(None)), repeats
    )
    store = ResultStore(None)
    run_campaign(spec, store=store)  # populate the cache once
    warm_s = _best_of(lambda: run_campaign(spec, store=store), repeats)
    return {
        "cold_batch_s": cold_batch_s,
        "cold_wave_s": cold_wave_s,
        "warm_s": warm_s,
        "wave_over_batch": cold_batch_s / cold_wave_s,
        "warm_speedup": cold_batch_s / warm_s,
    }


def measure_service(repeats: int = DEFAULT_REPEATS,
                    submissions: int = 1000, concurrency: int = 64) -> dict:
    """Drive the loadgen SLO harness against an in-process daemon.

    One load run is already 1000 submissions, so ``repeats`` is ignored
    (a single run is the sample, not a timing to take the min of). The
    run must itself pass the SLOs -- a lost or corrupted campaign is a
    measurement *error*, not a data point to record.
    """
    import tempfile

    from repro.service import start_background
    from repro.service.loadgen import LoadgenConfig, assert_slo, run_loadgen

    del repeats  # one 1000-submission run is the sample
    with tempfile.TemporaryDirectory() as tmp:
        with start_background(Path(tmp) / "svc", concurrent=8) as svc:
            config = LoadgenConfig(submissions=submissions,
                                   concurrency=concurrency)
            report = run_loadgen(svc.base_url, config)
    assert_slo(report)
    return {
        "submissions": report.submissions,
        "campaigns": report.campaigns,
        "throughput_rps": report.throughput_rps,
        "submit_p50_ms": report.submit_p50_ms,
        "submit_p99_ms": report.submit_p99_ms,
        "request_overhead_ms": report.request_overhead_ms,
        "dedup_hit_rate": report.dedup_hit_rate,
        "completed_rate": report.completed_rate,
    }


#: Object counts for the store family (tag -> synthetic store size).
STORE_SIZES = {"10k": 10_000, "100k": 100_000}

#: Sampled index lookups per indexed-path measurement.
STORE_LOOKUPS = 64


def _build_store(root: Path, count: int, fingerprint: str):
    """Populate a fresh indexed store with ``count`` synthetic points."""
    from repro.campaign.spec import PointSpec
    from repro.campaign.store import ResultStore

    store = ResultStore(root, fingerprint=fingerprint)
    cases = ("for_each", "reduce", "scan", "transform_reduce", "sort", "find")
    keys = []
    for i in range(count):
        point = PointSpec(
            machine="A", backend="GCC-TBB", case=cases[i % len(cases)],
            size_exp=10 + (i // len(cases)) % 20, threads=1 + i,
        )
        keys.append(store.put(
            point, {"status": "done", "seconds": 1e-3 * (i + 1), "error": None},
            wall_ms=float(i % 97),
        ))
    return store, keys


def measure_store(repeats: int = DEFAULT_REPEATS) -> dict:
    """Cold full-tree scan vs indexed lookups at 10k/100k objects.

    ``cold_scan_s_*`` is the v1 O(all objects) path (open, parse and
    checksum every record); ``indexed_s_*`` is the v2 path on a fresh
    store handle: an index-backed full count plus :data:`STORE_LOOKUPS`
    key lookups, reading only the compacted shard snapshots.
    ``lookup_speedup_*`` is their ratio -- the ISSUE 8 acceptance bound
    gates the 100k one at >= 10x. ``compact_rows_per_s`` is the
    compaction pass folding the 100k freshly-appended log rows into
    snapshots.
    """
    import tempfile

    from repro.campaign.store import ResultStore

    fingerprint = "bench-store-v1"
    out: dict[str, float] = {}
    for tag, count in STORE_SIZES.items():
        with tempfile.TemporaryDirectory(prefix=f"bench_store_{tag}_") as tmp:
            root = Path(tmp) / "cache"
            store, keys = _build_store(root, count, fingerprint)
            t0 = time.perf_counter()
            report = store.compact()
            compact_s = time.perf_counter() - t0
            assert report.rows_kept == count, "compaction dropped live rows"
            sample = keys[:: max(1, count // STORE_LOOKUPS)]

            def cold_scan():
                scan = ResultStore(root, fingerprint=fingerprint).scan()
                assert scan.objects == count and scan.errors == 0

            def indexed():
                fresh = ResultStore(root, fingerprint=fingerprint)
                assert fresh.count_objects() == count
                for key in sample:
                    assert fresh.index.lookup(key) is not None

            cold_s = _best_of(cold_scan, repeats)
            indexed_s = _best_of(indexed, repeats)
            out[f"cold_scan_s_{tag}"] = cold_s
            out[f"indexed_s_{tag}"] = indexed_s
            out[f"lookup_speedup_{tag}"] = cold_s / indexed_s
            if tag == "100k":
                out["compact_rows_per_s"] = count / compact_s
    return out


#: Fleet size for the remote family (matches the distributed harness).
REMOTE_FLEET = 4

#: Rows per segment in the ship+ingest overhead micro-measurement.
REMOTE_SEGMENT_ROWS = 64

#: Campaign fanned out across the fleet (same shape as the distributed
#: bit-identity harness, small enough to finish in seconds).
REMOTE_SPEC = {
    "name": "bench-remote",
    "machines": ["A"],
    "backends": ["GCC-SEQ", "GCC-TBB", "GCC-GNU"],
    "cases": ["reduce", "transform", "sort", "find", "copy", "merge"],
    "size_exps": [10, 11],
    "threads": [2, 4],
}


def _ship_ingest_ms(root: Path, repeats: int) -> float:
    """Coordinator-side cost of one sealed segment, best-of ``repeats``.

    Each repetition is end to end on fresh state: append
    :data:`REMOTE_SEGMENT_ROWS` rows to a private segment, seal it
    (manifest publish), then verify + ingest into an empty indexed
    store through the segment ledger -- i.e. exactly the per-segment
    work the shipping protocol adds over local execution, minus the
    HTTP hop (measured separately by the fleet campaign's throughput).
    """
    from repro.campaign.spec import PointSpec
    from repro.campaign.store import ResultStore
    from repro.remote import SegmentIngestor, SegmentWriter
    from repro.remote.segment import result_row

    rows = [
        result_row(
            f"t{i}",
            PointSpec(machine="A", backend="GCC-TBB", case="reduce",
                      size_exp=10 + i % 20, threads=1 + i).to_dict(),
            {"status": "done", "seconds": 1e-3 * (i + 1), "error": None},
        )
        for i in range(REMOTE_SEGMENT_ROWS)
    ]
    serial = iter(range(10_000))

    def one_segment():
        run = next(serial)
        writer = SegmentWriter(root / f"seg{run}", "bench", executor="ex-1",
                               epoch=1, wave="bench/w1")
        for row in rows:
            writer.append(row)
        manifest = writer.seal()
        store = ResultStore(root / f"cache{run}")
        ingestor = SegmentIngestor(store, root / f"ledger{run}.jsonl")
        report = ingestor.ingest(manifest, writer.rows())
        assert report.ingested == REMOTE_SEGMENT_ROWS, "ingest dropped rows"

    return _best_of(one_segment, repeats) * 1000.0


def measure_remote(repeats: int = DEFAULT_REPEATS) -> dict:
    """Fan a campaign across a 4-executor fleet; measure the protocol.

    The fleet campaign runs once (a multi-second end-to-end sample, not
    a timing to take the min of); ``repeats`` drives only the
    ship+ingest micro-measurement. The run must itself be correct --
    every offered wave completed remotely and the shared store holding
    exactly one live row per point -- before its numbers are recorded.
    """
    import tempfile
    import threading

    from repro.campaign.store import ResultStore
    from repro.remote import RemoteExecutor
    from repro.service import ServiceClient, start_background

    with tempfile.TemporaryDirectory(prefix="bench_remote_") as tmp:
        root = Path(tmp)
        with start_background(root / "svc", concurrent=2) as svc:
            executors = [
                RemoteExecutor(svc.base_url, root / f"ex{i}",
                               host=f"bench-host-{i}", poll=0.005)
                for i in range(REMOTE_FLEET)
            ]
            for executor in executors:
                executor.register()  # all live before the campaign starts
            stop = threading.Event()
            threads = [
                threading.Thread(
                    target=executor.run,
                    kwargs={"max_idle": 60.0, "should_stop": stop.is_set},
                    daemon=True)
                for executor in executors
            ]
            for thread in threads:
                thread.start()
            client = ServiceClient(svc.base_url, api_key="bench-remote")
            t0 = time.perf_counter()
            done = client.wait(client.submit(REMOTE_SPEC)["id"], timeout=120)
            wall_s = time.perf_counter() - t0
            assert done["state"] == "complete", done
            metrics = client.metrics()
            stop.set()
            for thread in threads:
                thread.join(timeout=10)

        offered = metrics["service_remote_waves_offered"]
        completed = metrics["service_remote_waves_completed"]
        assert offered > 0, "no waves went remote -- fleet never engaged"
        remote_rows = sum(executor.rows for executor in executors)
        assert remote_rows > 0, "executors computed nothing"

        store = ResultStore(root / "svc" / "cache")
        superseded = store.compact().superseded
        live_rows = store.index.count() if store.index is not None else 0

        overhead_ms = _ship_ingest_ms(root / "micro", repeats)

    return {
        "fleet": REMOTE_FLEET,
        "remote_rows": remote_rows,
        "remote_wall_s": wall_s,
        "remote_completed_rate": completed / offered,
        "exactly_once_rate": live_rows / (live_rows + superseded),
        "scaleout_rows_per_s": remote_rows / wall_s,
        "ship_ingest_overhead_ms": overhead_ms,
    }


MEASURES = {"sweep": measure_sweep, "campaign": measure_campaign,
            "service": measure_service, "store": measure_store,
            "remote": measure_remote}


def current_commit() -> str:
    """The HEAD SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: Path, benchmark: str) -> dict:
    """Parse and validate one ledger; a missing file is an empty ledger."""
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "benchmark": benchmark, "entries": []}
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TrajectoryError(
            f"{path.name}: not valid JSON ({exc}); fix or delete the file "
            f"and re-run 'bench_trajectory.py run'"
        ) from None
    validate_trajectory(data, benchmark, name=path.name)
    return data


def validate_trajectory(data, benchmark: str, *, name: str = "trajectory") -> None:
    """Raise :class:`TrajectoryError` unless ``data`` matches the schema."""
    if not isinstance(data, dict):
        raise TrajectoryError(f"{name}: top level must be an object, "
                              f"got {type(data).__name__}")
    if data.get("schema") != SCHEMA_VERSION:
        raise TrajectoryError(
            f"{name}: unsupported schema {data.get('schema')!r} "
            f"(this tool writes schema {SCHEMA_VERSION})"
        )
    if data.get("benchmark") != benchmark:
        raise TrajectoryError(
            f"{name}: benchmark is {data.get('benchmark')!r}, "
            f"expected {benchmark!r}"
        )
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise TrajectoryError(f"{name}: 'entries' must be a list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise TrajectoryError(f"{name}: entries[{i}] must be an object")
        for key in ("commit", "recorded", "metrics"):
            if key not in entry:
                raise TrajectoryError(
                    f"{name}: entries[{i}] is missing {key!r}"
                )
        metrics = entry["metrics"]
        if not isinstance(metrics, dict):
            raise TrajectoryError(f"{name}: entries[{i}].metrics must be "
                                  f"an object")
        for metric in (*GATES[benchmark], *CEILINGS[benchmark]):
            value = metrics.get(metric)
            if not isinstance(value, (int, float)):
                raise TrajectoryError(
                    f"{name}: entries[{i}].metrics.{metric} must be a "
                    f"number, got {value!r}"
                )


def append_entry(path: Path, benchmark: str, metrics: dict,
                 commit: str, recorded: str) -> dict:
    """Append (or replace, for a repeated commit) one trajectory entry."""
    data = load_trajectory(path, benchmark)
    entries = [e for e in data["entries"] if e["commit"] != commit]
    entries.append({"commit": commit, "recorded": recorded,
                    "metrics": metrics})
    data["entries"] = entries
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def check_trajectory(path: Path, benchmark: str) -> list[str]:
    """Validate one ledger and enforce floors + the regression rule.

    Returns human-readable OK lines; raises :class:`GateError` on any
    violation and :class:`TrajectoryError` on a malformed file (a
    missing or empty ledger is also a gate failure: the PR forgot to
    run the trajectory).
    """
    data = load_trajectory(path, benchmark)
    entries = data["entries"]
    if not entries:
        raise GateError(
            f"{path.name}: no entries -- run "
            f"'python tools/bench_trajectory.py run --benchmark {benchmark}'"
        )
    last = entries[-1]
    prev = entries[-2] if len(entries) > 1 else None
    lines = []
    for metric, floor in GATES[benchmark].items():
        value = last["metrics"][metric]
        if value < floor:
            raise GateError(
                f"{path.name}: {metric} = {value:.3f} is below the "
                f"floor {floor:.3f} (commit {last['commit'][:12]})"
            )
        if prev is not None:
            baseline = prev["metrics"][metric]
            allowed = baseline * (1.0 - REGRESSION_TOLERANCE)
            if value < allowed:
                raise GateError(
                    f"{path.name}: {metric} regressed {value:.3f} < "
                    f"{allowed:.3f} (= {baseline:.3f} from commit "
                    f"{prev['commit'][:12]} minus "
                    f"{REGRESSION_TOLERANCE:.0%} tolerance)"
                )
            lines.append(f"{path.name}: {metric} = {value:.3f} "
                         f"(floor {floor}, prev {baseline:.3f})")
        else:
            lines.append(f"{path.name}: {metric} = {value:.3f} "
                         f"(floor {floor}, first entry)")
    for metric, ceiling in CEILINGS[benchmark].items():
        value = last["metrics"][metric]
        if value > ceiling:
            raise GateError(
                f"{path.name}: {metric} = {value:.3f} is over the "
                f"ceiling {ceiling:.3f} (commit {last['commit'][:12]})"
            )
        if prev is not None:
            baseline = prev["metrics"][metric]
            allowed = baseline * (1.0 + REGRESSION_TOLERANCE)
            if value > allowed:
                raise GateError(
                    f"{path.name}: {metric} regressed {value:.3f} > "
                    f"{allowed:.3f} (= {baseline:.3f} from commit "
                    f"{prev['commit'][:12]} plus "
                    f"{REGRESSION_TOLERANCE:.0%} tolerance)"
                )
            lines.append(f"{path.name}: {metric} = {value:.3f} "
                         f"(ceiling {ceiling}, prev {baseline:.3f})")
        else:
            lines.append(f"{path.name}: {metric} = {value:.3f} "
                         f"(ceiling {ceiling}, first entry)")
    return lines


def _cmd_run(args) -> int:
    root = Path(args.root)
    families = list(TRAJECTORY_FILES) if args.benchmark == "all" \
        else [args.benchmark]
    commit = args.commit or current_commit()
    recorded = args.recorded or datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    for family in families:
        print(f"[{family}] measuring (best of {args.repeats})...", flush=True)
        metrics = MEASURES[family](repeats=args.repeats)
        path = root / TRAJECTORY_FILES[family]
        append_entry(path, family, metrics, commit, recorded)
        rendered = ", ".join(f"{k}={v:.4g}" for k, v in sorted(metrics.items()))
        print(f"[{family}] {path.name} @ {commit[:12]}: {rendered}")
    return 0


def _cmd_check(args) -> int:
    root = Path(args.root)
    try:
        for family, name in TRAJECTORY_FILES.items():
            for line in check_trajectory(root / name, family):
                print(line)
    except TrajectoryError as exc:
        print(f"MALFORMED: {exc}", file=sys.stderr)
        return 2
    except GateError as exc:
        print(f"GATE FAILED: {exc}", file=sys.stderr)
        return 1
    print("benchmark trajectory OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure, append, and gate the benchmark trajectory "
                    "(BENCH_SWEEP.json / BENCH_CAMPAIGN.json)."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="measure and append one entry per "
                                       "family (idempotent per commit)")
    run_p.add_argument("--benchmark", choices=("all", *TRAJECTORY_FILES),
                       default="all")
    run_p.add_argument("--commit", default=None,
                       help="entry key (default: git HEAD SHA)")
    run_p.add_argument("--recorded", default=None,
                       help="ISO timestamp (default: now, UTC)")
    run_p.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                       help="wall-clock repetitions; the min is recorded")
    run_p.add_argument("--root", default=str(REPO_ROOT),
                       help="directory holding the BENCH_*.json ledgers")
    run_p.set_defaults(func=_cmd_run)

    check_p = sub.add_parser("check", help="validate both ledgers and "
                                           "enforce floors + regression rule")
    check_p.add_argument("--root", default=str(REPO_ROOT))
    check_p.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
