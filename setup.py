"""Legacy setup shim.

The target environment is offline (no wheel package, setuptools 65.5), so
``pip install -e .`` must use the legacy ``setup.py develop`` path instead
of PEP 660 editable wheels. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
