"""Extending the suite: a custom machine model and a custom benchmark.

    python examples/custom_machine_and_algorithm.py

The paper pitches pSTL-Bench as *extensible* ("the benchmark suite can
therefore easily be extended and adjusted to specific performance
requirements", Section 3.2). This example:

1. defines a new machine model (a hypothetical 48-core, 4-NUMA-node box);
2. registers it under a name;
3. defines a custom element operation with a declared cost (a 12-FLOP
   polynomial) and benchmarks it through the standard harness;
4. runs a thread sweep to find the efficient core count for it.
"""

import numpy as np

from repro import ExecutionContext, pstl
from repro.backends import get_backend
from repro.machines import CpuMachine, Topology, register_machine
from repro.machines.cache import CacheHierarchy, CacheLevel
from repro.machines.registry import machine_names
from repro.suite.sweeps import thread_counts
from repro.types import FLOAT64
from repro.util.units import GIB


def build_custom_machine() -> CpuMachine:
    """A hypothetical 48-core machine with 4 NUMA domains."""
    return CpuMachine(
        name="CustomBox",
        arch="custom",
        frequency_hz=2.6e9,
        ipc=2.1,
        simd_width_bits=256,
        topology=Topology.uniform(
            sockets=2, nodes_per_socket=2, cores_per_node=12, memory_per_node=32 * GIB
        ),
        caches=CacheHierarchy(
            (
                CacheLevel(1, 32 * 1024, 1, 150e9),
                CacheLevel(2, 1024 * 1024, 1, 75e9),
                CacheLevel(3, 32 * 1024 * 1024, 12, 40e9),
            )
        ),
        stream_bw_1core=15e9,
        stream_bw_allcores=180e9,
        interconnect_bw=45e9,
        seq_turbo_factor=1.05,
    )


def main() -> None:
    if "custombox" not in machine_names():
        register_machine(build_custom_machine, "custombox")

    # A user kernel: Horner evaluation of a degree-6 polynomial (12 FLOPs).
    coeffs = [0.5, -1.0, 0.25, 2.0, -0.75, 1.5, 0.1]

    def horner(values: np.ndarray) -> np.ndarray:
        acc = np.full_like(values, coeffs[0])
        for c in coeffs[1:]:
            acc = acc * values + c
        return acc

    poly = pstl.ElementOp(
        "poly6", instr_per_elem=3.0, fp_per_elem=12.0, apply=horner
    )

    from repro.machines import get_machine

    machine = get_machine("custombox")
    backend = get_backend("gcc-tbb")

    # Correctness first (run mode, small array).
    ctx = ExecutionContext(machine, backend, threads=8, mode="run")
    arr = ctx.array_from(np.linspace(0, 1, 1000), FLOAT64)
    reference = horner(np.linspace(0, 1, 1000))
    pstl.for_each(ctx, arr, poly)
    assert np.allclose(arr.data, reference), "custom kernel mis-applied"
    print("custom kernel verified against NumPy reference")

    # Then scalability (model mode, paper-scale array).
    n = 1 << 28
    seq = ExecutionContext(machine, get_backend("gcc-seq"), threads=1)
    t_seq = pstl.for_each(seq, seq.allocate(n, FLOAT64), poly).seconds

    print(f"\npoly6 for_each on {machine.name}, n=2^28 (seq: {t_seq:.3f}s):")
    print(f"{'threads':>8} {'time (s)':>10} {'speedup':>8} {'efficiency':>10}")
    efficient = 1
    for t in thread_counts(machine.total_cores):
        par = ExecutionContext(machine, backend, threads=t)
        seconds = pstl.for_each(par, par.allocate(n, FLOAT64), poly).seconds
        speedup = t_seq / seconds
        eff = speedup / t
        if eff >= 0.7:
            efficient = t
        print(f"{t:>8} {seconds:>10.4f} {speedup:>8.1f} {eff:>10.0%}")
    print(
        f"\nTable-6-style answer: use at most {efficient} threads for this "
        "kernel on this machine (>= 70 % efficiency)."
    )


if __name__ == "__main__":
    main()
