"""Table 5 as a campaign: cold run, warm cache, interrupt + resume.

    python examples/campaign_table5.py

Walks the whole `repro.campaign` loop on the paper's Table 5 grid
(90 cells + 18 shared sequential baselines, 9 of them N/A by
construction):

1. a **cold run** into a campaign directory executes every point and
   journals it;
2. a **warm re-run** of the same spec is served entirely from the
   content-addressed cache -- zero simulator invocations, bit-identical
   values;
3. a simulated **interruption** (the journal cut in half, the cache
   wiped) resumes from the journal and recomputes only the missing
   tasks.

Uses a small problem size to finish in seconds; the paper-scale grid is
``table5_campaign_spec(30)`` (or ``pstl-campaign run --spec table5``).
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.campaign import run_campaign, speedup_grid
from repro.experiments.table5 import table5_campaign_spec, table5_result

SIZE_EXP = 16  # 2^16 elements; the paper's grid uses 2^30


def main() -> None:
    spec = table5_campaign_spec(SIZE_EXP)
    workdir = Path(tempfile.mkdtemp(prefix="campaign_table5_"))
    cdir = workdir / "t5"
    try:
        # --- 1. cold run --------------------------------------------------
        t0 = time.perf_counter()
        cold = run_campaign(spec, campaign_dir=cdir)
        cold_wall = time.perf_counter() - t0
        print(f"cold: {cold.stats.summary()}  ({cold_wall:.2f}s wall)")

        # --- 2. warm re-run: pure cache ----------------------------------
        t0 = time.perf_counter()
        warm = run_campaign(spec, campaign_dir=cdir, resume=True)
        warm_wall = time.perf_counter() - t0
        print(f"warm: {warm.stats.summary()}  ({warm_wall:.2f}s wall)")
        assert warm.stats.executed == 0
        assert speedup_grid(warm) == speedup_grid(cold)  # bit-identical

        # --- 3. interrupt + resume ---------------------------------------
        journal = cdir / "journal.jsonl"
        lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
        journal.write_text("".join(lines[: len(lines) // 2]), encoding="utf-8")
        shutil.rmtree(cdir / "cache")  # make the cut tasks truly recompute
        resumed = run_campaign(spec, campaign_dir=cdir, resume=True)
        print(f"resume after interrupt: {resumed.stats.summary()}")
        assert speedup_grid(resumed) == speedup_grid(cold)

        # --- the rendered table ------------------------------------------
        print()
        print(table5_result(resumed, SIZE_EXP).rendered)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
