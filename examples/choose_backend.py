"""Backend advisor: the paper's motivating use case.

    python examples/choose_backend.py [machine]

"Given multiple existing implementations of the parallel algorithms, a
systematic, quantitative performance comparison is essential for choosing
the appropriate implementation" (paper abstract). This example sweeps all
five parallel backends over the headline algorithms on one machine and
prints a recommendation per algorithm plus an overall ranking.
"""

import sys

from repro.backends import PARALLEL_CPU_BACKENDS
from repro.errors import UnsupportedOperationError
from repro.experiments.common import make_ctx, seq_baseline_seconds
from repro.suite.cases import HEADLINE_CASES, get_case
from repro.suite.wrappers import measure_case
from repro.util.stats import geomean
from repro.util.tables import TextTable


def main(machine: str = "A", size_exp: int = 28) -> None:
    n = 1 << size_exp
    table = TextTable(
        headers=["Algorithm", *PARALLEL_CPU_BACKENDS, "Recommendation"],
        title=f"Speedup vs sequential on Mach {machine.upper()} (n=2^{size_exp})",
    )
    per_backend: dict[str, list[float]] = {b: [] for b in PARALLEL_CPU_BACKENDS}

    for case_name in HEADLINE_CASES:
        base = seq_baseline_seconds(machine, case_name, n)
        row: dict[str, float | None] = {}
        for backend in PARALLEL_CPU_BACKENDS:
            try:
                t = measure_case(get_case(case_name), make_ctx(machine, backend), n)
                row[backend] = base / t
                per_backend[backend].append(base / t)
            except UnsupportedOperationError:
                row[backend] = None
        best = max((b for b in row if row[b] is not None), key=lambda b: row[b])
        table.add_row(
            [
                case_name,
                *(f"{row[b]:.1f}x" if row[b] is not None else "N/A" for b in PARALLEL_CPU_BACKENDS),
                best,
            ]
        )

    print(table.render())
    overall = {
        b: geomean(v) for b, v in per_backend.items() if v
    }
    ranked = sorted(overall, key=overall.get, reverse=True)
    print("\nOverall ranking (geomean speedup):")
    for b in ranked:
        print(f"  {b:8s} {overall[b]:5.1f}x")
    print(
        "\nNote: the winner depends on the workload -- exactly the paper's "
        "point. GNU dominates sort, NVC-OMP dominates cheap maps, TBB is "
        "the best all-rounder, and nobody should use a scan on NVC-OMP."
    )


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["A"]))
