"""Campaigns as a service: submit, stream, dedup, warm-cache speedup.

    python examples/service_quickstart.py

Boots the campaign daemon in-process (`start_background`), then walks
the whole client loop against it on the paper's Table 5 grid:

1. a **cold submission** (202) executes the grid through the wave-fused
   campaign pipeline and is polled to completion, streaming journal
   events incrementally via the byte-offset cursor;
2. a **duplicate submission** of the same spec (200) collapses onto the
   existing campaign -- content-derived ids are the dedup;
3. a **warm submission** (same grid, new name) is a new campaign that
   finishes entirely on the shared content-addressed store -- zero
   points executed -- and its wall time shows the service-side warm
   speedup;
4. `/metrics` counters and the client's request-overhead split
   (`X-Handle-Ms`) summarise what the daemon did.

Uses a small problem size to finish in seconds; `pstl-service serve`
runs the same daemon in the foreground for real deployments.
"""

import dataclasses
import shutil
import tempfile
import time
from pathlib import Path

from repro.experiments.table5 import table5_campaign_spec
from repro.service import ServiceClient, start_background

SIZE_EXP = 16  # 2^16 elements; the paper's grid uses 2^30


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="service_quickstart_"))
    try:
        with start_background(root / "svc", concurrent=2) as svc:
            client = ServiceClient(svc.base_url, api_key="quickstart")
            print(f"daemon listening at {svc.base_url}")

            # --- 1. cold submission, streamed to completion --------------
            spec = table5_campaign_spec(SIZE_EXP)
            t0 = time.perf_counter()
            doc = client.submit(spec.to_dict())
            cid = doc["id"]
            print(f"submitted {cid} ({doc['points']} points, "
                  f"HTTP {doc['_status']})")

            offset, events = 0, 0
            while True:
                feed = client.events(cid, offset=offset)
                events += len(feed["events"])
                offset = feed["next_offset"]
                if feed["state"] in ("complete", "broken", "interrupted"):
                    break
                time.sleep(0.05)
            cold_wall = time.perf_counter() - t0
            done = client.status(cid)
            print(f"cold: {done['stats']}  ({events} journal events "
                  f"streamed, {cold_wall:.2f}s wall)")
            assert done["state"] == "complete"

            rows = client.results(cid)["rows"]
            assert len(rows) == done["points"]

            # --- 2. duplicate submission: dedup ---------------------------
            dup = client.submit(spec.to_dict())
            assert dup["deduped"] and dup["id"] == cid
            print(f"duplicate: HTTP {dup['_status']}, same campaign {cid}")

            # --- 3. warm grid under a new name: pure cache hits -----------
            warm_spec = dataclasses.replace(table5_campaign_spec(SIZE_EXP),
                                            name="table5-warm")
            t0 = time.perf_counter()
            warm = client.wait(client.submit(warm_spec.to_dict())["id"])
            warm_wall = time.perf_counter() - t0
            print(f"warm: {warm['stats']}  ({warm_wall:.2f}s wall, "
                  f"{cold_wall / max(warm_wall, 1e-9):.1f}x over cold)")
            assert "0 executed" in warm["stats"]

            # --- 4. what the daemon saw -----------------------------------
            metrics = client.metrics()
            print(f"metrics: {metrics['service_submitted']:.0f} submitted, "
                  f"{metrics['service_deduped']:.0f} deduped, "
                  f"{metrics['service_completed']:.0f} completed, "
                  f"{metrics['service_store_objects']:.0f} store objects")
            print(f"client: {client.requests} requests, "
                  f"{client.overhead_ms():.2f}ms mean request overhead")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
