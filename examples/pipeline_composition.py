"""Composing parallel STL algorithms into a pipeline.

    python examples/pipeline_composition.py

A realistic analytics pipeline over one data set -- the kind of code the
parallel STL is meant to host end to end:

1. ``transform``          normalise raw samples
2. ``count_if``           count outliers
3. ``remove_if``          drop them (stable compaction)
4. ``sort``               order the survivors
5. ``unique``             deduplicate
6. ``inclusive_scan``     running totals
7. ``reduce``             grand total

The example runs the pipeline twice -- on GCC-TBB and on GCC-GNU -- and
prints a per-stage time breakdown, illustrating the paper's central
point: the best backend differs per algorithm (GNU wins the sort stage,
TBB wins the scan stage GNU cannot even run).
"""

import numpy as np

from repro import ExecutionContext, pstl
from repro.backends import get_backend
from repro.errors import UnsupportedOperationError
from repro.machines import get_machine
from repro.types import FLOAT64
from repro.util.tables import TextTable
from repro.util.units import format_seconds

N = 200_000
OUTLIER = 3.0


def run_pipeline(ctx: ExecutionContext) -> tuple[dict, float]:
    """Run all stages; returns per-stage simulated seconds and the total."""
    rng = np.random.default_rng(42)
    raw = rng.normal(loc=10.0, scale=2.0, size=N)
    arr = ctx.array_from(raw, FLOAT64)
    stages: dict[str, float] = {}

    # 1. normalise to z-scores (the op declares its cost: 2 FLOPs/elem)
    mean, std = float(np.mean(raw)), float(np.std(raw))
    zscore = pstl.ElementOp(
        "zscore", instr_per_elem=2.0, fp_per_elem=2.0,
        apply=lambda v: (v - mean) / std,
    )
    out = ctx.allocate(N, FLOAT64)
    stages["transform"] = pstl.transform(ctx, arr, out, zscore).seconds

    # 2. count outliers beyond 3 sigma
    outliers = pstl.count_if(ctx, out, pstl.greater_than(OUTLIER, selectivity=0.001))
    stages["count_if"] = outliers.seconds

    # 3. drop them
    removed = pstl.remove_if(ctx, out, pstl.greater_than(OUTLIER, selectivity=0.001))
    kept = removed.value
    stages["remove_if"] = removed.seconds

    # 4-5. sort + dedupe (working prefix only)
    work = ctx.array_from(out.data[:kept], FLOAT64)
    stages["sort"] = pstl.sort(ctx, work).seconds
    uniq = pstl.unique(ctx, work)
    stages["unique"] = uniq.seconds

    # 6. running totals
    try:
        stages["inclusive_scan"] = pstl.inclusive_scan(ctx, work).seconds
    except UnsupportedOperationError:
        stages["inclusive_scan"] = float("nan")

    # 7. grand total
    total = pstl.reduce(ctx, work)
    stages["reduce"] = total.seconds

    assert outliers.value is not None and kept + outliers.value == N
    return stages, sum(v for v in stages.values() if v == v)


def main() -> None:
    machine = get_machine("A")
    backends = ["gcc-tbb", "gcc-gnu"]
    columns: dict[str, dict[str, float]] = {}
    totals: dict[str, float] = {}
    for name in backends:
        ctx = ExecutionContext(machine, get_backend(name), threads=16, mode="run")
        columns[name], totals[name] = run_pipeline(ctx)

    stages = list(columns[backends[0]])
    table = TextTable(
        headers=["Stage", *(b.upper() for b in backends)],
        title=f"Pipeline over {N} samples on {machine.name}, 16 threads",
    )
    for stage in stages:
        table.add_row(
            [
                stage,
                *(
                    "N/A"
                    if columns[b][stage] != columns[b][stage]  # NaN
                    else format_seconds(columns[b][stage])
                    for b in backends
                ),
            ]
        )
    table.add_row(["TOTAL", *(format_seconds(totals[b]) for b in backends)])
    print(table.render())
    print(
        "\nNote GNU's missing inclusive_scan (the paper's Table 5 'N/A') and "
        "its faster sort stage -- per-stage backend choice is the point."
    )


if __name__ == "__main__":
    main()
