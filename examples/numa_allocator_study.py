"""NUMA allocator study: reproduce the paper's Fig. 1 logic on any machine.

    python examples/numa_allocator_study.py [machine] [threads]

Compares the default serial first-touch allocator against pSTL-Bench's
parallel first-touch allocator (and, as an extra ablation the paper does
not run, a page-interleaving policy) across the headline algorithms.
"""

import sys

from repro.errors import UnsupportedOperationError
from repro.experiments.common import make_ctx, paper_size
from repro.machines import get_machine
from repro.memory.allocators import (
    DefaultAllocator,
    InterleavedAllocator,
    ParallelFirstTouchAllocator,
)
from repro.suite.cases import HEADLINE_CASES, get_case
from repro.suite.wrappers import measure_case
from repro.util.tables import TextTable

ALLOCATORS = [
    ("default", DefaultAllocator()),
    ("first-touch", ParallelFirstTouchAllocator()),
    ("interleave", InterleavedAllocator()),
]


def main(machine_name: str = "A", threads: int | None = None) -> None:
    machine = get_machine(machine_name)
    threads = threads or machine.total_cores
    n = paper_size()
    table = TextTable(
        headers=["Algorithm", *(name for name, _ in ALLOCATORS), "best"],
        title=(
            f"GCC-TBB times on {machine.name}, {threads} threads, n=2^30 "
            "(lower is better)"
        ),
    )
    for case_name in HEADLINE_CASES:
        row = {}
        for alloc_name, allocator in ALLOCATORS:
            ctx = make_ctx(machine_name, "gcc-tbb", threads=threads, allocator=allocator)
            try:
                row[alloc_name] = measure_case(get_case(case_name), ctx, n)
            except UnsupportedOperationError:
                row[alloc_name] = None
        best = min((k for k in row if row[k] is not None), key=lambda k: row[k])
        table.add_row(
            [
                case_name,
                *(
                    f"{row[k]:.3f}s" if row[k] is not None else "N/A"
                    for k, _ in ALLOCATORS
                ),
                best,
            ]
        )
    print(table.render())
    print(
        "\nPaper Section 5.1: the custom allocator pays off for the "
        "bandwidth-bound map/reduce kernels (up to +63 %), does nothing "
        "for compute-bound work, and is the wrong choice for latency-"
        "sensitive prefix algorithms (find / inclusive_scan)."
    )


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "A", int(args[1]) if len(args) > 1 else None)
