"""The three engine tiers on one campaign: wave vs. batch vs. scalar.

    python examples/wave_campaign.py

Runs the paper's Table 5 grid (90 cells + 18 shared sequential
baselines) through each of the executor's three tiers
(docs/PERFORMANCE.md):

1. **wave-fused** (the default): every eligible point of a campaign
   wave packed into one ``repro.sim.wave`` struct-of-arrays program,
   shared baselines computed once per cell;
2. **per-curve batch** (``wave=False``, the CLI's ``--no-wave``): one
   vectorized call per curve;
3. **scalar** (``batch=False``, the CLI's ``--no-batch``): one Python
   simulation per point.

It then proves the contract that makes the default safe -- all three
grids are *bit-identical* -- prints the wall-clock ratios, and captures
a trace showing the ``wave.fuse`` / ``wave.execute`` spans.

Uses a large problem size so simulator work dominates: wave over batch
is typically ~2x here and gated at >=1.5x by
``benchmarks/bench_wave_campaign.py`` and ``tools/bench_trajectory.py``.
"""

import time

from repro.campaign import ResultStore, run_campaign, speedup_grid
from repro.experiments.table5 import table5_campaign_spec
from repro.trace import Tracer, use_tracer

SIZE_EXP = 26  # 2^26 elements; big enough for engine work to dominate


def _timed(label: str, **kwargs):
    spec = table5_campaign_spec(SIZE_EXP)
    t0 = time.perf_counter()
    outcome = run_campaign(spec, store=ResultStore(None), **kwargs)
    wall = time.perf_counter() - t0
    print(f"{label:>16}: {wall * 1e3:7.1f} ms  ({outcome.stats.summary()})")
    return outcome, wall


def main() -> None:
    # warm imports and shared caches so the comparison is engine-vs-engine
    run_campaign(table5_campaign_spec(SIZE_EXP))

    wave, wave_wall = _timed("wave-fused")
    batch, batch_wall = _timed("per-curve batch", wave=False)
    scalar, scalar_wall = _timed("scalar", batch=False)

    print(f"\nwave over batch : {batch_wall / wave_wall:5.2f}x")
    print(f"batch over scalar: {scalar_wall / batch_wall:5.2f}x")
    print(f"wave over scalar : {scalar_wall / wave_wall:5.2f}x")

    # the contract: three executors, one set of bits
    assert speedup_grid(wave) == speedup_grid(batch) == speedup_grid(scalar)
    for tid, result in wave.results.items():
        assert result.seconds == batch.results[tid].seconds
        assert result.seconds == scalar.results[tid].seconds
    print("\nall three grids are bit-identical")

    # the observability story: two spans per fused wave, on track "wave"
    with use_tracer(Tracer()) as tracer:
        run_campaign(table5_campaign_spec(12))
    fuses = [s for s in tracer.spans if s.name == "wave.fuse"]
    executes = [s for s in tracer.spans if s.name == "wave.execute"]
    assert fuses and len(fuses) == len(executes)
    fused_points = sum(s.attributes["points"] for s in fuses)
    print(f"traced run: {len(fuses)} fused wave(s) covering "
          f"{fused_points} points, "
          f"{sum(s.duration for s in executes):.4f} simulated seconds")


if __name__ == "__main__":
    main()
