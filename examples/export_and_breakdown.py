"""Exporting results and explaining costs.

    python examples/export_and_breakdown.py

Two downstream-facing features of the analysis layer:

1. **JSON export** -- regenerate a paper artifact (Fig. 1 here) and dump
   it as JSON for external plotting;
2. **phase breakdown** -- ask "where did the time go?" for individual
   calls, comparing a memory-bound and a compute-bound configuration and
   a GPU call whose time is mostly unified-memory migration.
"""

from repro import ExecutionContext, pstl
from repro.analysis.breakdown import render_breakdown
from repro.analysis.export import dump_json, experiment_to_dict
from repro.backends import get_backend
from repro.experiments.fig1 import run_fig1
from repro.machines import get_machine
from repro.sim.gpu import GpuExecution
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT32, FLOAT64


def main() -> None:
    # 1. Fig. 1 as JSON (reduced size keeps the example snappy).
    fig1 = run_fig1(size_exp=26)
    text = dump_json(experiment_to_dict(fig1))
    print("Fig. 1 as JSON (first lines):")
    print("\n".join(text.splitlines()[:8]), "\n  ...\n")

    # 2a. Memory-bound CPU call: the map phase is bandwidth-limited.
    ctx = ExecutionContext(get_machine("A"), get_backend("gcc-tbb"), threads=32)
    arr = ctx.allocate(1 << 28, FLOAT64)
    report = pstl.for_each(ctx, arr, listing1_kernel(1)).report
    print(render_breakdown(report, title="for_each k_it=1 (memory-bound)"))
    print()

    # 2b. Compute-bound CPU call: same algorithm, heavy kernel.
    report = pstl.for_each(ctx, arr, listing1_kernel(1000)).report
    print(render_breakdown(report, title="for_each k_it=1000 (compute-bound)"))
    print()

    # 2c. GPU call with a forced device-to-host transfer: migration rules.
    gpu_ctx = ExecutionContext(
        get_machine("D"),
        get_backend("nvc-cuda"),
        gpu_options=GpuExecution(transfer_back=True),
    )
    garr = gpu_ctx.allocate(1 << 26, FLOAT32)
    report = pstl.reduce(gpu_ctx, garr).report
    print(render_breakdown(report, title="GPU reduce with forced D2H (Fig. 9a)"))


if __name__ == "__main__":
    main()
