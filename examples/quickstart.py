"""Quickstart: run a parallel STL call on a modeled machine, both modes.

    python examples/quickstart.py

Shows the two ways to use the library:

1. **run mode** -- real NumPy data, real results, simulated timing;
2. **model mode** -- no data materialised, paper-scale sizes, same cost
   model (this is how the 2^30-element figures are produced).
"""

import numpy as np

from repro import ExecutionContext, pstl
from repro.backends import get_backend
from repro.machines import get_machine
from repro.suite.kernels import listing1_kernel
from repro.types import FLOAT64
from repro.util.units import format_seconds


def main() -> None:
    machine = get_machine("A")  # 32-core Skylake, Table 2 of the paper
    backend = get_backend("gcc-tbb")

    # --- run mode: compute something real ---------------------------------
    ctx = ExecutionContext(machine, backend, threads=8, mode="run")
    arr = ctx.array_from(np.arange(1, 100_001, dtype=np.float64), FLOAT64)

    total = pstl.reduce(ctx, arr)
    print(f"reduce(1..100000) = {total.value:.0f}  "
          f"(simulated {format_seconds(total.seconds)})")

    hit = pstl.find(ctx, arr, 77_777.0)
    print(f"find(77777) -> index {hit.value}  "
          f"(simulated {format_seconds(hit.seconds)})")

    pstl.sort(ctx, arr)
    print(f"sort: is_sorted = {pstl.is_sorted(ctx, arr).value}")

    # --- model mode: paper-scale without allocating 8 GiB -----------------
    big = ctx.with_(mode="model", threads=32)
    seq = ExecutionContext(machine, get_backend("gcc-seq"), threads=1)

    n = 1 << 30
    kernel = listing1_kernel(k_it=1)
    t_par = pstl.for_each(big, big.allocate(n, FLOAT64), kernel).seconds
    t_seq = pstl.for_each(seq, seq.allocate(n, FLOAT64), kernel).seconds
    print(
        f"\nfor_each(k_it=1), n=2^30 on {machine.name}: "
        f"seq {format_seconds(t_seq)}, 32-thread TBB {format_seconds(t_par)} "
        f"-> speedup {t_seq / t_par:.1f}x (paper Table 5: 14.2x)"
    )


if __name__ == "__main__":
    main()
