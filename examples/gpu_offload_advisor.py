"""GPU offload advisor: when is -stdpar=gpu worth it? (paper Section 5.8)

    python examples/gpu_offload_advisor.py

For a grid of problem sizes and arithmetic intensities, compares the host
CPU (sequential and parallel) against the Tesla T4 and Ampere A2 under
two usage patterns: data bouncing back to the host after every call, and
chained device-resident calls. Prints the winning configuration per cell
-- the decision table the paper's conclusions describe in prose.
"""

from repro.experiments.common import make_ctx
from repro.experiments.fig8 import gpu_ctx
from repro.suite.cases import _case_for_each
from repro.suite.wrappers import measure_case, run_case
from repro.types import FLOAT32
from repro.util.tables import TextTable


def _chained_gpu_seconds(machine: str, case, n: int) -> float:
    """Steady-state per-call time with device-resident data."""
    ctx = gpu_ctx(machine, transfer_back=False)
    return run_case(case, ctx, n, FLOAT32, min_time=2.0).mean_time


def main() -> None:
    sizes = [1 << e for e in (12, 16, 20, 24, 28)]
    intensities = [1, 100, 10_000]

    for pattern in ("bounce", "chained"):
        table = TextTable(
            headers=["n \\ k_it", *(str(k) for k in intensities)],
            title=(
                f"Winner per cell, float for_each, pattern={pattern} "
                "(seq / par = host CPU, T4 / A2 = GPUs)"
            ),
        )
        for n in sizes:
            row = []
            for k in intensities:
                case = _case_for_each(k)
                candidates = {
                    "seq": measure_case(case, make_ctx("gpu-host", "gcc-seq"), n, FLOAT32),
                    "par": measure_case(case, make_ctx("gpu-host", "nvc-omp"), n, FLOAT32),
                }
                for gpu in ("D", "E"):
                    label = "T4" if gpu == "D" else "A2"
                    if pattern == "bounce":
                        candidates[label] = measure_case(case, gpu_ctx(gpu), n, FLOAT32)
                    else:
                        candidates[label] = _chained_gpu_seconds(gpu, case, n)
                winner = min(candidates, key=candidates.get)
                row.append(winner)
            table.add_row([f"2^{n.bit_length() - 1}", *row])
        print(table.render())
        print()

    print(
        "Takeaways (matching the paper): chain operations on the device or "
        "bring enough arithmetic intensity -- otherwise the PCIe transfers "
        "and kernel-launch latency hand the win back to the CPU."
    )


if __name__ == "__main__":
    main()
