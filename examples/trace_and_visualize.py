"""Capture execution traces in both modes and export them for Perfetto.

    python examples/trace_and_visualize.py

Demonstrates the observability layer (docs/OBSERVABILITY.md):

1. trace a **model-mode** paper-scale call and print the span timeline;
2. trace a **run-mode** call (real NumPy data) -- same spans, because
   both modes build the same work profiles;
3. aggregate a traced min-time benchmark loop into the breakdown table;
4. write a Chrome trace-event JSON to open at https://ui.perfetto.dev.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ExecutionContext, pstl
from repro.analysis.breakdown import render_phase_shares
from repro.backends import get_backend
from repro.machines import get_machine
from repro.suite.cases import get_case
from repro.suite.wrappers import run_case
from repro.trace import Tracer, aggregate_phases, use_tracer, write_chrome_trace
from repro.types import FLOAT64


def show_spans(tracer: Tracer, limit: int = 12) -> None:
    """Print the first spans of a trace, one line each."""
    for span in tracer.spans[:limit]:
        print(
            f"  {span.track:<10} {span.category:<9} {span.name:<14} "
            f"start={span.start * 1e3:9.4f} ms  dur={span.duration * 1e3:9.4f} ms"
        )
    if len(tracer.spans) > limit:
        print(f"  ... {len(tracer.spans) - limit} more spans")


def main() -> None:
    machine = get_machine("A")  # 32-core Skylake (Table 2)
    backend = get_backend("gcc-tbb")

    # --- 1. model mode: paper-scale, nothing materialised ------------------
    ctx = ExecutionContext(machine, backend, threads=8, mode="model")
    with use_tracer(Tracer()) as tracer:
        arr = ctx.allocate(1 << 26, FLOAT64)
        result = pstl.reduce(ctx, arr)
    print(f"model-mode reduce(2^26): {result.seconds * 1e3:.3f} ms simulated")
    show_spans(tracer)
    # Expected shape: one "reduce" call span on the main track, a
    # "chunk-reduce" + "combine" phase pair on the phases track, one lane
    # span per simulated thread (thread 0..7), and a fork/join overhead
    # span. chunk-reduce is memory-bound (attributes carry the split).

    # --- 2. run mode: same spans over real data ----------------------------
    run_ctx = ctx.with_(mode="run")
    with use_tracer(Tracer()) as run_tracer:
        data = run_ctx.array_from(
            np.arange(1, 65537, dtype=np.float64), FLOAT64
        )
        total = pstl.reduce(run_ctx, data)
    print(f"\nrun-mode reduce(1..65536) = {total.value:.0f}")
    show_spans(run_tracer)
    # Expected: identical span structure (call/phase/lane/fork-join) --
    # run and model mode build the same work profiles, so the trace only
    # differs in n and the resulting durations.

    # --- 3. a traced benchmark loop, aggregated ----------------------------
    with use_tracer(Tracer()) as bench_tracer:
        row = run_case(get_case("for_each_k1"), ctx, 1 << 26, min_time=0.05)
    print(
        f"\nbenchmark {row.name}: {row.iterations} iterations, "
        f"{len(bench_tracer.spans)} spans"
    )
    print(
        render_phase_shares(
            aggregate_phases(bench_tracer),
            title="where the traced session's time went",
        )
    )
    # Expected: a bench:for_each... span wrapping warmup/measure spans and
    # one for_each call span per real invocation; the table shows the map
    # phase dominating with fork/join a small overhead share.

    # --- 4. export for Perfetto / chrome://tracing -------------------------
    out = Path(tempfile.gettempdir()) / "repro_trace_example.json"
    n_spans = write_chrome_trace(bench_tracer, str(out))
    print(f"wrote {n_spans} spans to {out} -- open at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
